//! The host-side snapshot capture protocol.

use crate::meta::FameMeta;
use serde::{Deserialize, Serialize};
use strober_rtl::Width;
use strober_sim::{SimError, Simulator};

/// A fully assembled replayable RTL snapshot (§III-B of the paper): all
/// register and memory state at cycle `cycle`, plus the I/O traces of its
/// `warmup + replay_length` window. Serialisable, so snapshots can be
/// stored and replayed later or on another machine — snapshots are the
/// artifact the paper ships from the FPGA host to the gate-level replay
/// farm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FameSnapshot {
    /// The target cycle at which the state was captured.
    pub cycle: u64,
    /// `(rtl register name, value)` in scan-chain order.
    pub regs: Vec<(String, u64)>,
    /// `(rtl memory name, full contents)` per memory.
    pub mems: Vec<(String, Vec<u64>)>,
    /// Per target input port: `(port name, one value per traced cycle)`,
    /// index 0 = cycle `cycle`.
    pub inputs: Vec<(String, Vec<u64>)>,
    /// Per target output port: expected values, same indexing.
    pub outputs: Vec<(String, Vec<u64>)>,
}

impl FameSnapshot {
    /// The number of traced cycles (`replay_length + warmup`).
    pub fn trace_len(&self) -> usize {
        self.inputs
            .first()
            .map(|(_, v)| v.len())
            .or_else(|| self.outputs.first().map(|(_, v)| v.len()))
            .unwrap_or(0)
    }
}

/// A snapshot whose state has been captured but whose I/O trace window has
/// not yet elapsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingSnapshot {
    /// The target cycle at which the state was captured.
    pub cycle: u64,
    /// `(rtl register name, value)` in scan-chain order.
    pub regs: Vec<(String, u64)>,
    /// `(rtl memory name, full contents)` per memory.
    pub mems: Vec<(String, Vec<u64>)>,
}

/// Executes the scan/trace protocol over a hub simulator and accounts the
/// extra host cycles spent (the sampling overhead `T_rec` of §IV-E).
#[derive(Debug, Clone)]
pub struct SnapshotController {
    meta: FameMeta,
    overhead_cycles: u64,
}

impl SnapshotController {
    /// Creates a controller for a hub described by `meta`.
    pub fn new(meta: &FameMeta) -> Self {
        SnapshotController {
            meta: meta.clone(),
            overhead_cycles: 0,
        }
    }

    /// The metadata this controller drives.
    pub fn meta(&self) -> &FameMeta {
        &self.meta
    }

    /// Total hub cycles spent on snapshot capture so far (scan shifts,
    /// memory streaming, trace readout strobes).
    pub fn overhead_cycles(&self) -> u64 {
        self.overhead_cycles
    }

    /// Drives the global fire signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the hub does not expose the control port
    /// (wrong simulator for this metadata).
    pub fn set_fire(&self, sim: &mut Simulator, fire: bool) -> Result<(), SimError> {
        sim.poke_by_name(&self.meta.control.fire, u64::from(fire))
    }

    /// The target's current cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for a mismatched simulator.
    pub fn target_cycle(&self, sim: &mut Simulator) -> Result<u64, SimError> {
        sim.peek_output(&self.meta.control.cycle)
    }

    /// Captures register and memory state through the scan chains. The
    /// target must already be stalled (`fire = 0`); it is left stalled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for a mismatched simulator.
    pub fn begin_snapshot(&mut self, sim: &mut Simulator) -> Result<PendingSnapshot, SimError> {
        // Resolve every control name once — the shift and stream loops
        // below run once per register and per memory word, so per-cycle
        // string hashing would dominate the scan cost on large targets.
        let ctl = &self.meta.control;
        let cycle = sim.peek_output(&ctl.cycle)?;
        let scan_capture = sim.resolve_port(&ctl.scan_capture)?;
        let scan_shift = sim.resolve_port(&ctl.scan_shift)?;
        let scan_out = sim.resolve_output(&ctl.scan_out)?;

        // Capture strobe: shadow chain loads every register in one cycle.
        sim.poke(scan_capture, 1);
        sim.step();
        sim.poke(scan_capture, 0);
        self.overhead_cycles += 1;

        // Shift the chain out one element per cycle.
        sim.poke(scan_shift, 1);
        let mut regs = Vec::with_capacity(self.meta.scan_chain.len());
        for elem in &self.meta.scan_chain {
            let raw = sim.peek(scan_out);
            let mask = Width::new(elem.width)
                .expect("meta widths are valid")
                .mask();
            regs.push((elem.rtl_name.clone(), raw & mask));
            sim.step();
            self.overhead_cycles += 1;
        }
        sim.poke(scan_shift, 0);

        // Stream each memory through its borrowed read port.
        let mut mems = Vec::with_capacity(self.meta.mem_scans.len());
        if !self.meta.mem_scans.is_empty() {
            let mem_scan_rst = sim.resolve_port(&ctl.mem_scan_rst)?;
            let mem_scan_en = sim.resolve_port(&ctl.mem_scan_en)?;
            let out_ports = self
                .meta
                .mem_scans
                .iter()
                .map(|m| sim.resolve_output(&m.out_port))
                .collect::<Result<Vec<_>, _>>()?;

            sim.poke(mem_scan_rst, 1);
            sim.step();
            sim.poke(mem_scan_rst, 0);
            self.overhead_cycles += 1;

            sim.poke(mem_scan_en, 1);
            let max_depth = self
                .meta
                .mem_scans
                .iter()
                .map(|m| m.depth)
                .max()
                .unwrap_or(0);
            let mut contents: Vec<Vec<u64>> = self
                .meta
                .mem_scans
                .iter()
                .map(|m| Vec::with_capacity(m.depth))
                .collect();
            for addr in 0..max_depth {
                for (mi, m) in self.meta.mem_scans.iter().enumerate() {
                    if addr < m.depth {
                        contents[mi].push(sim.peek(out_ports[mi]));
                    }
                }
                sim.step();
                self.overhead_cycles += 1;
            }
            sim.poke(mem_scan_en, 0);
            for (m, c) in self.meta.mem_scans.iter().zip(contents) {
                mems.push((m.rtl_name.clone(), c));
            }
        }

        Ok(PendingSnapshot { cycle, regs, mems })
    }

    /// Reads the I/O trace buffers and assembles the snapshot.
    ///
    /// The traced window is `[cycle − warmup, cycle + replay_length)`: the
    /// `warmup` prefix was recorded *before* the state scan (§IV-C3 — the
    /// prefix lets replay warm retimed datapaths by forcing recorded I/O
    /// before the architectural state is loaded), and exactly
    /// `replay_length` further target cycles must have fired since
    /// [`SnapshotController::begin_snapshot`]. The target must be stalled
    /// again when this is called.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for a mismatched simulator.
    pub fn finish_snapshot(
        &mut self,
        sim: &mut Simulator,
        pending: PendingSnapshot,
    ) -> Result<FameSnapshot, SimError> {
        let window = (self.meta.replay_length + self.meta.warmup) as usize;
        let depth = self.meta.trace_depth;
        let trace_start = pending.cycle.saturating_sub(u64::from(self.meta.warmup));

        // One name resolution per port, not one per traced cycle.
        let trace_raddr = sim.resolve_port(&self.meta.control.trace_raddr)?;
        let in_nodes = self
            .meta
            .traces_in
            .iter()
            .map(|t| sim.resolve_output(&t.out_port))
            .collect::<Result<Vec<_>, _>>()?;
        let out_nodes = self
            .meta
            .traces_out
            .iter()
            .map(|t| sim.resolve_output(&t.out_port))
            .collect::<Result<Vec<_>, _>>()?;

        // Trace entry for target cycle t lives at index t mod depth.
        let mut inputs: Vec<(String, Vec<u64>)> = self
            .meta
            .traces_in
            .iter()
            .map(|t| (t.port.clone(), Vec::with_capacity(window)))
            .collect();
        let mut outputs: Vec<(String, Vec<u64>)> = self
            .meta
            .traces_out
            .iter()
            .map(|t| (t.port.clone(), Vec::with_capacity(window)))
            .collect();
        for k in 0..window as u64 {
            let idx = (trace_start + k) % depth as u64;
            sim.poke(trace_raddr, idx);
            for (ti, &node) in in_nodes.iter().enumerate() {
                inputs[ti].1.push(sim.peek(node));
            }
            for (ti, &node) in out_nodes.iter().enumerate() {
                outputs[ti].1.push(sim.peek(node));
            }
        }
        // Trace readout happens over the host interface; account one host
        // cycle per word read, as with the scan chains.
        self.overhead_cycles += window as u64;

        Ok(FameSnapshot {
            cycle: pending.cycle,
            regs: pending.regs,
            mems: pending.mems,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{transform, FameConfig};
    use strober_dsl::Ctx;
    use strober_rtl::Width;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    /// A small accumulator with a memory, for end-to-end snapshot tests.
    fn build() -> strober_rtl::Design {
        let ctx = Ctx::new("acc");
        let x = ctx.input("x", w(8));
        let acc = ctx.reg("acc", w(16), 0);
        let hist = ctx.mem("hist", w(16), 16);
        let wa = ctx.reg("wa", w(4), 0);
        acc.set(&(&acc.out() + &x.zext(w(16))));
        hist.write(&wa.out(), &acc.out(), &ctx.lit1(true));
        wa.set(&wa.out().add_lit(1));
        ctx.output("sum", &acc.out());
        ctx.finish().unwrap()
    }

    #[test]
    fn full_snapshot_protocol() {
        let target = build();
        let fame = transform(
            &target,
            &FameConfig {
                replay_length: 8,
                warmup: 0,
            },
        )
        .unwrap();
        let mut sim = Simulator::new(&fame.hub).unwrap();
        let mut ctl = SnapshotController::new(&fame.meta);

        // Run 20 cycles with x = t.
        ctl.set_fire(&mut sim, true).unwrap();
        for t in 0..20u64 {
            sim.poke_by_name("x", t % 256).unwrap();
            sim.step();
        }
        ctl.set_fire(&mut sim, false).unwrap();
        assert_eq!(ctl.target_cycle(&mut sim).unwrap(), 20);

        let pending = ctl.begin_snapshot(&mut sim).unwrap();
        assert_eq!(pending.cycle, 20);
        // acc = sum of 0..19 = 190; wa = 20 mod 16 = 4.
        let regs: std::collections::HashMap<_, _> = pending.regs.iter().cloned().collect();
        assert_eq!(regs["acc"], 190);
        assert_eq!(regs["wa"], 4);
        assert_eq!(pending.mems[0].1.len(), 16);
        // hist[3] was written at cycles 3 and 19 (wa wraps mod 16); the
        // last write is acc before cycle 19 = Σ 0..18 = 171. hist[4] was
        // written only at cycle 4: Σ 0..3 = 6.
        assert_eq!(pending.mems[0].1[3], 171);
        assert_eq!(pending.mems[0].1[4], 6);

        // Run the trace window.
        ctl.set_fire(&mut sim, true).unwrap();
        for t in 20..28u64 {
            sim.poke_by_name("x", t % 256).unwrap();
            sim.step();
        }
        ctl.set_fire(&mut sim, false).unwrap();
        let snap = ctl.finish_snapshot(&mut sim, pending).unwrap();
        assert_eq!(snap.trace_len(), 8);
        // Input trace must be exactly x = 20..28.
        assert_eq!(snap.inputs[0].1, (20..28).collect::<Vec<u64>>());
        // Output trace: sum at cycle t = 190 + sum(20..t).
        let mut expect = Vec::new();
        let mut acc = 190u64;
        for t in 20..28u64 {
            expect.push(acc);
            acc += t;
        }
        assert_eq!(snap.outputs[0].1, expect);
        assert!(ctl.overhead_cycles() > 0);
    }

    #[test]
    fn snapshot_does_not_perturb_execution() {
        // Running with a snapshot in the middle must give the same target
        // trajectory as running straight through.
        let target = build();
        let fame = transform(
            &target,
            &FameConfig {
                replay_length: 4,
                warmup: 0,
            },
        )
        .unwrap();

        let run = |with_snapshot: bool| -> u64 {
            let mut sim = Simulator::new(&fame.hub).unwrap();
            let mut ctl = SnapshotController::new(&fame.meta);
            ctl.set_fire(&mut sim, true).unwrap();
            for t in 0..10u64 {
                sim.poke_by_name("x", t).unwrap();
                sim.step();
            }
            if with_snapshot {
                ctl.set_fire(&mut sim, false).unwrap();
                let _pending = ctl.begin_snapshot(&mut sim).unwrap();
                ctl.set_fire(&mut sim, true).unwrap();
            }
            for t in 10..30u64 {
                sim.poke_by_name("x", t).unwrap();
                sim.step();
            }
            sim.peek_output("sum").unwrap()
        };

        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wrapping_trace_window_is_reassembled_correctly() {
        // Capture at a cycle that makes the ring buffer wrap.
        let target = build();
        let fame = transform(
            &target,
            &FameConfig {
                replay_length: 8,
                warmup: 0,
            },
        )
        .unwrap();
        let mut sim = Simulator::new(&fame.hub).unwrap();
        let mut ctl = SnapshotController::new(&fame.meta);
        ctl.set_fire(&mut sim, true).unwrap();
        for t in 0..13u64 {
            sim.poke_by_name("x", t).unwrap();
            sim.step();
        }
        ctl.set_fire(&mut sim, false).unwrap();
        let pending = ctl.begin_snapshot(&mut sim).unwrap();
        ctl.set_fire(&mut sim, true).unwrap();
        for t in 13..21u64 {
            sim.poke_by_name("x", t).unwrap();
            sim.step();
        }
        ctl.set_fire(&mut sim, false).unwrap();
        let snap = ctl.finish_snapshot(&mut sim, pending).unwrap();
        assert_eq!(snap.inputs[0].1, (13..21).collect::<Vec<u64>>());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn snapshots_serialize_round_trip() {
        let snap = FameSnapshot {
            cycle: 42,
            regs: vec![("pc".to_owned(), 0x80), ("acc".to_owned(), 7)],
            mems: vec![("ram".to_owned(), vec![1, 2, 3])],
            inputs: vec![("x".to_owned(), vec![9, 8, 7])],
            outputs: vec![("y".to_owned(), vec![1, 1, 2])],
        };
        let json = serde_json::to_string(&snap).expect("serialisable");
        let back: FameSnapshot = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, snap);
        assert_eq!(back.trace_len(), 3);
    }
}

//! The FAME1 transform with snapshot capture — the heart of Strober.
//!
//! §IV-B of the paper: Strober automatically rewrites any RTL design into a
//! token-based FAME1 simulator that can stall at any target cycle, plus the
//! instrumentation needed to read out a *replayable RTL snapshot*:
//!
//! * **Host decoupling** ([`transform`]) — every register and memory write
//!   is gated by a global `fire` signal, so the simulated target advances
//!   exactly when the host supplies a token and consumes the outputs. The
//!   host-side token channels live in `strober-platform`; this crate
//!   produces the hub design and its metadata.
//! * **Register scan chains** — a 64-bit-wide shadow scan chain captures
//!   every register in one cycle (while the target is stalled) and shifts
//!   one element out per cycle, without disturbing target state.
//! * **RAM scan chains** — each memory gets an address-generator counter
//!   that *borrows* read port 0 while the target is stalled (the paper's
//!   trick for Block RAMs whose port count cannot change) and streams the
//!   contents out a word at a time.
//! * **I/O trace buffers** — ring buffers record the last `L + warmup`
//!   input and output tokens, giving the replay window its stimulus and
//!   its check values.
//! * **Simulation metadata** ([`FameMeta`]) — the scan-chain order, trace
//!   geometry and control-port names, serialisable to JSON exactly like
//!   the "simulation metadata dump" of Fig. 4, consumed by the host
//!   driver.
//!
//! [`SnapshotController`] implements the host-side capture protocol over a
//! `strober-sim` simulator of the hub and produces [`FameSnapshot`]s.
//!
//! # Examples
//!
//! Transform a counter and capture a snapshot mid-run:
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//! use strober_sim::Simulator;
//! use strober_fame::{transform, FameConfig, SnapshotController};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Ctx::new("counter");
//! let count = ctx.reg("count", Width::new(8)?, 0);
//! count.set(&count.out().add_lit(1));
//! ctx.output("value", &count.out());
//! let target = ctx.finish()?;
//!
//! let fame = transform(&target, &FameConfig::default())?;
//! let mut sim = Simulator::new(&fame.hub)?;
//! let mut ctl = SnapshotController::new(&fame.meta);
//!
//! // Run 10 target cycles.
//! ctl.set_fire(&mut sim, true)?;
//! sim.step_n(10);
//!
//! // Stall and capture.
//! ctl.set_fire(&mut sim, false)?;
//! let pending = ctl.begin_snapshot(&mut sim)?;
//! assert_eq!(pending.cycle, 10);
//! assert_eq!(pending.regs[0].1, 10); // the counter's value
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod controller;
mod meta;
mod transform;

pub use controller::{FameSnapshot, PendingSnapshot, SnapshotController};
pub use meta::{ControlPorts, FameMeta, MemScanMeta, ScanElem, TraceMeta};
pub use transform::{transform, FameConfig, FameResult};

//! Simulation metadata — the Fig. 4 "Simulation Metadata Dump".

use serde::{Deserialize, Serialize};

/// One element of the register scan chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, serde::Blob)]
pub struct ScanElem {
    /// The RTL register's hierarchical name.
    pub rtl_name: String,
    /// The register's width in bits (the 64-bit chain word is masked to
    /// this width on readout).
    pub width: u32,
}

/// Scan metadata for one memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, serde::Blob)]
pub struct MemScanMeta {
    /// The RTL memory's hierarchical name.
    pub rtl_name: String,
    /// Word width in bits.
    pub width: u32,
    /// Number of words.
    pub depth: usize,
    /// The hub output port streaming the memory contents.
    pub out_port: String,
}

/// Trace-buffer metadata for one target I/O port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, serde::Blob)]
pub struct TraceMeta {
    /// The target port's name.
    pub port: String,
    /// The port's width in bits.
    pub width: u32,
    /// The hub output port exposing the trace read data.
    pub out_port: String,
}

/// Names of the hub's control ports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, serde::Blob)]
pub struct ControlPorts {
    /// Global target-advance enable (the FAME1 token "fire" signal).
    pub fire: String,
    /// Scan-chain capture strobe.
    pub scan_capture: String,
    /// Scan-chain shift enable.
    pub scan_shift: String,
    /// Memory scan enable (borrows each memory's read port 0).
    pub mem_scan_en: String,
    /// Memory scan counter reset.
    pub mem_scan_rst: String,
    /// Trace-buffer read address input.
    pub trace_raddr: String,
    /// Scan-chain serial output (64 bits wide).
    pub scan_out: String,
    /// Target cycle counter output.
    pub cycle: String,
}

/// The complete metadata for one transformed design.
///
/// Everything the host driver needs: chain order, trace geometry and
/// control-port names. Serialisable to JSON, as the paper's flow dumps
/// metadata for the simulation software driver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, serde::Blob)]
pub struct FameMeta {
    /// Name of the target design.
    pub target: String,
    /// Register scan chain, in shift-out order.
    pub scan_chain: Vec<ScanElem>,
    /// Memory scan ports.
    pub mem_scans: Vec<MemScanMeta>,
    /// Input trace buffers, in target port order.
    pub traces_in: Vec<TraceMeta>,
    /// Output trace buffers, in target output order.
    pub traces_out: Vec<TraceMeta>,
    /// Ring-buffer depth (power of two, ≥ `replay_length + warmup`).
    pub trace_depth: usize,
    /// The measurement window length `L`.
    pub replay_length: u32,
    /// Extra leading cycles captured for retimed-datapath state recovery
    /// (§IV-C3).
    pub warmup: u32,
    /// Control port names.
    pub control: ControlPorts,
    /// Total architectural state bits of the target (determines snapshot
    /// size and scan time).
    pub state_bits: u64,
}

impl FameMeta {
    /// Serialises the metadata to pretty JSON (the metadata dump consumed
    /// by the host driver).
    ///
    /// # Panics
    ///
    /// Never panics; the structure is always serialisable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FameMeta is always serialisable")
    }

    /// Parses a metadata dump.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Number of hub cycles one full snapshot capture costs (scan chain
    /// shifts plus memory streaming plus capture strobes) — the `T_rec`
    /// term of the §IV-E performance model, in cycles.
    pub fn snapshot_capture_cycles(&self) -> u64 {
        let regs = self.scan_chain.len() as u64;
        let mem_words: u64 = self.mem_scans.iter().map(|m| m.depth as u64).sum();
        // 1 capture strobe + one shift per chain element + 1 counter reset
        // + one cycle per streamed memory word.
        1 + regs + 1 + mem_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FameMeta {
        FameMeta {
            target: "t".to_owned(),
            scan_chain: vec![ScanElem {
                rtl_name: "pc".to_owned(),
                width: 32,
            }],
            mem_scans: vec![MemScanMeta {
                rtl_name: "ram".to_owned(),
                width: 8,
                depth: 16,
                out_port: "fame/mem_scan_out_0".to_owned(),
            }],
            traces_in: vec![],
            traces_out: vec![],
            trace_depth: 128,
            replay_length: 128,
            warmup: 0,
            control: ControlPorts {
                fire: "fame/fire".to_owned(),
                scan_capture: "fame/scan_capture".to_owned(),
                scan_shift: "fame/scan_shift".to_owned(),
                mem_scan_en: "fame/mem_scan_en".to_owned(),
                mem_scan_rst: "fame/mem_scan_rst".to_owned(),
                trace_raddr: "fame/trace_raddr".to_owned(),
                scan_out: "fame/scan_out".to_owned(),
                cycle: "fame/cycle".to_owned(),
            },
            state_bits: 160,
        }
    }

    #[test]
    fn json_round_trip() {
        let meta = sample();
        let json = meta.to_json();
        let back = FameMeta::from_json(&json).unwrap();
        assert_eq!(meta, back);
        assert!(json.contains("scan_chain"));
    }

    #[test]
    fn capture_cycles_counts_chain_and_mems() {
        let meta = sample();
        // 1 capture + 1 reg shift + 1 reset + 16 words = 19.
        assert_eq!(meta.snapshot_capture_cycles(), 19);
    }
}

//! The FAME1 + scan-chain + trace-buffer transform.

use crate::meta::{ControlPorts, FameMeta, MemScanMeta, ScanElem, TraceMeta};
use strober_rtl::{Design, MemId, Node, NodeId, RegId, RtlError, Width};

/// Configuration for the transform.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FameConfig {
    /// Cycles of I/O recorded per snapshot for the measurement window
    /// (`L` in the paper; 128 in the validation experiments, 1000 in the
    /// performance model).
    pub replay_length: u32,
    /// Extra leading cycles recorded so replay can warm retimed datapaths
    /// by forcing I/O before the measurement window (§IV-C3). Zero when no
    /// datapath is retimed.
    pub warmup: u32,
}

impl Default for FameConfig {
    fn default() -> Self {
        FameConfig {
            replay_length: 128,
            warmup: 0,
        }
    }
}

/// The transform's output: the hub design and its metadata.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct FameResult {
    /// The instrumented FAME1 simulator design ("hub").
    pub hub: Design,
    /// Metadata for the host driver.
    pub meta: FameMeta,
}

/// Applies the FAME1 transform with snapshot instrumentation.
///
/// The returned hub contains the complete target plus:
/// control inputs `fame/fire`, `fame/scan_capture`, `fame/scan_shift`,
/// `fame/mem_scan_en`, `fame/mem_scan_rst`, `fame/trace_raddr`; and
/// outputs `fame/scan_out`, `fame/cycle`, one `fame/mem_scan_out_<i>` per
/// memory and one `fame/trace_(in|out)_<i>` per target port. Target ports
/// keep their names.
///
/// # Errors
///
/// Returns any [`RtlError`] from the target's validation or from hub
/// construction (e.g. name collisions with a target that already uses
/// `fame/…` names).
pub fn transform(target: &Design, config: &FameConfig) -> Result<FameResult, RtlError> {
    let _span = strober_probe::span("strober.fame.transform");
    target.validate()?;
    let mut d = target.clone();

    // Record the target's original shape before instrumenting.
    let orig_regs: Vec<(RegId, String, Width)> = target
        .registers()
        .map(|(id, r)| (id, r.name().to_owned(), r.width()))
        .collect();
    let orig_mems: Vec<(MemId, String, Width, usize, usize)> = target
        .memories()
        .map(|(id, m)| {
            (
                id,
                m.name().to_owned(),
                m.width(),
                m.depth(),
                m.read_ports().len(),
            )
        })
        .collect();
    let orig_inputs: Vec<(NodeId, String, Width)> = target
        .nodes()
        .filter_map(|(id, node, w)| match node {
            Node::Input(p) => Some((id, target.ports()[p.index()].name().to_owned(), w)),
            _ => None,
        })
        .collect();
    let orig_outputs: Vec<(String, NodeId, Width)> = target
        .outputs()
        .iter()
        .map(|(n, id)| (n.clone(), *id, target.width(*id)))
        .collect();

    let bit = Width::BIT;
    let w64 = Width::W64;

    // ---- control inputs -------------------------------------------------------
    let fire = d.input("fame/fire", bit)?;
    let scan_capture = d.input("fame/scan_capture", bit)?;
    let scan_shift = d.input("fame/scan_shift", bit)?;
    let mem_scan_en = d.input("fame/mem_scan_en", bit)?;
    let mem_scan_rst = d.input("fame/mem_scan_rst", bit)?;

    let trace_depth = ((config.replay_length + config.warmup).max(2) as usize).next_power_of_two();
    let traddr_w = Width::for_depth(trace_depth)?;
    let trace_raddr = d.input("fame/trace_raddr", traddr_w)?;

    // ---- FAME1 gating: registers ---------------------------------------------
    for (id, _, _) in &orig_regs {
        let reg = d.register(*id);
        let (next, enable) = (reg.next().expect("validated"), reg.enable());
        let gated = match enable {
            Some(en) => d.and(en, fire)?,
            None => fire,
        };
        d.reconnect_reg(*id, next, Some(gated))?;
    }

    // ---- FAME1 gating: memory writes ------------------------------------------
    for (id, _, _, _, _) in &orig_mems {
        let ports: Vec<NodeId> = d
            .memory(*id)
            .write_ports()
            .iter()
            .map(|wp| wp.enable())
            .collect();
        for (pi, en) in ports.into_iter().enumerate() {
            let gated = d.and(en, fire)?;
            d.set_write_port_enable(*id, pi, gated)?;
        }
    }

    // ---- register scan chain ----------------------------------------------------
    // Shadow registers shift toward element 0; scan_out = shadow[0].
    let scan_ctl = d.or(scan_capture, scan_shift)?;
    let mut shadow_regs = Vec::with_capacity(orig_regs.len());
    for (i, _) in orig_regs.iter().enumerate() {
        shadow_regs.push(d.reg(format!("fame/scan/{i}"), w64, 0)?);
    }
    let zero64 = d.constant(0, w64);
    for (i, (reg_id, _, width)) in orig_regs.iter().enumerate() {
        let captured = {
            let q = d.reg_out(*reg_id);
            if width.bits() == 64 {
                q
            } else {
                let pad = d.constant(0, Width::new(64 - width.bits())?);
                d.cat(pad, q)?
            }
        };
        let from_next = if i + 1 < shadow_regs.len() {
            d.reg_out(shadow_regs[i + 1])
        } else {
            zero64
        };
        let next = d.mux(scan_capture, captured, from_next)?;
        d.connect_reg(shadow_regs[i], next, Some(scan_ctl))?;
    }
    let scan_out = if shadow_regs.is_empty() {
        zero64
    } else {
        d.reg_out(shadow_regs[0])
    };
    d.output("fame/scan_out", scan_out)?;

    // ---- memory scan chains ------------------------------------------------------
    let mem_scan_ctl = d.or(mem_scan_en, mem_scan_rst)?;
    let mut mem_scan_meta = Vec::with_capacity(orig_mems.len());
    for (i, (mem_id, name, width, depth, n_read_ports)) in orig_mems.iter().enumerate() {
        let aw = d.memory(*mem_id).addr_width();
        let counter = d.reg(format!("fame/memscan/{i}"), aw, 0)?;
        let cq = d.reg_out(counter);
        let one = d.constant(1, aw);
        let inc = d.add(cq, one)?;
        let zero = d.constant(0, aw);
        let next = d.mux(mem_scan_rst, zero, inc)?;
        d.connect_reg(counter, next, Some(mem_scan_ctl))?;

        let read_node = if *n_read_ports == 0 {
            // Memory with no read port (write-only in the target): add one
            // for the scanner.
            d.mem_read(*mem_id, cq)?
        } else {
            // Borrow read port 0: mux the scanner's address in while the
            // target is stalled (the paper's Block-RAM-friendly approach).
            let old_addr = d.memory(*mem_id).read_ports()[0].addr();
            let muxed = d.mux(mem_scan_en, cq, old_addr)?;
            d.set_read_port_addr(*mem_id, 0, muxed)?;
            // Find the MemRead node of port 0.
            d.nodes()
                .find_map(|(nid, node, _)| match node {
                    Node::MemRead { mem, port } if *mem == *mem_id && *port == 0 => Some(nid),
                    _ => None,
                })
                .expect("port 0 read node exists")
        };
        let out_port = format!("fame/mem_scan_out_{i}");
        d.output(&out_port, read_node)?;
        mem_scan_meta.push(MemScanMeta {
            rtl_name: name.clone(),
            width: width.bits(),
            depth: *depth,
            out_port,
        });
    }

    // ---- I/O trace buffers ----------------------------------------------------------
    // Ring write pointer advances with the target.
    let wptr = d.reg("fame/trace_wptr", traddr_w, 0)?;
    let wq = d.reg_out(wptr);
    let one_a = d.constant(1, traddr_w);
    let winc = d.add(wq, one_a)?;
    d.connect_reg(wptr, winc, Some(fire))?;

    let mut traces_in = Vec::with_capacity(orig_inputs.len());
    for (i, (node, name, width)) in orig_inputs.iter().enumerate() {
        let mem = d.mem(format!("fame/trace/in_{i}"), *width, trace_depth, vec![])?;
        d.mem_write(mem, wq, *node, fire)?;
        let rd = d.mem_read(mem, trace_raddr)?;
        let out_port = format!("fame/trace_in_{i}");
        d.output(&out_port, rd)?;
        traces_in.push(TraceMeta {
            port: name.clone(),
            width: width.bits(),
            out_port,
        });
    }
    let mut traces_out = Vec::with_capacity(orig_outputs.len());
    for (i, (name, node, width)) in orig_outputs.iter().enumerate() {
        let mem = d.mem(format!("fame/trace/out_{i}"), *width, trace_depth, vec![])?;
        d.mem_write(mem, wq, *node, fire)?;
        let rd = d.mem_read(mem, trace_raddr)?;
        let out_port = format!("fame/trace_out_{i}");
        d.output(&out_port, rd)?;
        traces_out.push(TraceMeta {
            port: name.clone(),
            width: width.bits(),
            out_port,
        });
    }

    // ---- target cycle counter ------------------------------------------------------
    let cycle_r = d.reg("fame/cycle_r", w64, 0)?;
    let cq = d.reg_out(cycle_r);
    let one64 = d.constant(1, w64);
    let cinc = d.add(cq, one64)?;
    d.connect_reg(cycle_r, cinc, Some(fire))?;
    d.output("fame/cycle", cq)?;

    d.validate()?;

    let meta = FameMeta {
        target: target.name().to_owned(),
        scan_chain: orig_regs
            .iter()
            .map(|(_, name, width)| ScanElem {
                rtl_name: name.clone(),
                width: width.bits(),
            })
            .collect(),
        mem_scans: mem_scan_meta,
        traces_in,
        traces_out,
        trace_depth,
        replay_length: config.replay_length,
        warmup: config.warmup,
        control: ControlPorts {
            fire: "fame/fire".to_owned(),
            scan_capture: "fame/scan_capture".to_owned(),
            scan_shift: "fame/scan_shift".to_owned(),
            mem_scan_en: "fame/mem_scan_en".to_owned(),
            mem_scan_rst: "fame/mem_scan_rst".to_owned(),
            trace_raddr: "fame/trace_raddr".to_owned(),
            scan_out: "fame/scan_out".to_owned(),
            cycle: "fame/cycle".to_owned(),
        },
        state_bits: target.state_bits(),
    };

    Ok(FameResult { hub: d, meta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_sim::Simulator;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn counter() -> Design {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.reg("count", w(8), 0);
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        ctx.finish().unwrap()
    }

    #[test]
    fn hub_validates_and_grows() {
        let target = counter();
        let fame = transform(&target, &FameConfig::default()).unwrap();
        fame.hub.validate().unwrap();
        assert!(fame.hub.register_count() > target.register_count());
        assert_eq!(fame.meta.scan_chain.len(), 1);
        assert_eq!(fame.meta.state_bits, 8);
        assert_eq!(fame.meta.trace_depth, 128);
    }

    #[test]
    fn fire_gates_the_target() {
        let fame = transform(&counter(), &FameConfig::default()).unwrap();
        let mut sim = Simulator::new(&fame.hub).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.poke_by_name("fame/fire", 0).unwrap();
        sim.step_n(10);
        assert_eq!(sim.peek_output("value").unwrap(), 0);
        assert_eq!(sim.peek_output("fame/cycle").unwrap(), 0);
        sim.poke_by_name("fame/fire", 1).unwrap();
        sim.step_n(7);
        assert_eq!(sim.peek_output("value").unwrap(), 7);
        assert_eq!(sim.peek_output("fame/cycle").unwrap(), 7);
        // Stall again: target frozen, host cycles keep passing.
        sim.poke_by_name("fame/fire", 0).unwrap();
        sim.step_n(100);
        assert_eq!(sim.peek_output("value").unwrap(), 7);
    }

    #[test]
    fn scan_chain_reads_registers_without_disturbing_them() {
        let fame = transform(&counter(), &FameConfig::default()).unwrap();
        let mut sim = Simulator::new(&fame.hub).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.poke_by_name("fame/fire", 1).unwrap();
        sim.step_n(42);
        sim.poke_by_name("fame/fire", 0).unwrap();
        // Capture.
        sim.poke_by_name("fame/scan_capture", 1).unwrap();
        sim.step();
        sim.poke_by_name("fame/scan_capture", 0).unwrap();
        assert_eq!(sim.peek_output("fame/scan_out").unwrap(), 42);
        // Shifting out does not disturb the target.
        sim.poke_by_name("fame/scan_shift", 1).unwrap();
        sim.step();
        sim.poke_by_name("fame/scan_shift", 0).unwrap();
        sim.poke_by_name("fame/fire", 1).unwrap();
        sim.step();
        assert_eq!(sim.peek_output("value").unwrap(), 43);
    }

    #[test]
    fn gating_preserves_target_behaviour() {
        // The hub with fire always high must match the bare target.
        let target = counter();
        let fame = transform(&target, &FameConfig::default()).unwrap();
        let mut bare = Simulator::new(&target).unwrap();
        let mut hub = Simulator::new(&fame.hub).unwrap();
        hub.poke_by_name("fame/fire", 1).unwrap();
        for c in 0..200u64 {
            let en = u64::from(c % 3 != 0);
            bare.poke_by_name("en", en).unwrap();
            hub.poke_by_name("en", en).unwrap();
            assert_eq!(
                bare.peek_output("value").unwrap(),
                hub.peek_output("value").unwrap(),
                "diverged at cycle {c}"
            );
            bare.step();
            hub.step();
        }
    }

    #[test]
    fn memory_scan_streams_contents() {
        let ctx = Ctx::new("ram");
        let m = ctx.mem("buf", w(16), 8);
        let addr = ctx.input("addr", w(3));
        let data = ctx.input("data", w(16));
        let we = ctx.input("we", Width::BIT);
        ctx.output("q", &m.read(&addr));
        m.write(&addr, &data, &we);
        let target = ctx.finish().unwrap();
        let fame = transform(&target, &FameConfig::default()).unwrap();
        let mut sim = Simulator::new(&fame.hub).unwrap();

        // Fill the memory with addr*3 while firing.
        sim.poke_by_name("fame/fire", 1).unwrap();
        sim.poke_by_name("we", 1).unwrap();
        for a in 0..8u64 {
            sim.poke_by_name("addr", a).unwrap();
            sim.poke_by_name("data", a * 3).unwrap();
            sim.step();
        }
        // Stall and stream out.
        sim.poke_by_name("fame/fire", 0).unwrap();
        sim.poke_by_name("we", 0).unwrap();
        sim.poke_by_name("fame/mem_scan_rst", 1).unwrap();
        sim.step();
        sim.poke_by_name("fame/mem_scan_rst", 0).unwrap();
        sim.poke_by_name("fame/mem_scan_en", 1).unwrap();
        for a in 0..8u64 {
            assert_eq!(
                sim.peek_output("fame/mem_scan_out_0").unwrap(),
                a * 3,
                "word {a}"
            );
            sim.step();
        }
        sim.poke_by_name("fame/mem_scan_en", 0).unwrap();
        // The borrowed read port returns to the target afterwards.
        sim.poke_by_name("addr", 5).unwrap();
        assert_eq!(sim.peek_output("q").unwrap(), 15);
    }

    #[test]
    fn trace_buffers_record_io() {
        let fame = transform(
            &counter(),
            &FameConfig {
                replay_length: 4,
                warmup: 0,
            },
        )
        .unwrap();
        assert_eq!(fame.meta.trace_depth, 4);
        let mut sim = Simulator::new(&fame.hub).unwrap();
        sim.poke_by_name("fame/fire", 1).unwrap();
        // Cycle t: en = t % 2; value output = count at t.
        for t in 0..4u64 {
            sim.poke_by_name("en", t % 2).unwrap();
            sim.step();
        }
        sim.poke_by_name("fame/fire", 0).unwrap();
        // Entry at index t holds cycle t (wptr started at 0).
        for t in 0..4u64 {
            sim.poke_by_name("fame/trace_raddr", t).unwrap();
            assert_eq!(sim.peek_output("fame/trace_in_0").unwrap(), t % 2);
        }
        // Output trace: count was 0,0,1,1 at cycles 0..4 (en=0 at t=0).
        let expect = [0u64, 0, 1, 1];
        for (t, &e) in expect.iter().enumerate() {
            sim.poke_by_name("fame/trace_raddr", t as u64).unwrap();
            assert_eq!(sim.peek_output("fame/trace_out_0").unwrap(), e, "cycle {t}");
        }
    }

    #[test]
    fn name_collision_with_target_is_an_error() {
        let ctx = Ctx::new("evil");
        let r = ctx.reg("fame/fire", Width::BIT, 0);
        r.set(&r.out());
        ctx.output("o", &r.out());
        let target = ctx.finish().unwrap();
        assert!(transform(&target, &FameConfig::default()).is_err());
    }
}

//! The §II argument for reservoir sampling: SMARTS-style fixed-interval
//! sampling assumes "no aliasing along the fixed interval", which fails on
//! periodic workloads; random sampling without replacement makes no such
//! assumption. This test constructs the failure directly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use strober_sampling::{Confidence, PopulationStats, Reservoir, SampleStats};

/// A periodic per-window power sequence: high phase then low phase, period
/// `period`, amplitudes chosen so the true mean is 100.
fn periodic_population(windows: usize, period: usize) -> Vec<f64> {
    (0..windows)
        .map(|i| {
            if (i / (period / 2)).is_multiple_of(2) {
                150.0
            } else {
                50.0
            }
        })
        .collect()
}

fn fixed_interval_sample(pop: &[f64], interval: usize, phase: usize) -> Vec<f64> {
    pop.iter().skip(phase).step_by(interval).copied().collect()
}

#[test]
fn fixed_interval_sampling_aliases_on_periodic_workloads() {
    let period = 64;
    let pop = periodic_population(8192, period);
    let truth = PopulationStats::from_measurements(&pop).unwrap().mean();
    assert!((truth - 100.0).abs() < 1.0);

    // A fixed interval equal to the workload period lands every sample in
    // the same phase: the estimate is off by 50%, and worse, the sample
    // variance is zero, so the method is *confidently wrong*.
    let aliased = fixed_interval_sample(&pop, period, 3);
    let stats = SampleStats::from_measurements(&aliased[..30]).unwrap();
    let err = (stats.mean() - truth).abs() / truth;
    assert!(err > 0.4, "expected gross aliasing error, got {err}");
    let ci = stats.confidence_interval(pop.len(), Confidence::C99);
    assert!(
        !ci.contains(truth),
        "the aliased interval claims certainty about a wrong mean"
    );
    assert!(ci.half_width() < 1e-9, "aliased variance collapses to zero");
}

#[test]
fn reservoir_sampling_is_immune_to_the_same_period() {
    let period = 64;
    let pop = periodic_population(8192, period);
    let truth = PopulationStats::from_measurements(&pop).unwrap().mean();

    // Repeat the experiment over many seeds: the random estimator must be
    // unbiased and its intervals must cover the truth at ~the stated rate.
    let mut covered = 0;
    let trials = 40;
    let mut errs = Vec::new();
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut res = Reservoir::new(30);
        for &x in &pop {
            res.offer(x, &mut rng);
        }
        let sample = res.into_sample();
        let stats = SampleStats::from_measurements(&sample).unwrap();
        let ci = stats.confidence_interval(pop.len(), Confidence::C99);
        if ci.contains(truth) {
            covered += 1;
        }
        errs.push((stats.mean() - truth) / truth);
    }
    // 99% nominal coverage; allow generous slack for 40 trials.
    assert!(
        covered >= trials - 3,
        "coverage {covered}/{trials} too low for a 99% interval"
    );
    // Unbiased: the mean signed error is near zero.
    let bias: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(bias.abs() < 0.05, "estimator bias {bias}");
}

//! Property tests for the statistics and reservoir-sampling invariants the
//! methodology rests on (§III-A).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use strober_sampling::{
    expected_record_count, Confidence, PopulationStats, RecordCountSim, Reservoir, SampleStats,
    StoppingRule,
};

proptest! {
    #[test]
    fn reservoir_holds_min_of_n_and_stream(
        seed in any::<u64>(),
        n in 1usize..50,
        len in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut res = Reservoir::new(n);
        for i in 0..len {
            res.offer(i, &mut rng);
        }
        prop_assert_eq!(res.sample().len() as u64, len.min(n as u64));
        prop_assert_eq!(res.seen(), len);
        // Every sampled element came from the stream, without duplicates.
        let mut s = res.into_sample();
        s.sort_unstable();
        let before = s.len();
        s.dedup();
        prop_assert_eq!(s.len(), before, "duplicate element selected");
        prop_assert!(s.iter().all(|&v| v < len));
    }

    #[test]
    fn record_count_at_least_sample_size(
        seed in any::<u64>(),
        n in 1usize..40,
        len in 1u64..2_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut res = Reservoir::new(n);
        for i in 0..len {
            res.offer(i, &mut rng);
        }
        prop_assert!(res.records() >= len.min(n as u64));
        prop_assert!(res.records() <= len);
    }

    #[test]
    fn skip_simulation_bounds(seed in any::<u64>(), n in 1usize..30, len in 1u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sim = RecordCountSim::new(n);
        let records = sim.simulate_records(len, &mut rng);
        prop_assert!(records >= len.min(n as u64));
        prop_assert!(records <= len);
    }

    #[test]
    fn record_positions_sorted_unique(seed in any::<u64>(), n in 1usize..20, len in 1u64..3_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sim = RecordCountSim::new(n);
        let pos = sim.simulate_record_positions(len, &mut rng);
        prop_assert!(pos.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(pos.iter().all(|&p| p >= 1 && p <= len));
    }

    #[test]
    fn expected_records_monotone_in_stream_length(n in 1usize..50, m in 2u64..1_000_000) {
        let shorter = expected_record_count(n, m / 2);
        let longer = expected_record_count(n, m);
        prop_assert!(longer >= shorter);
    }

    #[test]
    fn sample_mean_inside_its_own_interval(
        values in proptest::collection::vec(0.0f64..1.0e6, 2..200),
        pop_scale in 2usize..100,
    ) {
        let stats = SampleStats::from_measurements(&values).unwrap();
        let population = values.len() * pop_scale;
        for conf in [Confidence::C95, Confidence::C99, Confidence::C999] {
            let ci = stats.confidence_interval(population, conf);
            prop_assert!(ci.contains(stats.mean()));
            prop_assert!(ci.half_width() >= 0.0);
        }
    }

    #[test]
    fn interval_width_monotone_in_confidence(
        values in proptest::collection::vec(0.0f64..1.0e3, 2..100),
    ) {
        let stats = SampleStats::from_measurements(&values).unwrap();
        let c95 = stats.confidence_interval(100_000, Confidence::C95);
        let c99 = stats.confidence_interval(100_000, Confidence::C99);
        let c999 = stats.confidence_interval(100_000, Confidence::C999);
        prop_assert!(c95.half_width() <= c99.half_width());
        prop_assert!(c99.half_width() <= c999.half_width());
    }

    #[test]
    fn sampling_the_whole_population_is_exact(
        values in proptest::collection::vec(-1.0e4f64..1.0e4, 2..100),
    ) {
        // When the sample IS the population, Var(x̄) = 0 and the interval
        // collapses onto the population mean.
        let sample = SampleStats::from_measurements(&values).unwrap();
        let pop = PopulationStats::from_measurements(&values).unwrap();
        let ci = sample.confidence_interval(values.len(), Confidence::C999);
        prop_assert!((ci.mean() - pop.mean()).abs() < 1e-9);
        prop_assert!(ci.half_width().abs() < 1e-6);
    }

    #[test]
    fn minimum_sample_size_shrinks_with_looser_epsilon(
        values in proptest::collection::vec(1.0f64..1.0e3, 31..100),
    ) {
        let stats = SampleStats::from_measurements(&values).unwrap();
        let tight = stats.minimum_sample_size(0.01, Confidence::C99).unwrap();
        let loose = stats.minimum_sample_size(0.10, Confidence::C99).unwrap();
        prop_assert!(loose <= tight);
        prop_assert!(loose >= 30);
    }

    #[test]
    fn stopping_rule_never_fires_below_the_minimum_floor(
        powers in proptest::collection::vec(1.0f64..1.0e4, 2..120),
        epsilon in 0.001f64..0.9,
        min_samples in 2usize..60,
        pop_scale in 1usize..50,
    ) {
        // Walk a synthetic power stream exactly like the streaming
        // pipeline does: re-evaluate after each additional replayed
        // sample, against the population observed so far.
        let rule = StoppingRule::new(epsilon, Confidence::C99, min_samples).unwrap();
        for n in 2..=powers.len() {
            let stats = SampleStats::from_measurements(&powers[..n]).unwrap();
            let population = n * pop_scale;
            let decision = rule.evaluate(&stats, population);
            if n < min_samples {
                prop_assert!(
                    !decision.is_converged(),
                    "fired at n = {} below the floor {}",
                    n,
                    min_samples
                );
            }
        }
    }

    #[test]
    fn converged_decisions_achieve_the_requested_epsilon(
        powers in proptest::collection::vec(1.0f64..1.0e4, 2..120),
        epsilon in 0.001f64..0.9,
        min_samples in 2usize..60,
        pop_scale in 1usize..50,
    ) {
        let rule = StoppingRule::new(epsilon, Confidence::C999, min_samples).unwrap();
        for n in 2..=powers.len() {
            let stats = SampleStats::from_measurements(&powers[..n]).unwrap();
            let population = n * pop_scale;
            if let strober_sampling::StopDecision::Converged { achieved } =
                rule.evaluate(&stats, population)
            {
                // The decision's achieved ε must satisfy the request and
                // agree with the interval it was derived from.
                prop_assert!(achieved <= epsilon);
                let ci = stats.confidence_interval(population, Confidence::C999);
                prop_assert!((achieved - ci.relative_error_bound()).abs() < 1e-12);
            }
        }
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced by statistical computations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// A sample of fewer than two measurements cannot produce a variance
    /// estimate (eq. 4 divides by `n - 1`).
    SampleTooSmall {
        /// Number of measurements that were provided.
        provided: usize,
        /// Minimum number of measurements required.
        required: usize,
    },
    /// A measurement was not a finite number.
    NonFiniteMeasurement {
        /// Index of the offending measurement.
        index: usize,
    },
    /// A requested parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        constraint: &'static str,
    },
    /// A [`crate::Reservoir::place`] call named a slot the reservoir cannot
    /// hold: beyond its capacity, or ahead of the fill front (slots fill
    /// densely from index 0, so a gap would leave an uninitialised hole).
    BadReservoirSlot {
        /// The slot the caller asked for.
        slot: usize,
        /// How many slots are currently filled (the fill front).
        filled: usize,
        /// The reservoir's fixed capacity `n`.
        capacity: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::SampleTooSmall { provided, required } => write!(
                f,
                "sample of {provided} measurements is too small (need at least {required})"
            ),
            StatsError::NonFiniteMeasurement { index } => {
                write!(f, "measurement at index {index} is not finite")
            }
            StatsError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            StatsError::BadReservoirSlot {
                slot,
                filled,
                capacity,
            } => write!(
                f,
                "reservoir slot {slot} is not placeable ({filled} of {capacity} slots filled)"
            ),
        }
    }
}

impl Error for StatsError {}

//! Record-count models for reservoir sampling over very long streams.
//!
//! Table III of the paper reports the number of snapshot record operations
//! for executions of up to 73 billion cycles. Running Algorithm R element by
//! element over such a stream is wasteful: past the initial fill, records are
//! rare (probability `n/k` at element `k`). [`RecordCountSim`] reproduces the
//! exact record process in `O(records · log N)` time by sampling the gaps
//! between successive records directly, in the spirit of Vitter's skip-based
//! Algorithm X.

use rand::Rng;

/// Expected number of record operations when reservoir-sampling `n` elements
/// from a stream of `m` elements:
///
/// `E[records] = n + Σ_{k=n+1}^{m} n/k = n · (1 + H_m − H_n)`.
///
/// For Strober, `m = N / L` is the number of disjoint replay windows in an
/// `N`-cycle execution with replay length `L`.
///
/// # Examples
///
/// ```
/// // Roughly n·(1 + ln(m/n)) for m >> n.
/// let e = strober_sampling::expected_record_count(100, 73_390_000);
/// assert!(e > 1_300.0 && e < 1_600.0);
/// ```
pub fn expected_record_count(n: usize, m: u64) -> f64 {
    let nf = n as f64;
    if m <= n as u64 {
        return m as f64;
    }
    nf * (1.0 + harmonic(m) - harmonic(n as u64))
}

/// The record-count bound printed in §IV-E of the paper:
/// `records ≈ 2n · ln((N/L)/n)`.
///
/// The factor of two is the paper's conservative safety margin over the
/// exact expectation given by [`expected_record_count`].
pub fn paper_record_count_model(n: usize, total_cycles: u64, replay_length: u64) -> f64 {
    let m = total_cycles as f64 / replay_length as f64;
    2.0 * n as f64 * (m / n as f64).ln()
}

/// Harmonic number `H_k`, switching to the asymptotic expansion for large `k`.
fn harmonic(k: u64) -> f64 {
    if k < 128 {
        (1..=k).map(|i| 1.0 / i as f64).sum()
    } else {
        let kf = k as f64;
        // H_k = ln k + γ + 1/(2k) − 1/(12k²) + O(k⁻⁴)
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        kf.ln() + EULER_GAMMA + 1.0 / (2.0 * kf) - 1.0 / (12.0 * kf * kf)
    }
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Exact simulation of the reservoir record process using gap skipping.
///
/// Produces the same distribution of record positions as running
/// [`crate::Reservoir`] element by element, but in time proportional to the
/// number of records rather than the stream length — this is what makes
/// Table III's 73-billion-cycle run measurable in microseconds.
#[derive(Debug, Clone)]
pub struct RecordCountSim {
    n: usize,
}

impl RecordCountSim {
    /// Creates a simulator for reservoir capacity `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "reservoir capacity must be nonzero");
        RecordCountSim { n }
    }

    /// Log of the survival probability that *no* record occurs in elements
    /// `k+1 ..= m`:
    ///
    /// `ln Π_{j=k+1}^{m} (1 − n/j) = ln [ Γ(m−n+1)·Γ(k+1) / (Γ(m+1)·Γ(k−n+1)) ]`.
    fn log_survival(&self, k: u64, m: u64) -> f64 {
        let n = self.n as f64;
        let k = k as f64;
        let m = m as f64;
        ln_gamma(m - n + 1.0) + ln_gamma(k + 1.0) - ln_gamma(m + 1.0) - ln_gamma(k - n + 1.0)
    }

    /// Position of the next record strictly after element `k`, given a
    /// stream that ends at `stream_len`, or `None` if no further record
    /// occurs.
    fn next_record<R: Rng + ?Sized>(&self, k: u64, stream_len: u64, rng: &mut R) -> Option<u64> {
        debug_assert!(k >= self.n as u64);
        if k >= stream_len {
            return None;
        }
        let lu = rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln();
        if self.log_survival(k, stream_len) > lu {
            // Even surviving to the end of the stream is more likely than u.
            return None;
        }
        // Binary search the smallest m with log_survival(k, m) <= ln(u).
        let (mut lo, mut hi) = (k + 1, stream_len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.log_survival(k, mid) <= lu {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Simulates the record process over a stream of `stream_len` elements
    /// and returns the total number of record operations (including the
    /// initial reservoir fill).
    pub fn simulate_records<R: Rng + ?Sized>(&self, stream_len: u64, rng: &mut R) -> u64 {
        let n = self.n as u64;
        if stream_len <= n {
            return stream_len;
        }
        let mut records = n;
        let mut pos = n;
        while let Some(next) = self.next_record(pos, stream_len, rng) {
            records += 1;
            pos = next;
        }
        records
    }

    /// Simulates the record process and returns the positions (1-based
    /// element indices) at which records occurred, after the initial fill.
    pub fn simulate_record_positions<R: Rng + ?Sized>(
        &self,
        stream_len: u64,
        rng: &mut R,
    ) -> Vec<u64> {
        let n = self.n as u64;
        let mut positions: Vec<u64> = (1..=n.min(stream_len)).collect();
        let mut pos = n;
        while pos < stream_len {
            match self.next_record(pos, stream_len, rng) {
                Some(next) => {
                    positions.push(next);
                    pos = next;
                }
                None => break,
            }
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reservoir;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn harmonic_matches_direct_sum() {
        let direct: f64 = (1..=1000u64).map(|i| 1.0 / i as f64).sum();
        assert!((harmonic(1000) - direct).abs() < 1e-9);
    }

    #[test]
    fn expected_record_count_short_stream_is_stream_len() {
        assert_eq!(expected_record_count(100, 40), 40.0);
    }

    #[test]
    fn skip_simulation_matches_direct_reservoir_statistics() {
        // Compare the mean record count of the skip-based simulation with
        // the element-by-element Algorithm R over many trials.
        let n = 20;
        let len = 5_000u64;
        let trials = 300;
        let mut rng = StdRng::seed_from_u64(11);

        let sim = RecordCountSim::new(n);
        let mean_skip: f64 = (0..trials)
            .map(|_| sim.simulate_records(len, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;

        let mean_direct: f64 = (0..trials)
            .map(|_| {
                let mut res = Reservoir::new(n);
                for i in 0..len {
                    res.offer(i, &mut rng);
                }
                res.records() as f64
            })
            .sum::<f64>()
            / trials as f64;

        let expected = expected_record_count(n, len);
        assert!(
            (mean_skip - expected).abs() / expected < 0.05,
            "skip mean {mean_skip} vs expectation {expected}"
        );
        assert!(
            (mean_direct - expected).abs() / expected < 0.05,
            "direct mean {mean_direct} vs expectation {expected}"
        );
    }

    #[test]
    fn table3_scale_record_counts_are_in_the_paper_band() {
        // gcc in Table III: 73.39e9 cycles, record count 1497. With L = 1000
        // and n = 100 the exact process lands in the same band.
        let mut rng = StdRng::seed_from_u64(12);
        let sim = RecordCountSim::new(100);
        let m = 73_390_000_000u64 / 1000;
        let records = sim.simulate_records(m, &mut rng);
        assert!(
            (1_200..=1_700).contains(&records),
            "record count {records} outside Table III band"
        );
    }

    #[test]
    fn record_positions_are_increasing_and_bounded() {
        let mut rng = StdRng::seed_from_u64(13);
        let sim = RecordCountSim::new(10);
        let pos = sim.simulate_record_positions(100_000, &mut rng);
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
        assert!(*pos.last().unwrap() <= 100_000);
        assert!(pos.len() as f64 > 10.0);
    }

    #[test]
    fn paper_model_is_a_conservative_upper_bound() {
        let n = 100;
        let total = 73_390_000_000u64;
        let l = 1000;
        let paper = paper_record_count_model(n, total, l);
        let exact = expected_record_count(n, total / l);
        assert!(
            paper > exact,
            "paper bound {paper} below expectation {exact}"
        );
    }
}

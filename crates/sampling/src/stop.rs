//! Confidence-driven adaptive stopping for the sampled flow.
//!
//! The paper's minimum-sample-size rule (eq. 8) answers "how many samples
//! will I need?" from a pilot sample; a [`StoppingRule`] answers the dual
//! online question "do the samples I already replayed suffice?". The flow
//! re-evaluates the rule after every replayed batch: once the normal-theory
//! interval (eq. 7, with finite-population correction per eq. 6) is tighter
//! than the requested relative error ε — and the sample has reached the
//! configured minimum floor — capture and replay both cease, making
//! estimation latency rather than simulated cycles the contract.

use crate::error::StatsError;
use crate::stats::{Confidence, SampleStats};

/// The outcome of one [`StoppingRule::evaluate`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopDecision {
    /// The interval is still wider than the target; keep sampling.
    Continue {
        /// The relative error bound of the interval so far. Infinite when
        /// it cannot be computed yet (fewer than two samples, zero mean).
        relative_error: f64,
    },
    /// The interval satisfies the target; sampling may stop.
    Converged {
        /// The achieved relative error bound, `≤` the rule's target ε.
        achieved: f64,
    },
}

impl StopDecision {
    /// Whether this decision allows sampling to stop.
    pub fn is_converged(self) -> bool {
        matches!(self, StopDecision::Converged { .. })
    }

    /// The relative error bound observed at evaluation time, regardless of
    /// which way the decision went.
    pub fn relative_error(self) -> f64 {
        match self {
            StopDecision::Continue { relative_error } => relative_error,
            StopDecision::Converged { achieved } => achieved,
        }
    }
}

/// A convergence criterion: stop once the confidence interval's relative
/// error bound drops to the target ε, but never before `min_samples`
/// measurements have been replayed.
///
/// # Examples
///
/// ```
/// use strober_sampling::{Confidence, SampleStats, StoppingRule};
///
/// let rule = StoppingRule::new(0.05, Confidence::C99, 4).unwrap();
/// // A nearly constant power stream converges as soon as the floor is met.
/// let stats = SampleStats::from_measurements(&[10.0, 10.1, 9.9, 10.0]).unwrap();
/// assert!(rule.evaluate(&stats, 100_000).is_converged());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StoppingRule {
    target_epsilon: f64,
    confidence: Confidence,
    min_samples: usize,
}

impl StoppingRule {
    /// Creates a rule targeting relative error `target_epsilon` at the
    /// given confidence level, with a floor of `min_samples` measurements.
    ///
    /// The paper's eq. 8 floors its sample-size prescription at 30, the
    /// conventional central-limit threshold; a smaller floor is accepted
    /// here (down to 2, the variance estimator's hard minimum) but leaves
    /// the normality assumption to the caller — see
    /// [`SampleStats::satisfies_clt`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `target_epsilon` is
    /// in `(0, 1)`, the confidence level validates, and `min_samples ≥ 2`.
    pub fn new(
        target_epsilon: f64,
        confidence: Confidence,
        min_samples: usize,
    ) -> Result<Self, StatsError> {
        if !(target_epsilon > 0.0 && target_epsilon < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "target_epsilon",
                constraint: "must be strictly between 0 and 1",
            });
        }
        confidence.validate()?;
        if min_samples < 2 {
            return Err(StatsError::InvalidParameter {
                name: "min_samples",
                constraint: "must be at least 2 for a variance estimate",
            });
        }
        Ok(StoppingRule {
            target_epsilon,
            confidence,
            min_samples,
        })
    }

    /// The target relative error ε.
    pub fn target_epsilon(&self) -> f64 {
        self.target_epsilon
    }

    /// The confidence level the interval is evaluated at.
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }

    /// The minimum number of replayed samples before the rule may fire.
    pub fn min_samples(&self) -> usize {
        self.min_samples
    }

    /// Evaluates the rule against the samples replayed so far.
    ///
    /// `population_size` is the number of disjoint replay windows the
    /// sample was drawn from *at evaluation time*; the finite-population
    /// correction (eq. 6) thus reflects the execution prefix observed so
    /// far, which is exactly the population the estimate extrapolates to
    /// if sampling stops now.
    ///
    /// Never converges while `stats.size() < min_samples`, and a
    /// converged decision always carries `achieved ≤ target ε`.
    pub fn evaluate(&self, stats: &SampleStats, population_size: usize) -> StopDecision {
        let interval = stats.confidence_interval(population_size, self.confidence);
        let relative_error = interval.relative_error_bound();
        if stats.size() >= self.min_samples && relative_error <= self.target_epsilon {
            StopDecision::Converged {
                achieved: relative_error,
            }
        } else {
            StopDecision::Continue { relative_error }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(n: usize) -> Vec<f64> {
        (0..n).map(|i| 50.0 + ((i * 13) % 17) as f64).collect()
    }

    #[test]
    fn constructor_validates_every_parameter() {
        for eps in [0.0, -0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    StoppingRule::new(eps, Confidence::C99, 30),
                    Err(StatsError::InvalidParameter {
                        name: "target_epsilon",
                        ..
                    })
                ),
                "ε = {eps} accepted"
            );
        }
        assert!(StoppingRule::new(0.05, Confidence::Level(1.5), 30).is_err());
        for floor in [0usize, 1] {
            assert!(matches!(
                StoppingRule::new(0.05, Confidence::C99, floor),
                Err(StatsError::InvalidParameter {
                    name: "min_samples",
                    ..
                })
            ));
        }
        let rule = StoppingRule::new(0.05, Confidence::C999, 30).unwrap();
        assert_eq!(rule.target_epsilon(), 0.05);
        assert_eq!(rule.confidence(), Confidence::C999);
        assert_eq!(rule.min_samples(), 30);
    }

    #[test]
    fn never_fires_below_the_floor() {
        // A perfectly constant stream has zero variance, so the interval
        // is degenerate — still, the floor must hold.
        let rule = StoppingRule::new(0.10, Confidence::C99, 10).unwrap();
        let values = vec![42.0; 9];
        let stats = SampleStats::from_measurements(&values).unwrap();
        let d = rule.evaluate(&stats, 1_000_000);
        assert!(!d.is_converged());
        assert_eq!(d.relative_error(), 0.0);
    }

    #[test]
    fn fires_once_floor_and_target_are_both_met() {
        let rule = StoppingRule::new(0.10, Confidence::C99, 10).unwrap();
        let values = vec![42.0; 10];
        let stats = SampleStats::from_measurements(&values).unwrap();
        match rule.evaluate(&stats, 1_000_000) {
            StopDecision::Converged { achieved } => assert!(achieved <= 0.10),
            other => panic!("expected convergence, got {other:?}"),
        }
    }

    #[test]
    fn does_not_fire_while_the_interval_is_loose() {
        let rule = StoppingRule::new(0.0001, Confidence::C999, 2).unwrap();
        let stats = SampleStats::from_measurements(&noisy(40)).unwrap();
        let d = rule.evaluate(&stats, 1_000_000);
        assert!(!d.is_converged());
        assert!(d.relative_error() > 0.0001);
    }

    #[test]
    fn exhausting_the_population_always_converges_past_the_floor() {
        // n == N leaves no sampling variance (eq. 6), so any target is met.
        let rule = StoppingRule::new(0.01, Confidence::C999, 2).unwrap();
        let stats = SampleStats::from_measurements(&noisy(40)).unwrap();
        assert!(rule.evaluate(&stats, 40).is_converged());
    }

    #[test]
    fn zero_mean_never_converges() {
        // Relative error is undefined (infinite) at zero mean.
        let rule = StoppingRule::new(0.5, Confidence::C95, 2).unwrap();
        let stats = SampleStats::from_measurements(&[0.0, 0.0, 0.0]).unwrap();
        let d = rule.evaluate(&stats, 1_000);
        assert!(!d.is_converged());
        assert!(d.relative_error().is_infinite());
    }
}

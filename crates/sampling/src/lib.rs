//! Statistical sampling machinery for sample-based energy simulation.
//!
//! This crate implements §III-A of the Strober paper (ISCA 2016): population
//! and sample statistics (eqs. 1–5), sampling variance (eq. 6), normal-theory
//! confidence intervals (eq. 7), the minimum-sample-size rule (eq. 8), and
//! reservoir sampling (Vitter's Algorithm R) used to select replayable RTL
//! snapshots uniformly at random from an execution whose length is unknown
//! a priori.
//!
//! # Examples
//!
//! Estimate a population mean from a sample and attach a 99% confidence
//! interval:
//!
//! ```
//! use strober_sampling::{SampleStats, Confidence};
//!
//! let measurements = [12.1, 11.8, 12.5, 12.0, 11.9, 12.2, 12.4, 11.7,
//!                     12.3, 12.0, 11.9, 12.1, 12.2, 12.0, 11.8, 12.3,
//!                     12.1, 12.0, 11.9, 12.2, 12.4, 12.0, 11.8, 12.1,
//!                     12.3, 11.9, 12.0, 12.2, 12.1, 12.0];
//! let stats = SampleStats::from_measurements(&measurements).unwrap();
//! let interval = stats.confidence_interval(1_000_000, Confidence::C99);
//! assert!(interval.contains(stats.mean()));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
mod model;
mod normal;
mod reservoir;
mod stats;
mod stop;

pub use error::StatsError;
pub use model::{expected_record_count, paper_record_count_model, RecordCountSim};
pub use normal::{inverse_normal_cdf, normal_cdf, z_quantile};
pub use reservoir::{Reservoir, ReservoirEvent};
pub use stats::{Confidence, ConfidenceInterval, PopulationStats, SampleStats};
pub use stop::{StopDecision, StoppingRule};

//! Standard-normal distribution helpers.
//!
//! Confidence intervals (eq. 7 of the paper) need the `100·[1 − α/2]`-th
//! percentile of the standard normal distribution, `z₁₋α/2`. We implement the
//! CDF via `erf` (Abramowitz & Stegun 7.1.26 refined with a high-precision
//! rational approximation) and the quantile function via Acklam's algorithm
//! polished with one Halley iteration, giving better than 1e-6 absolute
//! accuracy — far beyond what sampling-based power estimation requires.

/// Cumulative distribution function of the standard normal distribution.
///
/// # Examples
///
/// ```
/// let p = strober_sampling::normal_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function, accurate to ~1e-15.
///
/// Uses the Maclaurin series of `erf` for small arguments and the continued
/// fraction expansion of `erfc` (evaluated with the modified Lentz
/// algorithm) for large ones.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let result = if z < 3.0 {
        1.0 - erf_series(z)
    } else {
        erfc_continued_fraction(z)
    };
    if x >= 0.0 {
        result
    } else {
        2.0 - result
    }
}

/// Maclaurin series `erf(x) = 2/√π · Σ (−1)^k x^{2k+1} / (k!·(2k+1))`,
/// used for `0 ≤ x < 3` where it converges quickly.
fn erf_series(x: f64) -> f64 {
    let mut term = x;
    let mut sum = x;
    let x2 = x * x;
    let mut k = 0u32;
    loop {
        k += 1;
        term *= -x2 / k as f64;
        let delta = term / (2 * k + 1) as f64;
        sum += delta;
        if delta.abs() < 1e-18 * sum.abs().max(1e-300) || k > 200 {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Continued fraction
/// `erfc(x)·√π·e^{x²} = 1/(x + (1/2)/(x + (2/2)/(x + (3/2)/(x + …))))`
/// for `x ≥ 3`, evaluated with the modified Lentz algorithm
/// (partial numerators `a₁ = 1`, `a_k = (k−1)/2`; denominators all `x`).
fn erfc_continued_fraction(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f: f64 = TINY; // b0 = 0
    let mut c: f64 = f;
    let mut d: f64 = 0.0;
    for k in 1..200 {
        let a = if k == 1 { 1.0 } else { (k - 1) as f64 / 2.0 };
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() * f
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
///
/// # Examples
///
/// ```
/// let z = strober_sampling::inverse_normal_cdf(0.975);
/// assert!((z - 1.959964).abs() < 1e-4);
/// ```
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires 0 < p < 1, got {p}"
    );

    // Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley iteration against our CDF to polish the root.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The two-sided z-value `z₁₋α/2` for a confidence level `1 − α`.
///
/// For example `z_quantile(0.99)` returns ≈ 2.576: the half-width multiplier
/// for a 99% confidence interval (eq. 7).
///
/// # Panics
///
/// Panics if `confidence` is not strictly between 0 and 1.
///
/// # Examples
///
/// ```
/// let z = strober_sampling::z_quantile(0.95);
/// assert!((z - 1.96).abs() < 1e-2);
/// ```
pub fn z_quantile(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence level must be in (0, 1), got {confidence}"
    );
    let alpha = 1.0 - confidence;
    inverse_normal_cdf(1.0 - alpha / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 5e-7);
        assert!((normal_cdf(-1.0) - 0.15865525393145707).abs() < 5e-7);
        assert!((normal_cdf(2.0) - 0.9772498680518208).abs() < 5e-7);
    }

    #[test]
    fn quantile_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.9599639845400545).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.995) - 2.5758293035489004).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.9995) - 3.2905267314919255).abs() < 1e-4);
    }

    #[test]
    fn z_values_for_paper_confidence_levels() {
        // The paper uses 99% and 99.9% confidence.
        assert!((z_quantile(0.99) - 2.576).abs() < 1e-3);
        assert!((z_quantile(0.999) - 3.291).abs() < 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = inverse_normal_cdf(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-6,
                "round trip failed at p={p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn z_quantile_rejects_out_of_range() {
        let _ = z_quantile(1.0);
    }
}

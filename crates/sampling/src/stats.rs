//! Population and sample statistics (eqs. 1–8 of the paper).

use crate::error::StatsError;
use crate::normal::z_quantile;

/// A confidence level `1 − α` for an interval estimate.
///
/// The paper reports intervals at 99% and 99.9%; arbitrary levels are also
/// supported through [`Confidence::Level`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Confidence {
    /// 95% confidence (`z ≈ 1.960`).
    C95,
    /// 99% confidence (`z ≈ 2.576`), used for Fig. 8 of the paper.
    C99,
    /// 99.9% confidence (`z ≈ 3.291`), the level quoted in the abstract.
    C999,
    /// An arbitrary confidence level in `(0, 1)`.
    Level(f64),
}

impl Confidence {
    /// Creates an arbitrary confidence level, validating it at the API
    /// boundary.
    ///
    /// This is the sanctioned way to build [`Confidence::Level`] from
    /// configuration or CLI input: a bad probability is rejected here with
    /// a typed error instead of aborting the process hours later when the
    /// z-value is finally needed.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `p` is strictly
    /// between 0 and 1 (and therefore finite).
    pub fn new_level(p: f64) -> Result<Self, StatsError> {
        let c = Confidence::Level(p);
        c.validate()?;
        Ok(c)
    }

    /// Checks that this confidence level denotes a probability in
    /// `(0, 1)`.
    ///
    /// The named levels are always valid; a [`Confidence::Level`] built
    /// directly (e.g. deserialized from a config file) may not be, and
    /// every consumer that cannot afford a panic should validate before
    /// calling [`Confidence::z`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the level is not
    /// strictly between 0 and 1.
    pub fn validate(self) -> Result<(), StatsError> {
        let p = self.level();
        if p > 0.0 && p < 1.0 {
            Ok(())
        } else {
            Err(StatsError::InvalidParameter {
                name: "confidence",
                constraint: "must be strictly between 0 and 1",
            })
        }
    }

    /// The confidence level as a probability in `(0, 1)`.
    pub fn level(self) -> f64 {
        match self {
            Confidence::C95 => 0.95,
            Confidence::C99 => 0.99,
            Confidence::C999 => 0.999,
            Confidence::Level(p) => p,
        }
    }

    /// The two-sided z-value `z₁₋α/2` for this confidence level.
    ///
    /// # Panics
    ///
    /// Panics if a [`Confidence::Level`] value is not strictly between 0
    /// and 1; call [`Confidence::validate`] first when the level comes
    /// from untrusted input.
    pub fn z(self) -> f64 {
        z_quantile(self.level())
    }
}

/// A two-sided confidence interval `x̄ ± z·√Var(x̄)` (eq. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    mean: f64,
    half_width: f64,
    confidence: f64,
}

impl ConfidenceInterval {
    /// Creates an interval centred on `mean` with the given half width at the
    /// given confidence level.
    pub fn new(mean: f64, half_width: f64, confidence: f64) -> Self {
        ConfidenceInterval {
            mean,
            half_width,
            confidence,
        }
    }

    /// The centre of the interval (the point estimate).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The half width `z·√Var(x̄)` of the interval.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// The lower endpoint.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// The upper endpoint.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// The confidence level in `(0, 1)`.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The half width expressed relative to the mean (the paper's `ε`).
    ///
    /// Returns infinity when the mean is zero.
    pub fn relative_error_bound(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }

    /// Whether `value` lies within the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower() && value <= self.upper()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Bounded precision, trailing zeros trimmed: 0.999 must render as
        // "99.9%", not the shortest-roundtrip "99.89999999999999%".
        let mut pct = format!("{:.4}", self.confidence * 100.0);
        if pct.contains('.') {
            while pct.ends_with('0') {
                pct.pop();
            }
            if pct.ends_with('.') {
                pct.pop();
            }
        }
        write!(
            f,
            "{:.6} ± {:.6} ({pct}% confidence)",
            self.mean, self.half_width
        )
    }
}

/// Exact statistics of a fully measured population (eqs. 1–2).
///
/// Used by the validation experiments (Fig. 8) where the "true" average power
/// of a microbenchmark is computed by measuring every cycle of a complete
/// gate-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationStats {
    size: usize,
    mean: f64,
    variance: f64,
}

impl PopulationStats {
    /// Measures every element of a population.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::SampleTooSmall`] for an empty population and
    /// [`StatsError::NonFiniteMeasurement`] if any element is NaN or
    /// infinite.
    pub fn from_measurements(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::SampleTooSmall {
                provided: 0,
                required: 1,
            });
        }
        validate_finite(values)?;
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        // Eq. 2 of the paper normalises by N (population variance).
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Ok(PopulationStats {
            size: values.len(),
            mean,
            variance,
        })
    }

    /// The population size `N`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The population mean `X̄` (eq. 1).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance `s²` (eq. 2).
    pub fn variance(&self) -> f64 {
        self.variance
    }
}

/// Statistics of a random sample drawn without replacement (eqs. 3–8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    size: usize,
    mean: f64,
    variance: f64,
}

impl SampleStats {
    /// Computes the sample mean and the unbiased sample variance
    /// (eqs. 3 and 4).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::SampleTooSmall`] when fewer than two
    /// measurements are provided (the variance estimator divides by `n − 1`)
    /// and [`StatsError::NonFiniteMeasurement`] for NaN/infinite inputs.
    pub fn from_measurements(values: &[f64]) -> Result<Self, StatsError> {
        if values.len() < 2 {
            return Err(StatsError::SampleTooSmall {
                provided: values.len(),
                required: 2,
            });
        }
        validate_finite(values)?;
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        Ok(SampleStats {
            size: values.len(),
            mean,
            variance,
        })
    }

    /// The sample size `n`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The sample mean `x̄` (eq. 3), the estimator of the population mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance `s²ₓ` (eq. 4).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Estimate of the population variance `s²` (eq. 5).
    pub fn population_variance_estimate(&self, population_size: usize) -> f64 {
        let n_pop = population_size as f64;
        (n_pop - 1.0) * self.variance / n_pop
    }

    /// Estimate of the sampling variance `Var(x̄)` for a population of size
    /// `N` (eq. 6), including the finite-population correction `(N − n)/N`.
    pub fn sampling_variance(&self, population_size: usize) -> f64 {
        let n_pop = population_size as f64;
        let n = self.size as f64;
        self.variance * (n_pop - n) / (n_pop * n)
    }

    /// The normal-theory confidence interval `x̄ ± z·√Var(x̄)` (eq. 7).
    ///
    /// `population_size` is the number of elements the sample was drawn from
    /// (for Strober, the number of disjoint replay windows in the program's
    /// execution).
    pub fn confidence_interval(
        &self,
        population_size: usize,
        confidence: Confidence,
    ) -> ConfidenceInterval {
        let var = self.sampling_variance(population_size).max(0.0);
        ConfidenceInterval::new(self.mean, confidence.z() * var.sqrt(), confidence.level())
    }

    /// The minimum sample size needed for a relative error of at most
    /// `epsilon` at the given confidence level (eq. 8):
    ///
    /// `n ≥ max(z²·s²ₓ / (ε²·x̄²), 30)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `epsilon` is not
    /// positive or the sample mean is zero (relative error undefined).
    pub fn minimum_sample_size(
        &self,
        epsilon: f64,
        confidence: Confidence,
    ) -> Result<usize, StatsError> {
        // The negated form deliberately treats NaN as invalid.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(epsilon > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "epsilon",
                constraint: "must be a positive finite number",
            });
        }
        if self.mean == 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                constraint: "sample mean must be nonzero for a relative error bound",
            });
        }
        confidence.validate()?;
        let z = confidence.z();
        let n = z * z * self.variance / (epsilon * epsilon * self.mean * self.mean);
        Ok((n.ceil() as usize).max(30))
    }

    /// Whether this sample is large enough for the central-limit-theorem
    /// normality assumption used by eq. 7 (the paper requires `n > 30`).
    pub fn satisfies_clt(&self) -> bool {
        self.size >= 30
    }
}

fn validate_finite(values: &[f64]) -> Result<(), StatsError> {
    for (index, v) in values.iter().enumerate() {
        if !v.is_finite() {
            return Err(StatsError::NonFiniteMeasurement { index });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..40)
            .map(|i| 10.0 + ((i * 7) % 11) as f64 * 0.1)
            .collect()
    }

    #[test]
    fn population_mean_and_variance_match_definitions() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let p = PopulationStats::from_measurements(&values).unwrap();
        assert_eq!(p.size(), 4);
        assert!((p.mean() - 2.5).abs() < 1e-12);
        // Population variance normalises by N: ((1.5)^2*2 + (0.5)^2*2)/4 = 1.25
        assert!((p.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_bessel_correction() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let s = SampleStats::from_measurements(&values).unwrap();
        // Sample variance normalises by n-1: 5/3
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_variance_has_finite_population_correction() {
        let s = SampleStats::from_measurements(&sample()).unwrap();
        // Sampling the whole population leaves no sampling variance.
        assert!(s.sampling_variance(s.size()).abs() < 1e-12);
        // A huge population approaches s^2/n.
        let v = s.sampling_variance(1_000_000_000);
        assert!((v - s.variance() / s.size() as f64).abs() < 1e-9);
    }

    #[test]
    fn interval_shrinks_with_confidence_level() {
        let s = SampleStats::from_measurements(&sample()).unwrap();
        let c95 = s.confidence_interval(10_000, Confidence::C95);
        let c999 = s.confidence_interval(10_000, Confidence::C999);
        assert!(c999.half_width() > c95.half_width());
        assert_eq!(c95.mean(), c999.mean());
    }

    #[test]
    fn interval_endpoints_are_symmetric() {
        let s = SampleStats::from_measurements(&sample()).unwrap();
        let ci = s.confidence_interval(10_000, Confidence::C99);
        assert!((ci.upper() + ci.lower() - 2.0 * ci.mean()).abs() < 1e-12);
        assert!(ci.contains(ci.mean()));
        assert!(!ci.contains(ci.upper() + 1.0));
    }

    #[test]
    fn minimum_sample_size_floors_at_30() {
        // A nearly constant sample needs very few measurements; eq. 8 still
        // demands 30 for the CLT.
        let values: Vec<f64> = (0..32).map(|i| 100.0 + (i % 2) as f64 * 1e-6).collect();
        let s = SampleStats::from_measurements(&values).unwrap();
        assert_eq!(s.minimum_sample_size(0.05, Confidence::C999).unwrap(), 30);
    }

    #[test]
    fn minimum_sample_size_grows_with_variance() {
        let tight: Vec<f64> = (0..31).map(|i| 100.0 + (i % 3) as f64).collect();
        let loose: Vec<f64> = (0..31).map(|i| 100.0 + ((i % 3) as f64) * 40.0).collect();
        let s_tight = SampleStats::from_measurements(&tight).unwrap();
        let s_loose = SampleStats::from_measurements(&loose).unwrap();
        let n_tight = s_tight.minimum_sample_size(0.01, Confidence::C99).unwrap();
        let n_loose = s_loose.minimum_sample_size(0.01, Confidence::C99).unwrap();
        assert!(n_loose > n_tight);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            SampleStats::from_measurements(&[1.0]),
            Err(StatsError::SampleTooSmall { .. })
        ));
        assert!(matches!(
            SampleStats::from_measurements(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteMeasurement { index: 1 })
        ));
        assert!(matches!(
            PopulationStats::from_measurements(&[]),
            Err(StatsError::SampleTooSmall { .. })
        ));
        let s = SampleStats::from_measurements(&sample()).unwrap();
        assert!(s.minimum_sample_size(0.0, Confidence::C99).is_err());
    }

    #[test]
    fn bad_confidence_levels_are_rejected_at_the_boundary() {
        // Each of these would previously have aborted the process inside
        // `z_quantile` the first time a z-value was computed.
        for bad in [0.0, 1.0, -0.5, 2.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    Confidence::new_level(bad),
                    Err(StatsError::InvalidParameter {
                        name: "confidence",
                        ..
                    })
                ),
                "{bad} accepted"
            );
            assert!(Confidence::Level(bad).validate().is_err(), "{bad}");
        }
        let s = SampleStats::from_measurements(&sample()).unwrap();
        assert!(matches!(
            s.minimum_sample_size(0.05, Confidence::Level(1.5)),
            Err(StatsError::InvalidParameter { .. })
        ));
        // Valid levels pass through unchanged.
        let c = Confidence::new_level(0.9).unwrap();
        assert_eq!(c, Confidence::Level(0.9));
        for good in [Confidence::C95, Confidence::C99, Confidence::C999] {
            good.validate().unwrap();
        }
    }

    #[test]
    fn display_formats_confidence_with_bounded_precision() {
        let show = |level: f64| format!("{}", ConfidenceInterval::new(10.0, 0.5, level));
        // 0.999 * 100.0 == 99.89999999999999 in f64; the display must not
        // leak the shortest-roundtrip representation.
        assert_eq!(show(0.999), "10.000000 ± 0.500000 (99.9% confidence)");
        assert_eq!(show(0.99), "10.000000 ± 0.500000 (99% confidence)");
        assert_eq!(show(0.95), "10.000000 ± 0.500000 (95% confidence)");
        assert_eq!(show(0.9995), "10.000000 ± 0.500000 (99.95% confidence)");
    }

    #[test]
    fn population_variance_estimate_tracks_sample_variance() {
        let s = SampleStats::from_measurements(&sample()).unwrap();
        let est = s.population_variance_estimate(1_000_000);
        assert!((est - s.variance()).abs() / s.variance() < 1e-5);
    }
}

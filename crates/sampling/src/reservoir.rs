//! Reservoir sampling (Vitter's Algorithm R).
//!
//! Strober cannot know the length of a program's execution a priori, so it
//! cannot pick `n` uniform snapshot points up front. Reservoir sampling
//! solves this: the first `n` candidate elements are always recorded, and the
//! `k`-th element (`k > n`) is recorded with probability `n/k`, replacing a
//! uniformly random existing reservoir entry. When the stream ends, the
//! reservoir holds a uniform random sample of size `n` drawn without
//! replacement (§III-B, [Vitter 1985]).

use crate::error::StatsError;
use rand::Rng;

/// The outcome of offering one stream element to a [`Reservoir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservoirEvent {
    /// The element was recorded into the given reservoir slot.
    ///
    /// In Strober, a `Recorded` event is the point at which the simulator
    /// stalls, reads the scan chains, and stores a replayable RTL snapshot —
    /// the expensive operation whose count the analytic performance model
    /// (§IV-E) bounds by `2n·ln(N/nL)`.
    Recorded {
        /// Index of the reservoir slot that received the element.
        slot: usize,
    },
    /// The element was not selected.
    Skipped,
}

impl ReservoirEvent {
    /// Whether the element was recorded.
    pub fn is_recorded(self) -> bool {
        matches!(self, ReservoirEvent::Recorded { .. })
    }
}

/// A uniform random sample of fixed capacity over a stream of unknown length.
///
/// # Examples
///
/// ```
/// use strober_sampling::Reservoir;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut res = Reservoir::new(30);
/// for value in 0u64..100_000 {
///     res.offer(value, &mut rng);
/// }
/// let sample = res.into_sample();
/// assert_eq!(sample.len(), 30);
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    records: u64,
    slots: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir that will retain `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be nonzero");
        Reservoir {
            capacity,
            seen: 0,
            records: 0,
            slots: Vec::with_capacity(capacity),
        }
    }

    /// The sample size `n` this reservoir maintains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many stream elements have been offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// How many record operations have occurred (including the initial fill).
    ///
    /// This is the quantity reported in Table III of the paper ("Record
    /// Counts"): each record corresponds to one snapshot capture on the
    /// FPGA simulator. A record is counted when the element is actually
    /// stored by [`Reservoir::place`] — a [`Reservoir::decide`] that is
    /// never followed by a `place` (failed capture, adaptive stop) does
    /// not count, so `records()` matches the snapshots that truly exist.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Decides whether the next stream element should be recorded, without
    /// providing the element itself.
    ///
    /// Returns `Some(slot)` when the caller should materialise the element
    /// (e.g. capture an RTL snapshot, which is expensive) and store it via
    /// [`Reservoir::place`]; returns `None` when the element is skipped.
    ///
    /// This split lets Strober avoid the scan-chain readout cost for skipped
    /// cycles entirely.
    pub fn decide<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<usize> {
        self.seen += 1;
        if self.slots.len() < self.capacity {
            // The slot index the caller must fill next.
            Some(self.slots.len())
        } else {
            // Record the k-th element with probability n/k.
            let k = self.seen;
            let idx = rng.gen_range(0..k);
            if (idx as usize) < self.capacity {
                Some(idx as usize)
            } else {
                strober_probe::counter_add("strober.sampling.skips", 1);
                None
            }
        }
    }

    /// Stores `value` into `slot`, as directed by a previous
    /// [`Reservoir::decide`] call, and counts the record.
    ///
    /// Record accounting (and the `strober.sampling.accepts` /
    /// `strober.sampling.evictions` counters) happens here rather than in
    /// [`Reservoir::decide`], so a decision abandoned before the element
    /// is materialised — a failed snapshot capture, or an adaptive stop
    /// between `decide` and `place` — never inflates [`Reservoir::records`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadReservoirSlot`] when `slot` is at or
    /// beyond the capacity, or skips ahead of the fill front (slots fill
    /// densely from index 0). The reservoir is unchanged on error.
    pub fn place(&mut self, slot: usize, value: T) -> Result<(), StatsError> {
        if slot >= self.capacity || slot > self.slots.len() {
            return Err(StatsError::BadReservoirSlot {
                slot,
                filled: self.slots.len(),
                capacity: self.capacity,
            });
        }
        let evicting = slot < self.slots.len();
        if evicting {
            self.slots[slot] = value;
        } else {
            self.slots.push(value);
        }
        self.records += 1;
        strober_probe::counter_add("strober.sampling.accepts", 1);
        if evicting && self.slots.len() == self.capacity {
            strober_probe::counter_add("strober.sampling.evictions", 1);
        }
        Ok(())
    }

    /// Offers one element to the reservoir.
    pub fn offer<R: Rng + ?Sized>(&mut self, value: T, rng: &mut R) -> ReservoirEvent {
        match self.decide(rng) {
            Some(slot) => {
                self.place(slot, value)
                    .expect("decide always yields a placeable slot");
                ReservoirEvent::Recorded { slot }
            }
            None => ReservoirEvent::Skipped,
        }
    }

    /// A view of the current reservoir contents.
    ///
    /// The order of elements carries no meaning.
    pub fn sample(&self) -> &[T] {
        &self.slots
    }

    /// Consumes the reservoir and returns the sampled elements.
    pub fn into_sample(self) -> Vec<T> {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_to_capacity_first() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut res = Reservoir::new(5);
        for i in 0..5u32 {
            assert_eq!(
                res.offer(i, &mut rng),
                ReservoirEvent::Recorded { slot: i as usize }
            );
        }
        assert_eq!(res.records(), 5);
        assert_eq!(res.sample().len(), 5);
    }

    #[test]
    fn sample_never_exceeds_capacity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut res = Reservoir::new(8);
        for i in 0..10_000u32 {
            res.offer(i, &mut rng);
        }
        assert_eq!(res.sample().len(), 8);
        assert_eq!(res.seen(), 10_000);
        assert!(res.records() >= 8);
    }

    #[test]
    fn short_stream_keeps_every_element() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut res = Reservoir::new(100);
        for i in 0..40u32 {
            res.offer(i, &mut rng);
        }
        let mut s = res.into_sample();
        s.sort_unstable();
        assert_eq!(s, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn uniformity_over_many_trials() {
        // Every element of a 20-element stream should appear in a size-5
        // sample with probability 1/4. Chi-squared style sanity bound.
        let trials = 20_000;
        let mut counts = [0u32; 20];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..trials {
            let mut res = Reservoir::new(5);
            for i in 0..20u32 {
                res.offer(i, &mut rng);
            }
            for v in res.into_sample() {
                counts[v as usize] += 1;
            }
        }
        let expected = trials as f64 * 5.0 / 20.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.06, "element {i} frequency off by {dev}");
        }
    }

    #[test]
    fn record_count_grows_logarithmically() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50usize;
        let mut res = Reservoir::new(n);
        let mut records_at = Vec::new();
        for i in 0..1_000_000u64 {
            res.offer(i, &mut rng);
            if i == 9_999 || i == 99_999 || i == 999_999 {
                records_at.push(res.records());
            }
        }
        // Each decade past n should add roughly n·ln(10) ≈ 115 records.
        let d1 = records_at[1] - records_at[0];
        let d2 = records_at[2] - records_at[1];
        let expect = n as f64 * 10f64.ln();
        for d in [d1, d2] {
            let rel = (d as f64 - expect).abs() / expect;
            assert!(rel < 0.35, "decade increment {d} far from {expect}");
        }
    }

    #[test]
    fn decide_and_place_round_trip_matches_offer_semantics() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut res = Reservoir::new(4);
        for i in 0..1_000u32 {
            if let Some(slot) = res.decide(&mut rng) {
                res.place(slot, i).unwrap();
            }
        }
        assert_eq!(res.sample().len(), 4);
        for &v in res.sample() {
            assert!(v < 1_000);
        }
    }

    #[test]
    fn abandoned_decides_do_not_count_as_records() {
        // A `decide` whose element is never materialised (failed capture,
        // adaptive stop) must not inflate `records()` — Table III reports
        // the number of snapshots that actually exist.
        let mut rng = StdRng::seed_from_u64(7);
        let mut res = Reservoir::new(3);
        let slot = res.decide(&mut rng).expect("fill phase always accepts");
        assert_eq!(res.records(), 0, "no record until place");
        res.place(slot, 1u32).unwrap();
        assert_eq!(res.records(), 1);
        // Abandon the next decision entirely.
        let _ = res.decide(&mut rng).expect("fill phase always accepts");
        assert_eq!(res.records(), 1);
    }

    #[test]
    fn place_rejects_bad_slots_with_a_typed_error() {
        let mut res = Reservoir::new(3);
        // Skipping the fill front (slot 1 while slot 0 is empty).
        assert_eq!(
            res.place(1, 9u32),
            Err(StatsError::BadReservoirSlot {
                slot: 1,
                filled: 0,
                capacity: 3,
            })
        );
        // At or beyond the capacity.
        assert!(matches!(
            res.place(3, 9u32),
            Err(StatsError::BadReservoirSlot { slot: 3, .. })
        ));
        // The reservoir is untouched by the failed placements.
        assert_eq!(res.records(), 0);
        assert!(res.sample().is_empty());
        res.place(0, 9u32).unwrap();
        assert_eq!(res.records(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::<u32>::new(0);
    }
}

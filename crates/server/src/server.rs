//! The estimation daemon: listeners, connection handling, the worker
//! pool, and graceful shutdown.
//!
//! One [`Server`] owns a TCP listener (and optionally a Unix-socket
//! listener), a table of every job it has seen, a priority queue feeding
//! a fixed worker pool, and the warm flow cache. Connections are
//! handled on their own threads; each request gets exactly one response,
//! and followed jobs additionally stream [`Event`]s over the submitting
//! connection. Shutdown — from a `Shutdown` request, SIGINT/SIGTERM, or
//! [`ServerHandle::shutdown`] — stops accepting work, then either drains
//! in-flight jobs (up to the configured deadline, after which their
//! cancel tokens trip) or cancels them immediately, and finally flushes
//! the probe metrics and trace.
//!
//! [`Event`]: crate::protocol::Event

use crate::frame::{decode, read_frame_bytes_while, FrameError};
use crate::jobs::{self, FlowCache, JobFailure};
use crate::protocol::{
    ErrorKind, Event, JobState, Request, Response, ServerMsg, WatchFrame, WireError,
    PROTOCOL_VERSION,
};
use crate::queue::{ConnWriter, JobEntry, JobPhase, JobQueue, JobTable};
use crate::signal;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use strober_store::Store;

/// How long accept loops and connection readers sleep between polls.
const POLL: Duration = Duration::from_millis(25);

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address. Port 0 picks an ephemeral port (the bound
    /// address is available from [`Server::local_addr`]).
    pub addr: String,
    /// Additional Unix-socket listen path (Unix targets only).
    pub unix_socket: Option<String>,
    /// Worker threads; 0 = a conservative default of 2.
    pub workers: usize,
    /// Artifact-store directory for prepared designs and job manifests;
    /// `None` disables the on-disk store (the in-memory warm cache
    /// still applies).
    pub store_dir: Option<String>,
    /// Graceful-shutdown drain deadline in milliseconds: how long
    /// in-flight jobs get to finish before their cancel tokens trip.
    pub drain_ms: u64,
    /// Optional HTTP listen address for Prometheus scraping. When set,
    /// a minimal HTTP/1.1 listener answers `GET /metrics` with the text
    /// exposition of the registry (the bound address is available from
    /// [`Server::metrics_local_addr`]). `None` disables the endpoint;
    /// [`Request::Scrape`] over the framed protocol always works.
    ///
    /// [`Request::Scrape`]: crate::protocol::Request::Scrape
    pub metrics_addr: Option<String>,
    /// Flight-recorder frame interval in milliseconds (0 = the probe
    /// default of one frame per second).
    pub flight_interval_ms: u64,
    /// Flight-recorder ring capacity in frames (0 = the probe default
    /// of 600, ten minutes at the default interval).
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            unix_socket: None,
            workers: 0,
            store_dir: None,
            drain_ms: 30_000,
            metrics_addr: None,
            flight_interval_ms: 0,
            flight_capacity: 0,
        }
    }
}

/// State shared by listeners, connection threads and workers.
pub(crate) struct Shared {
    workers: usize,
    per_job_parallelism: usize,
    drain_ms: u64,
    queue: JobQueue,
    table: JobTable,
    flows: FlowCache,
    store: Option<Mutex<Store>>,
    next_id: AtomicU64,
    /// Stop accepting connections and submissions.
    stop: AtomicBool,
    /// On shutdown: `true` = drain in-flight jobs, `false` = cancel.
    drain: AtomicBool,
    /// Workers have exited; readers should hang up.
    done: AtomicBool,
    /// Jobs currently executing.
    active: AtomicUsize,
    /// Streamer threads serving `Watch` subscriptions, joined at
    /// shutdown. Each exits on `done` or when its connection dies.
    watchers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("workers", &self.workers)
            .field("stop", &self.stop.load(Ordering::Relaxed))
            .field("done", &self.done.load(Ordering::Relaxed))
            .finish()
    }
}

impl Shared {
    fn begin_shutdown(&self, drain: bool) {
        self.drain.store(drain, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::triggered()
    }
}

/// A clonable remote control for a running [`Server`] — lets tests and
/// embedding code request shutdown without a connection.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests shutdown: `drain` finishes in-flight jobs (up to the
    /// drain deadline), `!drain` cancels them at the next sample
    /// boundary. Returns immediately; [`Server::run`] unblocks once the
    /// shutdown completes.
    pub fn shutdown(&self, drain: bool) {
        self.shared.begin_shutdown(drain);
    }

    /// Whether the server has fully stopped (workers joined, state
    /// flushed).
    pub fn is_finished(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-running daemon.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    tcp: TcpListener,
    addr: SocketAddr,
    #[cfg(unix)]
    unix: Option<std::os::unix::net::UnixListener>,
    unix_path: Option<String>,
    metrics: Option<TcpListener>,
    metrics_addr: Option<SocketAddr>,
    flight: strober_probe::FlightConfig,
}

impl Server {
    /// Binds the listeners and builds the shared state.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a listener cannot be bound. A broken
    /// store directory is not fatal — the server runs storeless.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let tcp = TcpListener::bind(&config.addr)?;
        tcp.set_nonblocking(true)?;
        let addr = tcp.local_addr()?;
        #[cfg(unix)]
        let unix = match &config.unix_socket {
            Some(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let store = config
            .store_dir
            .as_ref()
            .and_then(|dir| match Store::open(dir) {
                Ok(store) => Some(Mutex::new(store)),
                Err(e) => {
                    strober_probe::warn!(
                        "cannot open artifact store at `{dir}`: {e}; running storeless"
                    );
                    None
                }
            });
        let workers = if config.workers == 0 {
            2
        } else {
            config.workers
        };
        // Each job replays on its own worker; split the machine's
        // threads between concurrent jobs instead of oversubscribing.
        let per_job_parallelism = (strober::StroberFlow::default_parallelism() / workers).max(1);
        let metrics = match &config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &metrics {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let flight_defaults = strober_probe::FlightConfig::default();
        let flight = strober_probe::FlightConfig {
            interval_ms: if config.flight_interval_ms == 0 {
                flight_defaults.interval_ms
            } else {
                config.flight_interval_ms
            },
            capacity: if config.flight_capacity == 0 {
                flight_defaults.capacity
            } else {
                config.flight_capacity
            },
        };
        Ok(Server {
            shared: Arc::new(Shared {
                workers,
                per_job_parallelism,
                drain_ms: config.drain_ms,
                queue: JobQueue::new(),
                table: JobTable::default(),
                flows: FlowCache::default(),
                store,
                next_id: AtomicU64::new(1),
                stop: AtomicBool::new(false),
                drain: AtomicBool::new(true),
                done: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                watchers: Mutex::new(Vec::new()),
            }),
            tcp,
            addr,
            #[cfg(unix)]
            unix,
            unix_path: config.unix_socket,
            metrics,
            metrics_addr,
            flight,
        })
    }

    /// The bound TCP address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus HTTP address, when
    /// [`ServerConfig::metrics_addr`] was set (resolves ephemeral
    /// ports).
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Runs the daemon until shutdown completes: accepts connections,
    /// schedules jobs, then drains or cancels and flushes.
    ///
    /// # Errors
    ///
    /// Currently infallible after [`Server::bind`]; the signature leaves
    /// room for listener failures to surface.
    pub fn run(self) -> io::Result<()> {
        signal::install();
        strober_probe::enable();
        // Bounds registration is a no-op while the recorder is disabled,
        // so it must come after `enable` to take effect.
        strober_probe::histogram_with_bounds(
            "strober.server.job_latency_ms",
            &[10.0, 100.0, 1_000.0, 10_000.0, 60_000.0, 600_000.0],
        );
        strober_probe::histogram_with_bounds(
            "strober.server.queue_wait_ms",
            &[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 60_000.0],
        );
        let flight = strober_probe::start_flight_recorder(self.flight);
        let shared = self.shared;

        let worker_handles: Vec<_> = (0..shared.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("strober-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();

        let metrics_handle = self.metrics.map(|listener| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("strober-metrics-http".to_owned())
                .spawn(move || accept_metrics_http(&shared, &listener))
                .expect("spawn metrics listener")
        });
        if let Some(addr) = self.metrics_addr {
            strober_probe::info!("prometheus exposition on http://{addr}/metrics");
        }

        let mut conn_handles = Vec::new();
        #[cfg(unix)]
        let unix_handle = self.unix.map(|listener| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("strober-accept-unix".to_owned())
                .spawn(move || accept_unix(&shared, &listener))
                .expect("spawn unix acceptor")
        });

        strober_probe::info!(
            "strober-serve listening on {} ({} workers)",
            self.addr,
            shared.workers
        );
        while !shared.stopping() {
            match self.tcp.accept() {
                Ok((stream, peer)) => {
                    let shared = shared.clone();
                    let handle = std::thread::Builder::new()
                        .name("strober-conn".to_owned())
                        .spawn(move || {
                            let _ = serve_tcp_conn(&shared, stream, peer);
                        })
                        .expect("spawn connection");
                    conn_handles.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => {
                    strober_probe::warn!("accept failed: {e}");
                    std::thread::sleep(POLL);
                }
            }
        }

        // ---- graceful shutdown -----------------------------------------
        shared.stop.store(true, Ordering::SeqCst);
        let drain = shared.drain.load(Ordering::SeqCst);
        strober_probe::info!(
            "shutting down ({})",
            if drain {
                "draining in-flight jobs"
            } else {
                "cancelling in-flight jobs"
            }
        );
        for id in shared.queue.close(drain) {
            if let Some(job) = shared.table.get(id) {
                finish_job(&job, Err(JobFailure::Cancelled));
            }
        }
        if !drain {
            for job in shared.table.open_jobs() {
                job.cancel.cancel();
            }
        }
        // Deadline guard: if draining takes too long, trip every open
        // job's token so the workers come home.
        let deadline = Instant::now() + Duration::from_millis(shared.drain_ms);
        let guard = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("strober-drain-guard".to_owned())
                .spawn(move || {
                    while Instant::now() < deadline && !shared.done.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    if !shared.done.load(Ordering::SeqCst) {
                        for job in shared.table.open_jobs() {
                            job.cancel.cancel();
                        }
                    }
                })
                .expect("spawn drain guard")
        };
        for handle in worker_handles {
            let _ = handle.join();
        }
        shared.done.store(true, Ordering::SeqCst);
        let _ = guard.join();
        #[cfg(unix)]
        if let Some(handle) = unix_handle {
            let _ = handle.join();
        }
        if let Some(handle) = metrics_handle {
            let _ = handle.join();
        }
        for handle in conn_handles {
            let _ = handle.join();
        }
        for handle in shared
            .watchers
            .lock()
            .expect("watchers lock")
            .drain(..)
            .collect::<Vec<_>>()
        {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }

        // Flush what the probe recorder captured over the daemon's life.
        let events = strober_probe::take_events();
        let flight_frames = flight.stop();
        if let Some(store) = &shared.store {
            let store = store.lock().expect("store lock");
            let trace = store.root().join("server-trace.json");
            if std::fs::write(&trace, strober_probe::chrome_trace_json(&events)).is_ok() {
                strober_probe::info!("server trace written to {}", trace.display());
            }
            let metrics = store.root().join("server-metrics.json");
            let snap = strober_probe::snapshot();
            let _ = std::fs::write(
                &metrics,
                serde_json::to_string_pretty(&snap).expect("metrics serialize"),
            );
            let flight_path = store.root().join("server-flight.json");
            let _ = std::fs::write(
                &flight_path,
                serde_json::to_string_pretty(&flight_frames).expect("flight serialize"),
            );
        }
        strober_probe::info!("server metrics at exit:\n{}", strober_probe::snapshot());
        Ok(())
    }
}

/// One worker: pull, execute, publish, repeat until the queue closes.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let worker_labels = strober_probe::Labels::new().worker(&index.to_string());
    // Publish the idle gauge up front so every worker has a series from
    // startup — `strober top` shows the full pool, not just workers that
    // have already run a job.
    strober_probe::gauge_set_labeled("strober.server.worker_busy", &worker_labels, 0.0);
    while let Some(id) = shared.queue.pop() {
        let Some(job) = shared.table.get(id) else {
            continue;
        };
        let started = Instant::now();
        *job.phase.lock().expect("phase lock") = JobPhase::Running { started };
        let queue_wait_ms = job.queue_wait_ms();
        strober_probe::histogram_record("strober.server.queue_wait_ms", queue_wait_ms);
        job.publish(Event::Started {
            job: job.id,
            queue_wait_ms,
        });
        let busy = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        strober_probe::gauge_set("strober.server.workers_busy", busy as f64);
        strober_probe::gauge_set_labeled("strober.server.worker_busy", &worker_labels, 1.0);
        let result = jobs::run_job(
            &job,
            &shared.flows,
            shared.store.as_ref(),
            shared.per_job_parallelism,
        );
        let busy = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
        strober_probe::gauge_set("strober.server.workers_busy", busy as f64);
        strober_probe::gauge_set_labeled("strober.server.worker_busy", &worker_labels, 0.0);
        strober_probe::histogram_record(
            "strober.server.job_latency_ms",
            started.elapsed().as_secs_f64() * 1e3,
        );
        finish_job(&job, result);
    }
}

/// Moves a job to its terminal phase, tells the followers, and retires
/// the job's labeled series from the registry (its manifest already
/// captured them), so watch streams and scrapes only carry live jobs
/// and registry cardinality stays bounded by concurrency, not history.
fn finish_job(job: &JobEntry, result: Result<crate::protocol::JobResult, JobFailure>) {
    let waited = job.waited();
    match result {
        Ok(res) => {
            *job.phase.lock().expect("phase lock") = JobPhase::Done { waited };
            strober_probe::counter_add("strober.server.jobs_completed", 1);
            job.publish(Event::Done {
                job: job.id,
                result: res,
            });
        }
        Err(JobFailure::Cancelled) => {
            *job.phase.lock().expect("phase lock") = JobPhase::Cancelled { waited };
            strober_probe::counter_add("strober.server.jobs_cancelled", 1);
            job.publish(Event::Cancelled { job: job.id });
        }
        Err(JobFailure::Error(e)) => {
            *job.phase.lock().expect("phase lock") = JobPhase::Failed { waited };
            strober_probe::counter_add("strober.server.jobs_failed", 1);
            strober_probe::warn!("job {} failed: {e}", job.id);
            job.publish(Event::Failed {
                job: job.id,
                error: e,
            });
        }
    }
    strober_probe::remove_series_with_label("job", &job.id.to_string());
}

fn serve_tcp_conn(
    shared: &Arc<Shared>,
    stream: std::net::TcpStream,
    peer: SocketAddr,
) -> Result<(), FrameError> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| FrameError::Io(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    let writer = stream
        .try_clone()
        .map_err(|e| FrameError::Io(e.to_string()))?;
    serve_conn(shared, stream, Box::new(writer), peer.to_string());
    Ok(())
}

#[cfg(unix)]
fn accept_unix(shared: &Arc<Shared>, listener: &std::os::unix::net::UnixListener) {
    let mut handles = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("strober-conn-unix".to_owned())
                    .spawn(move || {
                        if stream
                            .set_read_timeout(Some(Duration::from_millis(100)))
                            .is_err()
                        {
                            return;
                        }
                        let Ok(writer) = stream.try_clone() else {
                            return;
                        };
                        serve_conn(&shared, stream, Box::new(writer), "unix".to_owned());
                    })
                    .expect("spawn unix connection");
                handles.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

/// Drives one connection: reads frames until the peer hangs up or the
/// server finishes. A malformed-but-well-framed payload produces a
/// typed `Protocol` error and the connection keeps going; a broken
/// stream (truncation, oversized header, I/O failure) hangs up after a
/// best-effort error frame.
fn serve_conn(
    shared: &Arc<Shared>,
    mut reader: impl Read,
    writer: Box<dyn std::io::Write + Send>,
    peer: String,
) {
    let writer = Arc::new(ConnWriter::new(writer));
    let mut client_name = peer;
    loop {
        let keep_waiting = || !shared.done.load(Ordering::SeqCst);
        match read_frame_bytes_while(&mut reader, keep_waiting) {
            Ok(None) | Err(FrameError::Closed) => break,
            Ok(Some(bytes)) => match decode::<Request>(&bytes) {
                Ok(req) => handle_request(shared, &writer, &mut client_name, req),
                Err(e) => writer.send(&ServerMsg::Response(Response::Error {
                    error: WireError::new(ErrorKind::Protocol, e.to_string()),
                })),
            },
            Err(e) => {
                writer.send(&ServerMsg::Response(Response::Error {
                    error: WireError::new(ErrorKind::Protocol, e.to_string()),
                }));
                break;
            }
        }
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    client_name: &mut String,
    req: Request,
) {
    let respond = |r: Response| writer.send(&ServerMsg::Response(r));
    match req {
        Request::Hello { client } => {
            *client_name = client;
            respond(Response::Hello {
                server: format!("strober-serve/{}", env!("CARGO_PKG_VERSION")),
                protocol: PROTOCOL_VERSION,
                workers: shared.workers,
            });
        }
        Request::Submit {
            spec,
            priority,
            follow,
        } => {
            if shared.stopping() {
                return respond(Response::Error {
                    error: WireError::new(ErrorKind::Shutdown, "server is shutting down"),
                });
            }
            if let Err(e) = jobs::validate(&spec) {
                return respond(Response::Error { error: e });
            }
            let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
            let job = Arc::new(JobEntry::new(id, spec, priority, client_name.clone()));
            if follow {
                job.subscribe(writer.clone());
            }
            shared.table.insert(job);
            if !shared.queue.push(id, priority) {
                return respond(Response::Error {
                    error: WireError::new(ErrorKind::Shutdown, "server is shutting down"),
                });
            }
            strober_probe::counter_add("strober.server.jobs_accepted", 1);
            respond(Response::Submitted { job: id });
        }
        Request::Jobs => respond(Response::Jobs {
            jobs: shared.table.summaries(),
        }),
        Request::Status { job } => match shared.table.get(job) {
            Some(entry) => respond(Response::Status {
                job: entry.summary(),
            }),
            None => respond(Response::Error {
                error: WireError::new(ErrorKind::UnknownJob, format!("no job {job}")),
            }),
        },
        Request::Cancel { job } => match shared.table.get(job) {
            Some(entry) => {
                if shared.queue.remove(job) {
                    finish_job(&entry, Err(JobFailure::Cancelled));
                    respond(Response::Cancelled {
                        job,
                        state: JobState::Cancelled,
                    });
                } else {
                    let state = entry.state();
                    if state == JobState::Running {
                        entry.cancel.cancel();
                    }
                    respond(Response::Cancelled { job, state });
                }
            }
            None => respond(Response::Error {
                error: WireError::new(ErrorKind::UnknownJob, format!("no job {job}")),
            }),
        },
        Request::Metrics => respond(Response::Metrics {
            metrics: strober_probe::snapshot(),
        }),
        Request::Watch { interval_ms } => {
            let interval_ms = interval_ms.clamp(50, 60_000);
            respond(Response::Watching { interval_ms });
            let handle = {
                let shared2 = shared.clone();
                let writer = writer.clone();
                std::thread::Builder::new()
                    .name("strober-watch".to_owned())
                    .spawn(move || watch_loop(&shared2, &writer, interval_ms))
                    .expect("spawn watch streamer")
            };
            shared.watchers.lock().expect("watchers lock").push(handle);
        }
        Request::Scrape => respond(Response::Scrape {
            text: strober_probe::prometheus_text(&strober_probe::snapshot()),
        }),
        Request::Shutdown { drain } => {
            shared.begin_shutdown(drain);
            respond(Response::ShuttingDown { drain });
        }
        Request::Ping => respond(Response::Pong),
    }
}

/// Streams incremental [`WatchFrame`]s over one subscribed connection
/// until the connection dies or the server finishes. Frame 0 is a full
/// snapshot (`reset`); every later tick diffs the registry against the
/// previous tick and ships only changed entries plus retired names, so
/// steady-state frames are near-empty heartbeats.
fn watch_loop(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, interval_ms: u64) {
    let interval = Duration::from_millis(interval_ms);
    let mut prev = strober_probe::MetricsSnapshot::default();
    let mut seq = 0u64;
    loop {
        let cur = strober_probe::snapshot();
        let frame = WatchFrame {
            seq,
            at_ms: strober_probe::now_ms(),
            reset: seq == 0,
            removed: if seq == 0 {
                Vec::new()
            } else {
                cur.removed_since(&prev)
            },
            metrics: if seq == 0 {
                cur.clone()
            } else {
                cur.delta_from(&prev)
            },
        };
        writer.send(&ServerMsg::Watch(frame));
        prev = cur;
        seq += 1;
        // Sleep in POLL-sized slices so shutdown and hangup are noticed
        // promptly even at long intervals.
        let deadline = Instant::now() + interval;
        loop {
            if shared.done.load(Ordering::SeqCst) || !writer.is_alive() {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep(POLL.min(deadline - now));
        }
    }
}

/// Accepts Prometheus scrapes on the dedicated HTTP listener. Each
/// connection gets one request answered and is closed — the exposition
/// endpoint serves scrapers, not browsers holding keep-alive sockets.
fn accept_metrics_http(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = answer_metrics_http(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Answers one HTTP/1.1 request: `GET /metrics` gets the text
/// exposition, anything else a 404. The request line is all we parse;
/// headers are read until the blank line and ignored.
fn answer_metrics_http(mut stream: std::net::TcpStream) -> io::Result<()> {
    use std::io::{BufRead, BufReader, Write};
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let target = request_line.split_whitespace().nth(1).unwrap_or("");
    let response = if target == "/metrics" || target.starts_with("/metrics?") {
        let body = strober_probe::prometheus_text(&strober_probe::snapshot());
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            strober_probe::PROMETHEUS_CONTENT_TYPE,
            body.len(),
            body
        )
    } else {
        let body = "not found; try /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_port_zero_yields_an_ephemeral_port() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert!(!server.handle().is_finished());
    }

    #[test]
    fn handle_shutdown_unblocks_run() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        handle.shutdown(true);
        join.join().unwrap().unwrap();
        assert!(handle.is_finished());
    }
}

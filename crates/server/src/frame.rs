//! Length-prefixed message framing.
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by that many bytes of JSON. The length cap
//! ([`MAX_FRAME_LEN`]) bounds a malicious or corrupted header before any
//! allocation happens, and every failure mode is a typed [`FrameError`]
//! so the server can distinguish "this frame was garbage, drop it and
//! keep the connection" ([`FrameError::Malformed`]) from "the stream
//! itself is broken, hang up" (everything else).

use std::io::{ErrorKind, Read, Write};

/// Hard cap on a frame's payload length (16 MiB). Chosen to fit any
/// realistic manifest-bearing result while rejecting corrupted headers
/// (which otherwise read as multi-gigabyte allocations).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header announced a payload longer than [`MAX_FRAME_LEN`].
    Oversized {
        /// The announced payload length.
        len: u64,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The stream ended cleanly between frames.
    Closed,
    /// An I/O error from the underlying stream.
    Io(String),
    /// The payload was not valid JSON for the expected type. The stream
    /// position is intact — the caller may keep reading frames.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "stream ended mid-frame ({got} of {expected} bytes)")
            }
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Serializes `msg` and writes it as one frame.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the encoded message exceeds
/// [`MAX_FRAME_LEN`], [`FrameError::Io`] on write failure.
pub fn write_frame<T: serde::Serialize + ?Sized>(
    w: &mut impl Write,
    msg: &T,
) -> Result<(), FrameError> {
    let body = serde_json::to_string(msg)
        .map_err(|e| FrameError::Malformed(e.to_string()))?
        .into_bytes();
    if body.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len: body.len() as u64,
        });
    }
    let header = (body.len() as u32).to_be_bytes();
    w.write_all(&header)
        .and_then(|()| w.write_all(&body))
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

/// Reads one frame's payload bytes. Blocks until a full frame arrives.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF between frames,
/// [`FrameError::Truncated`] on EOF mid-frame, [`FrameError::Oversized`]
/// for a header over the cap, [`FrameError::Io`] otherwise.
pub fn read_frame_bytes(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    match read_frame_bytes_while(r, || true)? {
        Some(bytes) => Ok(bytes),
        None => unreachable!("keep_waiting is constant true"),
    }
}

/// [`read_frame_bytes`] for polled streams (sockets with a read
/// timeout): timeouts *between* frames consult `keep_waiting` — returning
/// `Ok(None)` once it goes false — while timeouts *inside* a frame always
/// retry, so a slow writer never desynchronizes the stream.
///
/// # Errors
///
/// As [`read_frame_bytes`].
pub fn read_frame_bytes_while(
    r: &mut impl Read,
    keep_waiting: impl Fn() -> bool,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let Some(()) = read_exact_polled(r, &mut header, false, &keep_waiting)? else {
        return Ok(None);
    };
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    let mut body = vec![0u8; len];
    match read_exact_polled(r, &mut body, true, &keep_waiting)? {
        Some(()) => Ok(Some(body)),
        None => unreachable!("mid-frame reads always retry"),
    }
}

/// Fills `buf`, treating timeouts as retries. With `committed` false, a
/// clean EOF before the first byte is [`FrameError::Closed`] and a
/// timeout consults `keep_waiting`; once any byte has arrived (or
/// `committed` is true) EOF is [`FrameError::Truncated`] and timeouts
/// always retry.
fn read_exact_polled(
    r: &mut impl Read,
    buf: &mut [u8],
    committed: bool,
    keep_waiting: &impl Fn() -> bool,
) -> Result<Option<()>, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && !committed {
                    FrameError::Closed
                } else {
                    FrameError::Truncated {
                        expected: buf.len(),
                        got,
                    }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if got == 0 && !committed && !keep_waiting() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(Some(()))
}

/// Decodes a frame payload into a message.
///
/// # Errors
///
/// [`FrameError::Malformed`] if the bytes are not UTF-8 JSON for `T`.
pub fn decode<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, FrameError> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| FrameError::Malformed(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Reads and decodes one frame.
///
/// # Errors
///
/// The union of [`read_frame_bytes`] and [`decode`] failures.
pub fn read_frame<T: serde::Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    decode(&read_frame_bytes(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![1u32, 2, 3]).unwrap();
        write_frame(&mut buf, &String::from("hello")).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame::<Vec<u32>>(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(read_frame::<String>(&mut r).unwrap(), "hello");
        assert_eq!(read_frame::<String>(&mut r), Err(FrameError::Closed));
    }

    #[test]
    fn truncated_streams_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &String::from("truncate me please")).unwrap();
        // Mid-body cut.
        let mut r = Cursor::new(&buf[..buf.len() - 5]);
        assert!(matches!(
            read_frame::<String>(&mut r),
            Err(FrameError::Truncated { .. })
        ));
        // Mid-header cut.
        let mut r = Cursor::new(&buf[..2]);
        assert!(matches!(
            read_frame::<String>(&mut r),
            Err(FrameError::Truncated {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn oversized_headers_are_rejected_before_allocating() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame::<String>(&mut r),
            Err(FrameError::Oversized {
                len: u64::from(u32::MAX)
            })
        );
    }

    #[test]
    fn garbage_payload_is_malformed_but_stream_continues() {
        let mut buf = Vec::new();
        let body = b"{definitely not json";
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body);
        write_frame(&mut buf, &String::from("after")).unwrap();
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_frame::<String>(&mut r),
            Err(FrameError::Malformed(_))
        ));
        // The bad frame was fully consumed; the next one parses fine.
        assert_eq!(read_frame::<String>(&mut r).unwrap(), "after");
    }
}

//! The shared design and workload catalog.
//!
//! Both the one-shot CLI and the estimation server resolve cores and
//! workloads through this module, so a job submitted over the wire
//! builds *exactly* the design and memory image the equivalent
//! `strober estimate` invocation would — the bit-identity guarantee
//! between served and one-shot runs starts here.

use strober_cores::CoreConfig;
use strober_isa::{assemble, programs};

/// Generator of one bundled workload's assembly source.
pub type WorkloadGen = fn() -> String;

/// The bundled workloads: scaled versions of the paper's benchmarks.
pub const WORKLOADS: &[(&str, WorkloadGen)] = &[
    ("vvadd", || programs::vvadd(640)),
    ("towers", || programs::towers(14)),
    ("dhrystone", || programs::dhrystone(2800)),
    ("qsort", || programs::qsort(768)),
    ("spmv", || programs::spmv(256, 12)),
    ("dgemm", || programs::dgemm(36)),
    ("coremark", || programs::coremark_like(60)),
    ("linux-boot", || programs::linux_boot_like(16, 1500)),
    ("gcc", || programs::gcc_like(40_000, 2048)),
];

/// The catalogued core configuration names.
pub const CORES: &[&str] = &["rok", "rok-tiny", "boum-1w", "boum-2w"];

/// Resolves a core configuration by catalog name.
///
/// # Errors
///
/// Returns a user-facing message for unknown names.
pub fn core_config(name: &str) -> Result<CoreConfig, String> {
    match name {
        "rok" => Ok(CoreConfig::rok()),
        "rok-tiny" => Ok(CoreConfig::rok_tiny()),
        "boum-1w" => Ok(CoreConfig::boum_1w()),
        "boum-2w" => Ok(CoreConfig::boum_2w()),
        other => Err(format!(
            "unknown core `{other}` (expected rok, rok-tiny, boum-1w or boum-2w)"
        )),
    }
}

/// The assembly source of a bundled workload.
pub fn workload_source(name: &str) -> Option<String> {
    WORKLOADS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, gen)| gen())
}

/// Assembles a program source into a memory image.
///
/// # Errors
///
/// Returns a user-facing message for assembly failures.
pub fn image_from_source(source: &str) -> Result<Vec<u32>, String> {
    Ok(assemble(source)
        .map_err(|e| format!("assembly failed: {e}"))?
        .words)
}

/// The memory image for a workload reference: `inline_asm` (assembly
/// text) wins over the bundled `workload` name.
///
/// # Errors
///
/// Returns a user-facing message for unknown workloads or assembly
/// failures.
pub fn image_for(workload: &str, inline_asm: &Option<String>) -> Result<Vec<u32>, String> {
    let source = match inline_asm {
        Some(text) => text.clone(),
        None => workload_source(workload)
            .ok_or_else(|| format!("unknown workload `{workload}` (see `strober workloads`)"))?,
    };
    image_from_source(&source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalogued_core_resolves() {
        for name in CORES {
            assert_eq!(core_config(name).unwrap().name, *name);
        }
        assert!(core_config("rocket").is_err());
    }

    #[test]
    fn every_bundled_workload_assembles() {
        for (name, _) in WORKLOADS {
            assert!(
                !image_for(name, &None).unwrap().is_empty(),
                "workload {name}"
            );
        }
        assert!(image_for("nonesuch", &None).is_err());
    }

    #[test]
    fn inline_asm_overrides_the_workload_name() {
        let inline = Some(programs::vvadd(16));
        let img = image_for("ignored", &inline).unwrap();
        assert_eq!(img, image_from_source(&programs::vvadd(16)).unwrap());
    }
}

//! The in-memory job table, priority queue and event fan-out.

use crate::frame::write_frame;
use crate::protocol::{Event, JobSpec, JobState, JobSummary, Priority, ServerMsg};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use strober::CancelToken;

/// A connection's serialized write half, shared between the request
/// handler (responses) and worker threads (events for followed jobs).
/// The first write failure marks the writer dead; later sends are
/// silently dropped — a follower that hung up must not fail the job.
pub(crate) struct ConnWriter {
    w: Mutex<Box<dyn Write + Send>>,
    alive: AtomicBool,
}

impl std::fmt::Debug for ConnWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnWriter")
            .field("alive", &self.alive.load(Ordering::Relaxed))
            .finish()
    }
}

impl ConnWriter {
    pub(crate) fn new(w: Box<dyn Write + Send>) -> Self {
        ConnWriter {
            w: Mutex::new(w),
            alive: AtomicBool::new(true),
        }
    }

    /// Whether the connection has not yet failed a write. Streaming
    /// loops (watch subscriptions) poll this to stop ticking once the
    /// client hangs up.
    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Sends one message, best-effort.
    pub(crate) fn send(&self, msg: &ServerMsg) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut w = self.w.lock().expect("writer lock");
        if write_frame(&mut *w, msg).is_err() {
            self.alive.store(false, Ordering::Relaxed);
        }
    }
}

/// Where a job is in its lifecycle, with the timing the summaries need.
#[derive(Debug)]
pub(crate) enum JobPhase {
    Queued,
    Running { started: Instant },
    Done { waited: Duration },
    Failed { waited: Duration },
    Cancelled { waited: Duration },
}

/// One submitted job.
#[derive(Debug)]
pub(crate) struct JobEntry {
    pub id: u64,
    pub spec: JobSpec,
    pub priority: Priority,
    pub client: String,
    pub submitted: Instant,
    pub cancel: CancelToken,
    pub phase: Mutex<JobPhase>,
    subscribers: Mutex<Vec<Arc<ConnWriter>>>,
}

impl JobEntry {
    pub(crate) fn new(id: u64, spec: JobSpec, priority: Priority, client: String) -> Self {
        JobEntry {
            id,
            spec,
            priority,
            client,
            submitted: Instant::now(),
            cancel: CancelToken::new(),
            phase: Mutex::new(JobPhase::Queued),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// Registers a follower connection for this job's events.
    pub(crate) fn subscribe(&self, w: Arc<ConnWriter>) {
        self.subscribers.lock().expect("subscribers lock").push(w);
    }

    /// Fans an event out to every follower.
    pub(crate) fn publish(&self, event: Event) {
        let subs = self.subscribers.lock().expect("subscribers lock");
        let msg = ServerMsg::Event(event);
        for sub in subs.iter() {
            sub.send(&msg);
        }
    }

    /// The job's current state.
    pub(crate) fn state(&self) -> JobState {
        match *self.phase.lock().expect("phase lock") {
            JobPhase::Queued => JobState::Queued,
            JobPhase::Running { .. } => JobState::Running,
            JobPhase::Done { .. } => JobState::Done,
            JobPhase::Failed { .. } => JobState::Failed,
            JobPhase::Cancelled { .. } => JobState::Cancelled,
        }
    }

    /// Milliseconds spent queued: still counting while queued, frozen at
    /// the dequeue (or cancellation) instant afterwards.
    pub(crate) fn queue_wait_ms(&self) -> f64 {
        self.waited().as_secs_f64() * 1e3
    }

    /// Time spent queued, frozen per-phase as [`JobEntry::queue_wait_ms`].
    pub(crate) fn waited(&self) -> Duration {
        match *self.phase.lock().expect("phase lock") {
            JobPhase::Queued => self.submitted.elapsed(),
            JobPhase::Running { started } => started.duration_since(self.submitted),
            JobPhase::Done { waited }
            | JobPhase::Failed { waited }
            | JobPhase::Cancelled { waited } => waited,
        }
    }

    /// The wire summary of this job.
    pub(crate) fn summary(&self) -> JobSummary {
        JobSummary {
            id: self.id,
            kind: self.spec.kind().to_owned(),
            state: self.state(),
            priority: self.priority,
            client: self.client.clone(),
            queue_wait_ms: self.queue_wait_ms(),
        }
    }
}

/// The registry of every job the server has seen, by id.
#[derive(Debug, Default)]
pub(crate) struct JobTable {
    jobs: Mutex<BTreeMap<u64, Arc<JobEntry>>>,
}

impl JobTable {
    pub(crate) fn insert(&self, job: Arc<JobEntry>) {
        self.jobs
            .lock()
            .expect("job table lock")
            .insert(job.id, job);
    }

    pub(crate) fn get(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.jobs.lock().expect("job table lock").get(&id).cloned()
    }

    pub(crate) fn summaries(&self) -> Vec<JobSummary> {
        self.jobs
            .lock()
            .expect("job table lock")
            .values()
            .map(|j| j.summary())
            .collect()
    }

    /// Every job currently queued or running.
    pub(crate) fn open_jobs(&self) -> Vec<Arc<JobEntry>> {
        self.jobs
            .lock()
            .expect("job table lock")
            .values()
            .filter(|j| matches!(j.state(), JobState::Queued | JobState::Running))
            .cloned()
            .collect()
    }
}

#[derive(Debug, Default)]
struct ReadyQueue {
    /// `(priority rank, submission sequence, job id)`, kept sorted so
    /// the front is always the next job to run.
    ready: Vec<(u8, u64, u64)>,
    /// Monotonic submission counter (FIFO order within a class).
    seq: u64,
    /// `false` once the queue is closed: workers drain and exit.
    open: bool,
}

/// The priority queue feeding the worker pool. Depth is mirrored to the
/// `strober.server.queue_depth` gauge on every transition.
#[derive(Debug)]
pub(crate) struct JobQueue {
    inner: Mutex<ReadyQueue>,
    cv: Condvar,
}

impl JobQueue {
    pub(crate) fn new() -> Self {
        JobQueue {
            inner: Mutex::new(ReadyQueue {
                ready: Vec::new(),
                seq: 0,
                open: true,
            }),
            cv: Condvar::new(),
        }
    }

    fn gauge(inner: &ReadyQueue) {
        strober_probe::gauge_set("strober.server.queue_depth", inner.ready.len() as f64);
    }

    /// Enqueues a job id. Returns `false` if the queue is closed.
    pub(crate) fn push(&self, id: u64, priority: Priority) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        if !inner.open {
            return false;
        }
        let seq = inner.seq;
        inner.seq += 1;
        let key = (priority.rank(), seq, id);
        let at = inner.ready.partition_point(|e| *e < key);
        inner.ready.insert(at, key);
        Self::gauge(&inner);
        self.cv.notify_one();
        true
    }

    /// Blocks for the next job id; `None` once the queue is closed and
    /// empty.
    pub(crate) fn pop(&self) -> Option<u64> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(&(_, _, id)) = inner.ready.first() {
                inner.ready.remove(0);
                Self::gauge(&inner);
                return Some(id);
            }
            if !inner.open {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue lock");
        }
    }

    /// Removes a queued job (cancellation). Returns whether it was
    /// still queued.
    pub(crate) fn remove(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        let before = inner.ready.len();
        inner.ready.retain(|&(_, _, jid)| jid != id);
        let removed = inner.ready.len() != before;
        if removed {
            Self::gauge(&inner);
        }
        removed
    }

    /// Closes the queue. With `drain` the ready jobs stay and workers
    /// finish them; without, the queue is emptied and the abandoned ids
    /// are returned so the caller can mark them cancelled.
    pub(crate) fn close(&self, drain: bool) -> Vec<u64> {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.open = false;
        let abandoned = if drain {
            Vec::new()
        } else {
            let out = inner.ready.iter().map(|&(_, _, id)| id).collect();
            inner.ready.clear();
            out
        };
        Self::gauge(&inner);
        self.cv.notify_all();
        abandoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::EstimateSpec;

    fn entry(id: u64) -> Arc<JobEntry> {
        Arc::new(JobEntry::new(
            id,
            JobSpec::Estimate(EstimateSpec::default()),
            Priority::Normal,
            "test".to_owned(),
        ))
    }

    #[test]
    fn queue_orders_by_priority_then_submission() {
        let q = JobQueue::new();
        assert!(q.push(1, Priority::Low));
        assert!(q.push(2, Priority::Normal));
        assert!(q.push(3, Priority::High));
        assert!(q.push(4, Priority::Normal));
        q.close(true);
        assert_eq!(
            [q.pop(), q.pop(), q.pop(), q.pop(), q.pop()],
            [Some(3), Some(2), Some(4), Some(1), None]
        );
    }

    #[test]
    fn cancelling_a_queued_job_removes_it() {
        let q = JobQueue::new();
        q.push(7, Priority::Normal);
        q.push(8, Priority::Normal);
        assert!(q.remove(7));
        assert!(!q.remove(7), "second cancel finds nothing");
        q.close(true);
        assert_eq!([q.pop(), q.pop()], [Some(8), None]);
    }

    #[test]
    fn closing_without_drain_abandons_queued_jobs() {
        let q = JobQueue::new();
        q.push(1, Priority::Low);
        q.push(2, Priority::High);
        assert_eq!(q.close(false), vec![2, 1]);
        assert_eq!(q.pop(), None);
        assert!(!q.push(3, Priority::Normal), "closed queue rejects work");
    }

    #[test]
    fn job_table_tracks_state_and_wait() {
        let table = JobTable::default();
        table.insert(entry(1));
        table.insert(entry(2));
        let job = table.get(1).unwrap();
        assert_eq!(job.state(), JobState::Queued);
        *job.phase.lock().unwrap() = JobPhase::Running {
            started: Instant::now(),
        };
        assert_eq!(job.state(), JobState::Running);
        let summaries = table.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].id, 1);
        assert_eq!(summaries[0].state, JobState::Running);
        assert_eq!(table.open_jobs().len(), 2);
        assert!(table.get(9).is_none());
    }
}

//! Worker-side job execution: from a [`JobSpec`] to a [`JobResult`].
//!
//! The bit-identity contract with the one-shot CLI lives here: a job
//! resolves its design and image through the same [`crate::catalog`],
//! builds the same [`StroberConfig`], and drives the same
//! [`StroberFlow`] entry points — the only differences are the warm
//! in-memory flow cache (which changes *where* the prepared artifacts
//! come from, never what they contain) and the cancellation/progress
//! control threaded through the run.

use crate::catalog;
use crate::protocol::{
    ErrorKind, EstimateOutcome, EstimateSpec, Event, FuzzJobOutcome, FuzzSpec, JobResult, JobSpec,
    ReplayOutcome, WireError,
};
use crate::queue::JobEntry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use strober::{
    HubEngine, Progress, ReplayResult, RunControl, StoppingRule, StroberConfig, StroberError,
    StroberFlow,
};
use strober_cores::build_core;
use strober_dram::{DramConfig, DramModel, LpddrPowerParams};
use strober_fuzz::{run_fuzz_cancellable, FuzzOptions, OracleConfig};
use strober_isa::programs;
use strober_rtl::Design;
use strober_store::{
    CodegenProvenance, Fingerprint, Fnv1a, JobProvenance, RunManifest, SamplingOutcome, Store,
};

/// How a job ended without producing a result.
#[derive(Debug)]
pub(crate) enum JobFailure {
    /// The job's cancel token tripped; not an error.
    Cancelled,
    /// A real failure, reported to followers as [`Event::Failed`].
    Error(WireError),
}

impl From<StroberError> for JobFailure {
    fn from(e: StroberError) -> Self {
        match e {
            StroberError::Cancelled => JobFailure::Cancelled,
            other => JobFailure::Error(WireError::new(ErrorKind::Internal, other.to_string())),
        }
    }
}

fn bad_spec(message: String) -> JobFailure {
    JobFailure::Error(WireError::new(ErrorKind::BadSpec, message))
}

/// Checks a spec at submission time, before it costs a queue slot.
pub(crate) fn validate(spec: &JobSpec) -> Result<(), WireError> {
    let bad = |m: String| Err(WireError::new(ErrorKind::BadSpec, m));
    match spec {
        JobSpec::Estimate(e) | JobSpec::Replay(e) => {
            if let Err(m) = catalog::core_config(&e.core) {
                return bad(m);
            }
            if e.asm.is_none() && catalog::workload_source(&e.workload).is_none() {
                return bad(format!("unknown workload `{}`", e.workload));
            }
            if e.samples < 2 {
                return bad("samples: need at least 2 for a variance estimate".to_owned());
            }
            if e.replay_length == 0 {
                return bad("replay_length: must be at least 1".to_owned());
            }
            if e.batch_lanes == 0 || e.batch_lanes > 64 {
                return bad("batch_lanes: must be in 1..=64".to_owned());
            }
            if e.hub_threads == 0 || e.hub_threads > 64 {
                return bad("hub_threads: must be in 1..=64".to_owned());
            }
            if HubEngine::from_name(&e.hub_engine).is_none() {
                return bad(format!(
                    "hub_engine: unknown engine `{}` (must be one of auto|interp|partitioned|jit)",
                    e.hub_engine
                ));
            }
            if e.max_cycles == 0 {
                return bad("max_cycles: must be at least 1".to_owned());
            }
            if e.target_error != 0.0 {
                if !(e.target_error > 0.0 && e.target_error < 1.0) {
                    return bad("target_error: must be 0 (disabled) or in (0, 1)".to_owned());
                }
                if e.min_samples < 2 {
                    return bad("min_samples: need at least 2 for a variance estimate".to_owned());
                }
                if e.min_samples > e.samples {
                    return bad(format!(
                        "min_samples: floor {} exceeds the sample size {} — the stopping rule could never fire",
                        e.min_samples, e.samples
                    ));
                }
            }
        }
        JobSpec::Fuzz(f) => {
            if f.seed_end <= f.seed_start {
                return bad(format!("empty seed range {}..{}", f.seed_start, f.seed_end));
            }
            if f.cycles == 0 {
                return bad("cycles: must be at least 1".to_owned());
            }
        }
    }
    Ok(())
}

/// Order-sensitive fingerprint of a replay's results: each sample's
/// capture cycle, total window power (exact bits) and checked-output
/// count. Two runs agree on this hex string iff they replayed the same
/// snapshots to the same power — the currency of the served-vs-one-shot
/// bit-identity tests.
pub fn replay_fingerprint(results: &[ReplayResult]) -> String {
    let mut h = Fnv1a::new();
    for r in results {
        h.write(&r.cycle.to_le_bytes());
        h.write(&r.power.total_mw().to_bits().to_le_bytes());
        h.write(&r.outputs_checked.to_le_bytes());
    }
    Fingerprint(h.finish()).to_hex()
}

/// The server's warm flow cache: one prepared [`StroberFlow`] per design
/// fingerprint, held for the daemon's lifetime. The flow itself caches
/// its lowered hub simulator and compiled gate tape, so a warm hit skips
/// *all* per-design work. Hits and misses are observable as the
/// `strober.server.prepare_{warm,store,cold}` counters.
#[derive(Debug, Default)]
pub(crate) struct FlowCache {
    flows: Mutex<HashMap<String, Arc<StroberFlow>>>,
}

impl FlowCache {
    /// Returns the prepared flow for `design` under `config`, and where
    /// it came from: `warm` (this cache), `store` (artifact store) or
    /// `cold` (full prepare).
    pub(crate) fn obtain(
        &self,
        design: &Design,
        config: StroberConfig,
        store: Option<&Mutex<Store>>,
    ) -> Result<(Arc<StroberFlow>, &'static str), StroberError> {
        let key = StroberFlow::prepare_fingerprint(design, &config).to_hex();
        if let Some(flow) = self.flows.lock().expect("flow cache lock").get(&key) {
            strober_probe::counter_add("strober.server.prepare_warm", 1);
            return Ok((flow.clone(), "warm"));
        }
        // Prepare outside the cache lock — it can take seconds, and
        // other designs' warm hits must not wait behind it.
        let (flow, provenance) = match store {
            Some(store) => {
                let mut store = store.lock().expect("store lock");
                let (flow, hit) = StroberFlow::prepare_cached(design, config, &mut store)?;
                (flow, if hit { "store" } else { "cold" })
            }
            None => (StroberFlow::new(design, config)?, "cold"),
        };
        strober_probe::counter_add(
            match provenance {
                "store" => "strober.server.prepare_store",
                _ => "strober.server.prepare_cold",
            },
            1,
        );
        let flow = Arc::new(flow);
        let mut flows = self.flows.lock().expect("flow cache lock");
        // If a concurrent job prepared the same design, keep the first —
        // both are bit-identical by construction.
        let kept = flows.entry(key).or_insert_with(|| flow.clone()).clone();
        strober_probe::gauge_set("strober.server.warm_designs", flows.len() as f64);
        Ok((kept, provenance))
    }
}

/// The executing worker's index, derived from the worker thread's name
/// (`strober-worker-<i>`). Jobs run from other threads (tests, direct
/// calls) report `"?"` — still a valid, bounded label value.
pub(crate) fn worker_name() -> String {
    std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("strober-worker-"))
        .unwrap_or("?")
        .to_owned()
}

/// Runs one job to completion on the calling worker thread.
pub(crate) fn run_job(
    job: &JobEntry,
    flows: &FlowCache,
    store: Option<&Mutex<Store>>,
    default_parallelism: usize,
) -> Result<JobResult, JobFailure> {
    match &job.spec {
        JobSpec::Estimate(spec) => run_estimate(job, spec, flows, store, default_parallelism, true),
        JobSpec::Replay(spec) => run_estimate(job, spec, flows, store, default_parallelism, false),
        JobSpec::Fuzz(spec) => run_fuzz_job(job, spec),
    }
}

/// Publishes a finished stage to followers and records it in the
/// manifest.
fn stage(job: &JobEntry, manifest: &mut RunManifest, name: &str, since: Instant) {
    let elapsed = since.elapsed();
    manifest.record(name, elapsed);
    job.publish(Event::Stage {
        job: job.id,
        stage: name.to_owned(),
        millis: elapsed.as_secs_f64() * 1e3,
    });
}

fn run_estimate(
    job: &JobEntry,
    spec: &EstimateSpec,
    flows: &FlowCache,
    store: Option<&Mutex<Store>>,
    default_parallelism: usize,
    want_estimate: bool,
) -> Result<JobResult, JobFailure> {
    let core = catalog::core_config(&spec.core).map_err(bad_spec)?;
    let image = catalog::image_for(&spec.workload, &spec.asm).map_err(bad_spec)?;
    let design = build_core(&core);
    let mut session = StroberConfig {
        replay_length: spec.replay_length,
        sample_size: spec.samples,
        seed: spec.seed,
        ..StroberConfig::default()
    };
    session.platform.tape_opt = spec.tape_opt;
    session.platform.hub_threads = spec.hub_threads.max(1);
    session.platform.hub_engine = HubEngine::from_name(&spec.hub_engine).unwrap_or(HubEngine::Auto);
    session.platform.target_error = spec.target_error;
    session.platform.min_samples = spec.min_samples;

    let workload_desc = if spec.asm.is_some() {
        "inline-asm".to_owned()
    } else {
        spec.workload.clone()
    };
    let worker = worker_name();
    let labels = strober_probe::Labels::new()
        .design(&core.name)
        .job(job.id)
        .worker(&worker);

    let mut manifest = RunManifest::new(core.name.clone(), workload_desc.clone());
    manifest.fingerprint = StroberFlow::prepare_fingerprint(&design, &session).to_hex();
    manifest.job = Some(JobProvenance {
        id: job.id,
        client: job.client.clone(),
        queue_wait_ms: job.queue_wait_ms(),
        worker: worker.clone(),
    });

    let t = Instant::now();
    let (flow, provenance) = flows.obtain(&design, session, store)?;
    // With the JIT engine selected, compile (or fetch) the native settle
    // dylib now so its cost lands in the prepare stage and the manifest
    // can attribute provenance; other engines make this a no-op.
    match store {
        Some(store) => {
            let mut store = store.lock().expect("store lock");
            flow.prepare_jit(Some(&mut store));
        }
        None => {
            flow.prepare_jit(None);
        }
    }
    manifest.set_prepare(provenance);
    manifest.hub_engine = flow.hub_engine_name().to_owned();
    manifest.jit = flow
        .jit_info()
        .map(|(provenance, compile_ms)| CodegenProvenance {
            provenance: provenance.to_owned(),
            compile_ms,
        });
    strober_probe::counter_add_labeled(
        "strober.server.job_prepare",
        &labels.clone().provenance(provenance),
        1,
    );
    // Every later labeled series for this job carries the effective
    // engine; this counter pins it even for jobs that finish before
    // their first progress tick (`strober top` reads the label).
    let labels = labels.engine(flow.hub_engine_name());
    strober_probe::counter_add_labeled("strober.server.job_engine", &labels, 1);
    stage(job, &mut manifest, "prepare", t);

    let progress_hook = |p: Progress| {
        let (phase, done, total) = match p {
            Progress::SimWindows { windows, .. } => ("sim", windows, 0),
            Progress::ReplayBatches { done, total } => ("replay", done, total),
            // The stopping rule re-evaluated the running interval; the ε
            // itself flows through the labeled
            // `strober.sampling.stop.relative_error` gauge the pipeline
            // maintains (watch/`strober top` read it from there).
            Progress::IntervalUpdate { samples, .. } => ("interval", samples, 0),
        };
        strober_probe::gauge_set_labeled(
            "strober.server.job_progress",
            &labels.clone().phase(phase),
            done as f64,
        );
        job.publish(Event::Progress {
            job: job.id,
            phase: phase.to_owned(),
            done,
            total,
        });
    };
    let ctl = RunControl {
        cancel: Some(&job.cancel),
        progress: Some(&progress_hook),
        progress_window_stride: 0,
        labels: Some(&labels),
    };

    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(&image, 0);
    let parallel = if spec.parallel == 0 {
        default_parallelism
    } else {
        spec.parallel
    };
    let (run, results) = if spec.target_error > 0.0 {
        // Adaptive runs take the streaming pipeline: capture and replay
        // overlap as one stage, and the rule may stop the run before the
        // workload halts — that is the point, so the halt check only
        // applies when the rule did *not* fire.
        let rule = StoppingRule::new(
            spec.target_error,
            flow.config().confidence,
            spec.min_samples,
        )
        .map_err(|e| bad_spec(e.to_string()))?;
        let t = Instant::now();
        let (run, results) = flow.replay_streaming(
            &mut dram,
            spec.max_cycles,
            parallel,
            spec.batch_lanes,
            Some(rule),
            &ctl,
        )?;
        stage(job, &mut manifest, "stream", t);
        if dram.exit_code().is_none() && !run.stop.is_converged() {
            return Err(JobFailure::Error(WireError::new(
                ErrorKind::Internal,
                format!("workload did not halt within {} cycles", spec.max_cycles),
            )));
        }
        (run, results)
    } else {
        let t = Instant::now();
        let run = flow.run_sampled_controlled(&mut dram, spec.max_cycles, &ctl)?;
        if dram.exit_code().is_none() {
            return Err(JobFailure::Error(WireError::new(
                ErrorKind::Internal,
                format!("workload did not halt within {} cycles", spec.max_cycles),
            )));
        }
        stage(job, &mut manifest, "sim", t);

        let t = Instant::now();
        let results =
            flow.replay_all_controlled(&run.snapshots, parallel, spec.batch_lanes, &ctl)?;
        stage(job, &mut manifest, "replay", t);
        (run, results)
    };

    let achieved_epsilon = match run.stop {
        strober::StopReason::Converged { achieved, .. } => Some(achieved),
        _ => None,
    };
    manifest.sampling = Some(SamplingOutcome {
        stop_reason: run.stop.as_str().to_owned(),
        target_epsilon: (spec.target_error > 0.0).then_some(spec.target_error),
        achieved_epsilon,
    });

    let snapshot_fingerprint = replay_fingerprint(&results);
    let outputs_checked: u64 = results.iter().map(|r| r.outputs_checked).sum();

    if !want_estimate {
        let mean_power_mw = if results.is_empty() {
            0.0
        } else {
            results.iter().map(|r| r.power.total_mw()).sum::<f64>() / results.len() as f64
        };
        return Ok(JobResult::Replay(ReplayOutcome {
            samples: results.len(),
            mean_power_mw,
            outputs_checked,
            snapshot_fingerprint,
            provenance: provenance.to_owned(),
        }));
    }

    let t = Instant::now();
    let estimate = flow.estimate(&run, &results)?;
    let instret = dram.instret();
    let dram_power_mw = LpddrPowerParams::lpddr2_s4()
        .average_power_mw(dram.counters(), run.target_cycles, flow.config().freq_hz)
        .total_mw();
    stage(job, &mut manifest, "estimate", t);

    manifest.metrics = strober_probe::snapshot();
    if let Some(store) = store {
        let store = store.lock().expect("store lock");
        let path = store.root().join(format!("job-{}.json", job.id));
        if let Err(e) = manifest.save(&path) {
            strober_probe::warn!("cannot write job manifest to {}: {e}", path.display());
        }
    }

    let epi_nj = (estimate.mean_power_mw() + dram_power_mw)
        * 1e-3
        * (run.target_cycles as f64 / flow.config().freq_hz)
        / instret as f64
        * 1e9;
    Ok(JobResult::Estimate(EstimateOutcome {
        core: core.name.clone(),
        workload: workload_desc,
        cycles: run.target_cycles,
        instret,
        windows: run.windows,
        records: run.records,
        samples: results.len(),
        core_power_mw: estimate.mean_power_mw(),
        half_width_mw: estimate.interval().half_width(),
        confidence: estimate.interval().confidence(),
        dram_power_mw,
        epi_nj,
        provenance: provenance.to_owned(),
        snapshot_fingerprint,
        stop_reason: run.stop.as_str().to_owned(),
        achieved_epsilon,
        manifest,
    }))
}

fn run_fuzz_job(job: &JobEntry, spec: &FuzzSpec) -> Result<JobResult, JobFailure> {
    let opts = FuzzOptions {
        seed_start: spec.seed_start,
        seed_end: spec.seed_end,
        cycles: spec.cycles,
        oracle: OracleConfig::default(),
        // Served campaigns never write reproducer files: the divergence
        // report goes back over the wire instead.
        corpus_dir: None,
        shrink_evals: 500,
    };
    let total = spec.seed_end - spec.seed_start;
    let outcome = run_fuzz_cancellable(
        &opts,
        || job.cancel.is_cancelled(),
        |_seed, designs| {
            if designs % 10 == 0 {
                job.publish(Event::Progress {
                    job: job.id,
                    phase: "fuzz".to_owned(),
                    done: designs,
                    total,
                });
            }
        },
    )
    .map_err(|e| JobFailure::Error(WireError::new(ErrorKind::Internal, e)))?;
    if outcome.cancelled {
        return Err(JobFailure::Cancelled);
    }
    if let Some(f) = &outcome.failure {
        job.publish(Event::Log {
            job: job.id,
            message: format!(
                "divergence at seed {}: {} (minimized to {} nodes)",
                f.seed,
                f.reproducer.divergence.kind(),
                f.min_nodes
            ),
        });
    }
    Ok(JobResult::Fuzz(FuzzJobOutcome {
        designs: outcome.designs,
        diverged: outcome.failure.is_some(),
        failure_seed: outcome.failure.as_ref().map(|f| f.seed),
        cancelled: false,
    }))
}

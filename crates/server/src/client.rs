//! Blocking client for the estimation server.
//!
//! A [`Client`] owns one connection (TCP or Unix socket) and speaks the
//! framed request/response protocol from [`crate::protocol`]. Because
//! the server interleaves streamed [`Event`]s for followed jobs with
//! request [`Response`]s on the same stream, [`Client::request`] buffers
//! any events that arrive while waiting for its response; they are
//! replayed in order by [`Client::next_msg`] and [`Client::wait_result`].

use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{Event, JobResult, Request, Response, ServerMsg};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to a strober estimation server.
pub struct Client {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    /// Events that arrived while a response was awaited.
    pending: VecDeque<Event>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl Client {
    /// Connects over TCP, e.g. `Client::connect("127.0.0.1:7007")`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, FrameError> {
        let stream = TcpStream::connect(addr).map_err(|e| FrameError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| FrameError::Io(e.to_string()))?;
        Ok(Self::from_parts(Box::new(reader), Box::new(stream)))
    }

    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] if the connection cannot be established.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> Result<Self, FrameError> {
        let stream = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| FrameError::Io(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| FrameError::Io(e.to_string()))?;
        Ok(Self::from_parts(Box::new(reader), Box::new(stream)))
    }

    /// Builds a client from an already-connected stream pair. Useful for
    /// tests and in-process transports.
    pub fn from_parts(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Self {
        Client {
            reader,
            writer,
            pending: VecDeque::new(),
        }
    }

    /// Introduces this client to the server and returns its
    /// [`Response::Hello`].
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn hello(&mut self, name: &str) -> Result<Response, FrameError> {
        self.request(&Request::Hello {
            client: name.to_owned(),
        })
    }

    /// Sends one request and blocks for its response. Events streamed
    /// for followed jobs in the meantime are buffered, not dropped.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] from the underlying stream; a server that
    /// replies with [`Response::Error`] still yields `Ok` — protocol
    /// errors are data, not transport failures.
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.writer, req)?;
        loop {
            match read_frame::<ServerMsg>(&mut self.reader)? {
                ServerMsg::Response(resp) => return Ok(resp),
                ServerMsg::Event(ev) => self.pending.push_back(ev),
            }
        }
    }

    /// Returns the next message: first any buffered event, then whatever
    /// the stream yields.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] from the underlying stream.
    pub fn next_msg(&mut self) -> Result<ServerMsg, FrameError> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ServerMsg::Event(ev));
        }
        read_frame::<ServerMsg>(&mut self.reader)
    }

    /// Consumes streamed events for `job` (this client must have
    /// submitted it with `follow: true`) until a terminal one arrives.
    /// Every event for the job — including the terminal one — is handed
    /// to `on_event` first.
    ///
    /// # Errors
    ///
    /// A human-readable message if the job failed, was cancelled, or the
    /// stream broke before a terminal event.
    pub fn wait_result(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&Event),
    ) -> Result<JobResult, String> {
        loop {
            let msg = self
                .next_msg()
                .map_err(|e| format!("job {job}: stream ended before a result: {e}"))?;
            let ev = match msg {
                ServerMsg::Event(ev) if ev.job() == job => ev,
                // Responses and other jobs' events are not ours to handle.
                _ => continue,
            };
            on_event(&ev);
            match ev {
                Event::Done { result, .. } => return Ok(result),
                Event::Failed { error, .. } => return Err(format!("job {job} failed: {error}")),
                Event::Cancelled { .. } => return Err(format!("job {job} was cancelled")),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{FuzzJobOutcome, WireError};
    use std::net::TcpListener;

    /// A fake server on a loopback socket: reads one request, streams the
    /// given messages back.
    fn fake_server(msgs: Vec<ServerMsg>) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _req: Request = read_frame(&mut conn).unwrap();
            for msg in &msgs {
                write_frame(&mut conn, msg).unwrap();
            }
        });
        addr
    }

    #[test]
    fn request_buffers_events_that_arrive_before_the_response() {
        let addr = fake_server(vec![
            ServerMsg::Event(Event::Started {
                job: 3,
                queue_wait_ms: 1.5,
            }),
            ServerMsg::Response(Response::Pong),
            ServerMsg::Event(Event::Done {
                job: 3,
                result: JobResult::Fuzz(FuzzJobOutcome {
                    designs: 2,
                    diverged: false,
                    failure_seed: None,
                    cancelled: false,
                }),
            }),
        ]);
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
        // The early event was buffered, and the terminal one still reads.
        let mut seen = Vec::new();
        let result = client.wait_result(3, |ev| seen.push(ev.clone())).unwrap();
        assert!(matches!(result, JobResult::Fuzz(ref f) if f.designs == 2));
        assert_eq!(seen.len(), 2);
        assert!(matches!(seen[0], Event::Started { job: 3, .. }));
    }

    #[test]
    fn wait_result_surfaces_failures_and_skips_other_jobs() {
        let addr = fake_server(vec![
            ServerMsg::Event(Event::Log {
                job: 9,
                message: "someone else's job".to_owned(),
            }),
            ServerMsg::Event(Event::Failed {
                job: 4,
                error: WireError::new(crate::protocol::ErrorKind::Internal, "boom"),
            }),
        ]);
        let mut client = Client::connect(addr).unwrap();
        write_frame(&mut client.writer, &Request::Ping).unwrap();
        let err = client.wait_result(4, |_| {}).unwrap_err();
        assert!(err.contains("boom"), "got: {err}");
    }
}

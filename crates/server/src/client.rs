//! Blocking client for the estimation server.
//!
//! A [`Client`] owns one connection (TCP or Unix socket) and speaks the
//! framed request/response protocol from [`crate::protocol`]. Because
//! the server interleaves streamed [`Event`]s for followed jobs with
//! request [`Response`]s on the same stream, [`Client::request`] buffers
//! any events that arrive while waiting for its response; they are
//! replayed in order by [`Client::next_msg`] and [`Client::wait_result`].

use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{Event, JobResult, Request, Response, ServerMsg, WatchFrame};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to a strober estimation server.
pub struct Client {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    /// Events that arrived while a response was awaited.
    pending: VecDeque<Event>,
    /// Watch frames that arrived while a response was awaited.
    pending_watch: VecDeque<WatchFrame>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("pending", &self.pending.len())
            .field("pending_watch", &self.pending_watch.len())
            .finish()
    }
}

impl Client {
    /// Connects over TCP, e.g. `Client::connect("127.0.0.1:7007")`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, FrameError> {
        let stream = TcpStream::connect(addr).map_err(|e| FrameError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| FrameError::Io(e.to_string()))?;
        Ok(Self::from_parts(Box::new(reader), Box::new(stream)))
    }

    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] if the connection cannot be established.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> Result<Self, FrameError> {
        let stream = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| FrameError::Io(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| FrameError::Io(e.to_string()))?;
        Ok(Self::from_parts(Box::new(reader), Box::new(stream)))
    }

    /// Builds a client from an already-connected stream pair. Useful for
    /// tests and in-process transports.
    pub fn from_parts(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Self {
        Client {
            reader,
            writer,
            pending: VecDeque::new(),
            pending_watch: VecDeque::new(),
        }
    }

    /// Introduces this client to the server and returns its
    /// [`Response::Hello`].
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn hello(&mut self, name: &str) -> Result<Response, FrameError> {
        self.request(&Request::Hello {
            client: name.to_owned(),
        })
    }

    /// Sends one request and blocks for its response. Events streamed
    /// for followed jobs in the meantime are buffered, not dropped.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] from the underlying stream; a server that
    /// replies with [`Response::Error`] still yields `Ok` — protocol
    /// errors are data, not transport failures.
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.writer, req)?;
        loop {
            match read_frame::<ServerMsg>(&mut self.reader)? {
                ServerMsg::Response(resp) => return Ok(resp),
                ServerMsg::Event(ev) => self.pending.push_back(ev),
                ServerMsg::Watch(frame) => self.pending_watch.push_back(frame),
            }
        }
    }

    /// Returns the next message: first any buffered event, then any
    /// buffered watch frame, then whatever the stream yields.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] from the underlying stream.
    pub fn next_msg(&mut self) -> Result<ServerMsg, FrameError> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(ServerMsg::Event(ev));
        }
        if let Some(frame) = self.pending_watch.pop_front() {
            return Ok(ServerMsg::Watch(frame));
        }
        read_frame::<ServerMsg>(&mut self.reader)
    }

    /// Blocks for the next watch frame of an active [`Request::Watch`]
    /// subscription. Events that arrive in between are buffered for
    /// [`Client::next_msg`] / [`Client::wait_result`], not dropped.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] from the underlying stream.
    pub fn next_watch(&mut self) -> Result<WatchFrame, FrameError> {
        if let Some(frame) = self.pending_watch.pop_front() {
            return Ok(frame);
        }
        loop {
            match read_frame::<ServerMsg>(&mut self.reader)? {
                ServerMsg::Watch(frame) => return Ok(frame),
                ServerMsg::Event(ev) => self.pending.push_back(ev),
                // A response with no request outstanding is a protocol
                // violation; surface it rather than spinning.
                ServerMsg::Response(resp) => {
                    return Err(FrameError::Io(format!(
                        "unexpected response while watching: {resp:?}"
                    )))
                }
            }
        }
    }

    /// Consumes streamed events for `job` (this client must have
    /// submitted it with `follow: true`) until a terminal one arrives.
    /// Every event for the job — including the terminal one — is handed
    /// to `on_event` first.
    ///
    /// # Errors
    ///
    /// A human-readable message if the job failed, was cancelled, or the
    /// stream broke before a terminal event.
    pub fn wait_result(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&Event),
    ) -> Result<JobResult, String> {
        loop {
            let msg = self
                .next_msg()
                .map_err(|e| format!("job {job}: stream ended before a result: {e}"))?;
            let ev = match msg {
                ServerMsg::Event(ev) if ev.job() == job => ev,
                // Responses and other jobs' events are not ours to handle.
                _ => continue,
            };
            on_event(&ev);
            match ev {
                Event::Done { result, .. } => return Ok(result),
                Event::Failed { error, .. } => return Err(format!("job {job} failed: {error}")),
                Event::Cancelled { .. } => return Err(format!("job {job} was cancelled")),
                _ => {}
            }
        }
    }
}

/// Client-side state of one watch subscription: merges incremental
/// [`WatchFrame`]s into a live mirror of the server's registry.
///
/// Feed every received frame to [`WatchSession::apply`] and read the
/// reconstructed registry from [`WatchSession::metrics`]. `apply`
/// returns `false` on a sequence gap — frames were lost, and the mirror
/// is stale until the server's next `reset` frame (resubscribing forces
/// one immediately).
#[derive(Debug, Clone, Default)]
pub struct WatchSession {
    snapshot: strober_probe::MetricsSnapshot,
    next_seq: u64,
    synced: bool,
}

impl WatchSession {
    /// An empty session awaiting its first frame.
    #[must_use]
    pub fn new() -> WatchSession {
        WatchSession::default()
    }

    /// Applies one frame to the mirror. Returns whether the mirror is in
    /// sync afterwards: `reset` frames always sync; incremental frames
    /// sync only when their `seq` is the expected successor.
    pub fn apply(&mut self, frame: &WatchFrame) -> bool {
        if frame.reset {
            self.snapshot = frame.metrics.clone();
            self.next_seq = frame.seq + 1;
            self.synced = true;
            return true;
        }
        if !self.synced || frame.seq != self.next_seq {
            self.synced = false;
            return false;
        }
        self.snapshot.merge(&frame.metrics, &frame.removed);
        self.next_seq = frame.seq + 1;
        true
    }

    /// The reconstructed registry (exactly the server's, when synced).
    pub fn metrics(&self) -> &strober_probe::MetricsSnapshot {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{FuzzJobOutcome, WireError};
    use std::net::TcpListener;

    #[test]
    fn watch_session_mirrors_frames_and_flags_gaps() {
        let mut session = WatchSession::new();
        let mut full = strober_probe::MetricsSnapshot::default();
        full.counters.push(strober_probe::CounterEntry {
            name: "strober.test.jobs".to_owned(),
            value: 1,
        });
        assert!(!session.apply(&WatchFrame {
            seq: 5,
            at_ms: 10,
            reset: false,
            removed: Vec::new(),
            metrics: full.clone(),
        }));
        assert!(session.apply(&WatchFrame {
            seq: 5,
            at_ms: 10,
            reset: true,
            removed: Vec::new(),
            metrics: full.clone(),
        }));
        assert_eq!(session.metrics().counter("strober.test.jobs"), Some(1));
        let mut delta = strober_probe::MetricsSnapshot::default();
        delta.counters.push(strober_probe::CounterEntry {
            name: "strober.test.jobs".to_owned(),
            value: 3,
        });
        assert!(session.apply(&WatchFrame {
            seq: 6,
            at_ms: 20,
            reset: false,
            removed: Vec::new(),
            metrics: delta.clone(),
        }));
        assert_eq!(session.metrics().counter("strober.test.jobs"), Some(3));
        // A gap desyncs until the next reset.
        assert!(!session.apply(&WatchFrame {
            seq: 9,
            at_ms: 40,
            reset: false,
            removed: Vec::new(),
            metrics: delta,
        }));
    }

    /// A fake server on a loopback socket: reads one request, streams the
    /// given messages back.
    fn fake_server(msgs: Vec<ServerMsg>) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _req: Request = read_frame(&mut conn).unwrap();
            for msg in &msgs {
                write_frame(&mut conn, msg).unwrap();
            }
        });
        addr
    }

    #[test]
    fn request_buffers_events_that_arrive_before_the_response() {
        let addr = fake_server(vec![
            ServerMsg::Event(Event::Started {
                job: 3,
                queue_wait_ms: 1.5,
            }),
            ServerMsg::Response(Response::Pong),
            ServerMsg::Event(Event::Done {
                job: 3,
                result: JobResult::Fuzz(FuzzJobOutcome {
                    designs: 2,
                    diverged: false,
                    failure_seed: None,
                    cancelled: false,
                }),
            }),
        ]);
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.request(&Request::Ping).unwrap(), Response::Pong);
        // The early event was buffered, and the terminal one still reads.
        let mut seen = Vec::new();
        let result = client.wait_result(3, |ev| seen.push(ev.clone())).unwrap();
        assert!(matches!(result, JobResult::Fuzz(ref f) if f.designs == 2));
        assert_eq!(seen.len(), 2);
        assert!(matches!(seen[0], Event::Started { job: 3, .. }));
    }

    #[test]
    fn wait_result_surfaces_failures_and_skips_other_jobs() {
        let addr = fake_server(vec![
            ServerMsg::Event(Event::Log {
                job: 9,
                message: "someone else's job".to_owned(),
            }),
            ServerMsg::Event(Event::Failed {
                job: 4,
                error: WireError::new(crate::protocol::ErrorKind::Internal, "boom"),
            }),
        ]);
        let mut client = Client::connect(addr).unwrap();
        write_frame(&mut client.writer, &Request::Ping).unwrap();
        let err = client.wait_result(4, |_| {}).unwrap_err();
        assert!(err.contains("boom"), "got: {err}");
    }
}

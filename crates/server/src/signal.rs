//! Minimal SIGINT/SIGTERM latching without a libc crate.
//!
//! The daemon needs exactly one bit from the OS — "a shutdown signal
//! arrived" — and the container has no `libc`/`signal-hook` crates to
//! lean on. `std` always links the platform C library, so the two
//! symbols we need (`signal(2)` semantics are fine for a latch-only
//! handler: no reentrancy, no siginfo) are declared by hand. Non-Unix
//! builds compile to a no-op installer.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn latch(_signum: i32) {
        // Async-signal-safe: one relaxed store, nothing else.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, latch as *const () as usize);
            signal(SIGTERM, latch as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGINT/SIGTERM latch. Idempotent; call once at daemon
/// start. On non-Unix targets this does nothing and [`triggered`] only
/// reflects [`trigger`] calls.
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived (or [`trigger`] was called).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Latches the flag from code — lets tests (and the `Shutdown` request
/// path) share the signal-driven shutdown machinery.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

/// Clears the latch (test isolation).
pub fn reset() {
    TRIGGERED.store(false, Ordering::Relaxed);
}

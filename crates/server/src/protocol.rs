//! The wire schema shared by server and clients.
//!
//! Everything on the wire is one of three envelopes: clients send
//! [`Request`]s, the server answers each request with exactly one
//! [`Response`], and — for followed jobs — interleaves [`Event`]s on the
//! same connection, multiplexed as [`ServerMsg`]. All types serialize
//! through the vendored `serde`/`serde_json`, so the encoding is plain
//! externally-tagged JSON with every field always present; see
//! [`crate::frame`] for how messages are framed on the socket.

use strober_probe::MetricsSnapshot;
use strober_store::RunManifest;

/// Protocol revision spoken by this build. The server reports its
/// revision in [`Response::Hello`]; clients should refuse to talk to a
/// server with a different one.
///
/// Revision 2 added the telemetry surface: [`Request::Watch`],
/// [`Request::Scrape`], and the [`ServerMsg::Watch`] frame.
/// Revision 3 added [`EstimateSpec::hub_threads`] (the partitioned
/// multi-threaded hub engine); every field is always present on the
/// wire, so older clients cannot interoperate and the revision bumps.
/// Revision 4 added the adaptive sampling surface:
/// [`EstimateSpec::target_error`] and [`EstimateSpec::min_samples`]
/// select the streaming capture→replay pipeline with a confidence-driven
/// stopping rule, and [`EstimateOutcome`] reports `stop_reason` and
/// `achieved_epsilon`.
/// Revision 5 added [`EstimateSpec::hub_engine`] (explicit hub settle
/// engine selection, including the JIT-compiled native engine) and the
/// manifest carried in [`EstimateOutcome`] moved to schema v6 with
/// codegen provenance.
pub const PROTOCOL_VERSION: u32 = 5;

/// Scheduling class of a job. Higher classes are always dequeued before
/// lower ones; within a class jobs run in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Priority {
    /// Ahead of everything else.
    High,
    /// The default.
    Normal,
    /// Behind everything else (bulk sweeps).
    Low,
}

impl Priority {
    /// Dequeue rank: lower runs first.
    pub fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Display name (`high`, `normal`, `low`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished successfully; the result went to followers.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// Display name (`queued`, `running`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Parameters of an estimate (or replay) job — the server-side mirror of
/// `strober estimate`'s knobs. Designs and workloads are referenced by
/// catalog name so the server rebuilds them deterministically; custom
/// programs travel inline as assembly text in `asm`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EstimateSpec {
    /// Core configuration name (see [`crate::catalog::CORES`]).
    pub core: String,
    /// Bundled workload name (ignored when `asm` is set).
    pub workload: String,
    /// Inline assembly source overriding `workload`.
    pub asm: Option<String>,
    /// Reservoir sample size `n`.
    pub samples: usize,
    /// Replay window length `L` in cycles.
    pub replay_length: u32,
    /// RNG seed for reservoir sampling.
    pub seed: u64,
    /// Cycle budget for the fast simulation.
    pub max_cycles: u64,
    /// Replay worker threads; 0 = the server's default parallelism.
    pub parallel: usize,
    /// Bit-parallel replay lanes per worker (1..=64).
    pub batch_lanes: usize,
    /// Run the hub simulator's optimizing tape compiler.
    pub tape_opt: bool,
    /// Hub-simulator settle worker threads (1 = sequential; 2..=64
    /// selects the partitioned parallel engine, bit-identical results).
    pub hub_threads: usize,
    /// Hub settle engine: `auto` (threads decide), `interp` (sequential
    /// interpreter), `partitioned` (multi-threaded interpreter) or `jit`
    /// (native code compiled from the op tape; falls back to the
    /// interpreter when no `rustc` is available). All engines are
    /// bit-identical.
    pub hub_engine: String,
    /// Target relative error ε for the adaptive stopping rule; 0 disables
    /// adaptive stopping and runs the sequential capture-then-replay
    /// flow. Any value in `(0, 1)` selects the streaming pipeline, which
    /// stops capture as soon as the confidence interval's relative error
    /// bound reaches ε.
    pub target_error: f64,
    /// Minimum replayed samples before the stopping rule may fire
    /// (ignored when `target_error` is 0).
    pub min_samples: usize,
}

impl Default for EstimateSpec {
    fn default() -> Self {
        EstimateSpec {
            core: "rok".to_owned(),
            workload: "dhrystone".to_owned(),
            asm: None,
            samples: 30,
            replay_length: 128,
            seed: 0x57_0BE5,
            max_cycles: 200_000_000,
            parallel: 0,
            batch_lanes: 64,
            tape_opt: true,
            hub_threads: 1,
            hub_engine: "auto".to_owned(),
            target_error: 0.0,
            min_samples: 30,
        }
    }
}

/// Parameters of a differential-fuzz job.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FuzzSpec {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Workload length per design, in cycles.
    pub cycles: u32,
}

impl Default for FuzzSpec {
    fn default() -> Self {
        FuzzSpec {
            seed_start: 0,
            seed_end: 50,
            cycles: 48,
        }
    }
}

/// What a job should do.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JobSpec {
    /// Full flow: sampled simulation, replay, confidence-interval
    /// estimate.
    Estimate(EstimateSpec),
    /// Sampled simulation plus gate-level replay only (no estimate):
    /// validates trace matching and reports per-sample power.
    Replay(EstimateSpec),
    /// Differential fuzz campaign across the execution engines.
    Fuzz(FuzzSpec),
}

impl JobSpec {
    /// Short kind name (`estimate`, `replay`, `fuzz`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Estimate(_) => "estimate",
            JobSpec::Replay(_) => "replay",
            JobSpec::Fuzz(_) => "fuzz",
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Introduce the client (a display name for job provenance).
    Hello {
        /// Client display name.
        client: String,
    },
    /// Enqueue a job.
    Submit {
        /// What to run.
        spec: JobSpec,
        /// Scheduling class.
        priority: Priority,
        /// Stream this job's [`Event`]s back on this connection.
        follow: bool,
    },
    /// List all jobs the server knows about.
    Jobs,
    /// Query one job.
    Status {
        /// Job id.
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Fetch the server's metrics snapshot.
    Metrics,
    /// Subscribe this connection to the live metric stream: the server
    /// answers [`Response::Watching`], then sends one [`ServerMsg::Watch`]
    /// frame roughly every `interval_ms` until the connection closes or
    /// the server shuts down. The first frame is a full snapshot
    /// (`reset = true`); later frames carry only changed and removed
    /// series.
    Watch {
        /// Requested frame interval in milliseconds (clamped server-side
        /// to a sane minimum).
        interval_ms: u64,
    },
    /// Fetch the metrics registry rendered as Prometheus text exposition
    /// (the same document the HTTP `/metrics` listener serves).
    Scrape,
    /// Ask the server to shut down.
    Shutdown {
        /// `true` = finish queued and running jobs first (up to the
        /// server's drain deadline); `false` = cancel everything now.
        drain: bool,
    },
    /// Liveness check.
    Ping,
}

/// One row of [`Response::Jobs`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSummary {
    /// Job id.
    pub id: u64,
    /// Job kind (`estimate`, `replay`, `fuzz`).
    pub kind: String,
    /// Current state.
    pub state: JobState,
    /// Scheduling class.
    pub priority: Priority,
    /// Submitting client's display name.
    pub client: String,
    /// Milliseconds spent queued (final once the job starts).
    pub queue_wait_ms: f64,
}

/// Machine-readable error category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ErrorKind {
    /// The frame or request could not be understood. The connection
    /// survives; the offending frame is dropped.
    Protocol,
    /// No job with that id.
    UnknownJob,
    /// The job spec failed validation (unknown core, bad lane count...).
    BadSpec,
    /// The server is shutting down and no longer accepts work.
    Shutdown,
    /// The job (or server) hit an internal error.
    Internal,
}

/// A typed error carried in [`Response::Error`] and [`Event::Failed`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    /// Error category.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// The server's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Response {
    /// Answer to [`Request::Hello`].
    Hello {
        /// Server software name and version.
        server: String,
        /// [`PROTOCOL_VERSION`] of the server.
        protocol: u32,
        /// Worker threads in the pool.
        workers: usize,
    },
    /// Answer to [`Request::Submit`]: the job was enqueued.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// Answer to [`Request::Jobs`].
    Jobs {
        /// All jobs, oldest first.
        jobs: Vec<JobSummary>,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// The queried job.
        job: JobSummary,
    },
    /// Answer to [`Request::Cancel`]. `state` is the job's state after
    /// the request: `Cancelled` if it was still queued (or already
    /// finished states are echoed back), `Running` if the cancellation
    /// was requested cooperatively and the job will stop at the next
    /// sample boundary.
    Cancelled {
        /// Job id.
        job: u64,
        /// State after the cancel request.
        state: JobState,
    },
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// Point-in-time copy of the server process's probe registry
        /// (including the `strober.server.*` queue metrics).
        metrics: MetricsSnapshot,
    },
    /// Answer to [`Request::Watch`]: the subscription is live.
    Watching {
        /// The effective frame interval in milliseconds, after clamping.
        interval_ms: u64,
    },
    /// Answer to [`Request::Scrape`].
    Scrape {
        /// Prometheus text exposition (format 0.0.4) of the registry.
        text: String,
    },
    /// Answer to [`Request::Shutdown`].
    ShuttingDown {
        /// Whether in-flight jobs are drained or cancelled.
        drain: bool,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// The request failed.
    Error {
        /// Why.
        error: WireError,
    },
}

/// The numbers `strober estimate` prints, plus provenance — enough for a
/// client to reproduce the one-shot CLI output bit for bit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EstimateOutcome {
    /// Core configuration name.
    pub core: String,
    /// Workload description (name or `inline-asm`).
    pub workload: String,
    /// Target cycles executed.
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Replay windows in the execution (population `N/L`).
    pub windows: u64,
    /// Snapshot record operations performed.
    pub records: u64,
    /// Snapshots replayed.
    pub samples: usize,
    /// Mean core power in milliwatts.
    pub core_power_mw: f64,
    /// Confidence-interval half width in milliwatts.
    pub half_width_mw: f64,
    /// Confidence level of the interval (e.g. 0.99).
    pub confidence: f64,
    /// DRAM power from the counter-based model, in milliwatts.
    pub dram_power_mw: f64,
    /// Energy per instruction in nanojoules (core + DRAM).
    pub epi_nj: f64,
    /// How preparation was served: `cold` (full prepare), `store`
    /// (artifact store hit) or `warm` (in-memory flow reused).
    pub provenance: String,
    /// Order-sensitive fingerprint of every replayed sample
    /// (cycle, per-sample power, outputs checked), as hex.
    pub snapshot_fingerprint: String,
    /// Why the sampled simulation stopped (`workload-done`,
    /// `max-cycles`, or `converged` for adaptive runs).
    pub stop_reason: String,
    /// The relative error bound achieved by the adaptive stopping rule;
    /// `None` for non-adaptive runs.
    pub achieved_epsilon: Option<f64>,
    /// The run manifest (schema v6, with job, worker, sampling and
    /// codegen provenance).
    pub manifest: RunManifest,
}

/// Result of a [`JobSpec::Replay`] job.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplayOutcome {
    /// Snapshots replayed.
    pub samples: usize,
    /// Mean of the per-sample window powers, in milliwatts.
    pub mean_power_mw: f64,
    /// Output-trace values checked across all replays (every one
    /// matched, or the job would have failed).
    pub outputs_checked: u64,
    /// Order-sensitive fingerprint of every replayed sample, as hex.
    pub snapshot_fingerprint: String,
    /// How preparation was served (`cold` / `store` / `warm`).
    pub provenance: String,
}

/// Result of a [`JobSpec::Fuzz`] job.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FuzzJobOutcome {
    /// Designs fully checked.
    pub designs: u64,
    /// Whether the oracles diverged.
    pub diverged: bool,
    /// Seed of the first divergence, if any.
    pub failure_seed: Option<u64>,
    /// Whether the campaign was cut short by cancellation.
    pub cancelled: bool,
}

/// The payload of [`Event::Done`].
// Wire messages are transient (one per frame, serialized immediately), so
// the estimate outcome's size inside the enum is irrelevant; boxing it
// would only complicate every construction and match site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JobResult {
    /// From an estimate job.
    Estimate(EstimateOutcome),
    /// From a replay job.
    Replay(ReplayOutcome),
    /// From a fuzz job.
    Fuzz(FuzzJobOutcome),
}

/// A streamed progress message for a followed job.
#[allow(clippy::large_enum_variant)] // transient wire message; see JobResult
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Event {
    /// A worker picked the job up.
    Started {
        /// Job id.
        job: u64,
        /// Milliseconds the job waited in the queue.
        queue_wait_ms: f64,
    },
    /// A pipeline stage finished.
    Stage {
        /// Job id.
        job: u64,
        /// Stage name (`prepare`, `sim`, `replay`, `estimate`).
        stage: String,
        /// Wall-clock milliseconds the stage took.
        millis: f64,
    },
    /// Periodic progress within a phase. `total` is 0 when the end is
    /// not known in advance (fast-simulation windows).
    Progress {
        /// Job id.
        job: u64,
        /// Phase name (`sim`, `replay`, `fuzz`).
        phase: String,
        /// Units completed (windows, batches, designs).
        done: u64,
        /// Total units, or 0 if unknown.
        total: u64,
    },
    /// Free-form progress line.
    Log {
        /// Job id.
        job: u64,
        /// Message text.
        message: String,
    },
    /// The job finished successfully. Terminal.
    Done {
        /// Job id.
        job: u64,
        /// The result payload.
        result: JobResult,
    },
    /// The job failed. Terminal.
    Failed {
        /// Job id.
        job: u64,
        /// Why.
        error: WireError,
    },
    /// The job was cancelled. Terminal.
    Cancelled {
        /// Job id.
        job: u64,
    },
}

impl Event {
    /// The job this event is about.
    pub fn job(&self) -> u64 {
        match *self {
            Event::Started { job, .. }
            | Event::Stage { job, .. }
            | Event::Progress { job, .. }
            | Event::Log { job, .. }
            | Event::Done { job, .. }
            | Event::Failed { job, .. }
            | Event::Cancelled { job } => job,
        }
    }

    /// Whether this event ends the job's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Done { .. } | Event::Failed { .. } | Event::Cancelled { .. }
        )
    }
}

/// One frame of a [`Request::Watch`] subscription: an incremental
/// metrics update. A frame with `reset = true` carries the complete
/// registry; every other frame carries only the series that changed
/// since the previous frame, plus the names of series that disappeared
/// (e.g. a finished job's labeled gauges). Applying frames in `seq`
/// order with [`strober_probe::MetricsSnapshot::merge`] reconstructs the
/// registry exactly; a gap in `seq` means frames were lost and the
/// client should resubscribe.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchFrame {
    /// Frame number within this subscription, starting at 0.
    pub seq: u64,
    /// Milliseconds since the server's probe epoch.
    pub at_ms: u64,
    /// Whether `metrics` is a full snapshot (first frame) rather than a
    /// delta.
    pub reset: bool,
    /// Series present in the previous frame's registry but gone now.
    pub removed: Vec<String>,
    /// New and changed series (or everything, when `reset`).
    pub metrics: MetricsSnapshot,
}

/// Any server-to-client message: responses, job events and watch frames
/// share one connection, so every frame the server writes is tagged with
/// which of the three it carries.
#[allow(clippy::large_enum_variant)] // transient wire message; see JobResult
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ServerMsg {
    /// Answer to a request.
    Response(Response),
    /// Streamed job progress.
    Event(Event),
    /// Streamed metrics for a [`Request::Watch`] subscription.
    Watch(WatchFrame),
}

//! Strober-as-a-service: a persistent estimation server.
//!
//! The one-shot CLI pays design preparation — FAME1 transform,
//! synthesis, formal matching, simulator lowering, gate-tape compilation
//! — on every invocation. This crate keeps all of that *hot in memory*
//! in a long-lived daemon: clients submit estimate/replay/fuzz jobs over
//! a socket, a worker pool schedules them by priority, and followed jobs
//! stream progress events back as they run. A second job against an
//! already-prepared design skips preparation and lowering entirely (the
//! `warm` provenance) and returns results bit-identical to the one-shot
//! flow — determinism is load-bearing, so serving is purely a caching
//! layer, never a semantic one.
//!
//! The pieces:
//!
//! * [`protocol`] — the typed [`Request`]/[`Response`]/[`Event`] schema.
//! * [`frame`] — length-prefixed JSON framing with typed errors.
//! * [`catalog`] — the design/workload catalog shared with the CLI.
//! * [`server`] — the daemon: listeners, job queue, worker pool,
//!   graceful shutdown.
//! * [`client`] — a blocking client used by `strober submit`/`jobs`/
//!   `cancel`/`top` and the integration tests, with a [`WatchSession`]
//!   that mirrors the server's registry from incremental watch frames.
//!
//! Live telemetry rides the same connection: `Watch` subscriptions
//! stream labeled metric deltas at a client-chosen interval, `Scrape`
//! (and the optional HTTP `/metrics` listener) serve Prometheus text
//! exposition, and a flight-recorder ring keeps a bounded snapshot
//! history for post-hoc rate analysis.
//!
//! [`Request`]: protocol::Request
//! [`Response`]: protocol::Response
//! [`Event`]: protocol::Event

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod catalog;
pub mod client;
pub mod frame;
mod jobs;
pub mod protocol;
mod queue;
pub mod server;
pub mod signal;

pub use client::{Client, WatchSession};
pub use jobs::replay_fingerprint;
pub use server::{Server, ServerConfig, ServerHandle};

//! Wire-protocol invariants: every schema variant survives a serde
//! round trip, framing failures are typed, and a malformed frame gets a
//! typed error without killing the connection.

use strober_server::frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use strober_server::protocol::{
    ErrorKind, EstimateOutcome, EstimateSpec, Event, FuzzJobOutcome, FuzzSpec, JobResult, JobSpec,
    JobState, JobSummary, Priority, ReplayOutcome, Request, Response, ServerMsg, WireError,
};
use strober_server::{Server, ServerConfig};
use strober_store::{JobProvenance, RunManifest};

fn round_trip<T>(value: &T)
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, value, "through {json}");
}

fn sample_summary() -> JobSummary {
    JobSummary {
        id: 42,
        kind: "estimate".to_owned(),
        state: JobState::Running,
        priority: Priority::High,
        client: "test-client".to_owned(),
        queue_wait_ms: 12.25,
    }
}

fn sample_manifest() -> RunManifest {
    let mut m = RunManifest::new("rok-tiny".to_owned(), "vvadd".to_owned());
    m.fingerprint = "deadbeef".to_owned();
    m.set_prepare("warm");
    m.job = Some(JobProvenance {
        id: 42,
        client: "test-client".to_owned(),
        queue_wait_ms: 12.25,
        worker: "1".to_owned(),
    });
    m.record("prepare", std::time::Duration::from_millis(3));
    m
}

fn sample_estimate_outcome() -> EstimateOutcome {
    EstimateOutcome {
        core: "rok-tiny".to_owned(),
        workload: "vvadd".to_owned(),
        cycles: 120_000,
        instret: 40_000,
        windows: 937,
        records: 30,
        samples: 30,
        core_power_mw: 12.75,
        half_width_mw: 0.5,
        confidence: 0.99,
        dram_power_mw: 3.25,
        epi_nj: 1.125,
        provenance: "warm".to_owned(),
        snapshot_fingerprint: "cafe1234".to_owned(),
        stop_reason: "converged".to_owned(),
        achieved_epsilon: Some(0.042),
        manifest: sample_manifest(),
    }
}

#[test]
fn every_request_variant_round_trips() {
    let requests = [
        Request::Hello {
            client: "cli".to_owned(),
        },
        Request::Submit {
            spec: JobSpec::Estimate(EstimateSpec::default()),
            priority: Priority::Normal,
            follow: true,
        },
        Request::Submit {
            spec: JobSpec::Replay(EstimateSpec {
                asm: Some("addi x1, x0, 1\nebreak 0".to_owned()),
                parallel: 3,
                batch_lanes: 8,
                tape_opt: false,
                hub_threads: 4,
                ..EstimateSpec::default()
            }),
            priority: Priority::Low,
            follow: false,
        },
        Request::Submit {
            spec: JobSpec::Fuzz(FuzzSpec::default()),
            priority: Priority::High,
            follow: true,
        },
        Request::Jobs,
        Request::Status { job: 7 },
        Request::Cancel { job: 7 },
        Request::Metrics,
        Request::Shutdown { drain: true },
        Request::Ping,
    ];
    for req in &requests {
        round_trip(req);
    }
}

#[test]
fn every_response_variant_round_trips() {
    let responses = [
        Response::Hello {
            server: "strober-serve/0.1.0".to_owned(),
            protocol: 1,
            workers: 2,
        },
        Response::Submitted { job: 42 },
        Response::Jobs {
            jobs: vec![sample_summary()],
        },
        Response::Status {
            job: sample_summary(),
        },
        Response::Cancelled {
            job: 42,
            state: JobState::Cancelled,
        },
        Response::Metrics {
            metrics: strober_probe::snapshot(),
        },
        Response::ShuttingDown { drain: false },
        Response::Pong,
        Response::Error {
            error: WireError::new(ErrorKind::BadSpec, "unknown core `rocket`"),
        },
    ];
    for resp in &responses {
        round_trip(resp);
        round_trip(&ServerMsg::Response(resp.clone()));
    }
}

#[test]
fn every_event_and_result_variant_round_trips() {
    let events = [
        Event::Started {
            job: 1,
            queue_wait_ms: 0.5,
        },
        Event::Stage {
            job: 1,
            stage: "prepare".to_owned(),
            millis: 21.5,
        },
        Event::Progress {
            job: 1,
            phase: "replay".to_owned(),
            done: 3,
            total: 8,
        },
        Event::Log {
            job: 1,
            message: "divergence at seed 9".to_owned(),
        },
        Event::Done {
            job: 1,
            result: JobResult::Estimate(sample_estimate_outcome()),
        },
        Event::Done {
            job: 2,
            result: JobResult::Replay(ReplayOutcome {
                samples: 8,
                mean_power_mw: 11.5,
                outputs_checked: 4096,
                snapshot_fingerprint: "0123abcd".to_owned(),
                provenance: "store".to_owned(),
            }),
        },
        Event::Done {
            job: 3,
            result: JobResult::Fuzz(FuzzJobOutcome {
                designs: 50,
                diverged: true,
                failure_seed: Some(13),
                cancelled: false,
            }),
        },
        Event::Failed {
            job: 1,
            error: WireError::new(ErrorKind::Internal, "workload did not halt"),
        },
        Event::Cancelled { job: 1 },
    ];
    for ev in &events {
        assert!(ev.job() >= 1);
        round_trip(ev);
        round_trip(&ServerMsg::Event(ev.clone()));
    }
}

#[test]
fn truncating_a_frame_at_every_point_is_a_typed_error() {
    let mut buf = Vec::new();
    write_frame(
        &mut buf,
        &Request::Submit {
            spec: JobSpec::Estimate(EstimateSpec::default()),
            priority: Priority::Normal,
            follow: true,
        },
    )
    .unwrap();
    assert!(buf.len() > 4);
    for cut in 0..buf.len() {
        let mut r = std::io::Cursor::new(&buf[..cut]);
        let got = read_frame::<Request>(&mut r);
        if cut == 0 {
            assert_eq!(got, Err(FrameError::Closed), "empty stream is a clean EOF");
        } else {
            assert!(
                matches!(got, Err(FrameError::Truncated { .. })),
                "cut at {cut}: {got:?}"
            );
        }
    }
    // The untouched frame still parses.
    let mut r = std::io::Cursor::new(&buf);
    assert!(read_frame::<Request>(&mut r).is_ok());
}

#[test]
fn oversized_headers_and_garbage_payloads_are_survivable() {
    // A header over the cap is rejected before any allocation.
    let mut buf = ((MAX_FRAME_LEN as u32) + 1).to_be_bytes().to_vec();
    buf.extend_from_slice(b"x");
    let mut r = std::io::Cursor::new(buf);
    assert!(matches!(
        read_frame::<Request>(&mut r),
        Err(FrameError::Oversized { .. })
    ));

    // A well-framed garbage payload is Malformed, and because the frame
    // was fully consumed the *next* frame on the stream still parses.
    let mut buf = Vec::new();
    let garbage: &[u8] = b"\x00\xffnot json at all";
    buf.extend_from_slice(&(garbage.len() as u32).to_be_bytes());
    buf.extend_from_slice(garbage);
    write_frame(&mut buf, &Request::Ping).unwrap();
    let mut r = std::io::Cursor::new(buf);
    assert!(matches!(
        read_frame::<Request>(&mut r),
        Err(FrameError::Malformed(_))
    ));
    assert_eq!(read_frame::<Request>(&mut r).unwrap(), Request::Ping);
}

#[test]
fn malformed_frame_gets_a_typed_error_without_killing_the_connection() {
    let server = Server::bind(ServerConfig {
        workers: 1,
        store_dir: None,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut conn = std::net::TcpStream::connect(addr).unwrap();

    // A framed payload that is not valid JSON for `Request`.
    let garbage: &[u8] = b"{\"Bogus\":true}";
    let mut frame = (garbage.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(garbage);
    std::io::Write::write_all(&mut conn, &frame).unwrap();

    let msg: ServerMsg = read_frame(&mut conn).unwrap();
    let ServerMsg::Response(Response::Error { error }) = msg else {
        panic!("expected a protocol error, got {msg:?}");
    };
    assert_eq!(error.kind, ErrorKind::Protocol);

    // Same connection, next frame: still alive and well.
    write_frame(&mut conn, &Request::Ping).unwrap();
    let msg: ServerMsg = read_frame(&mut conn).unwrap();
    assert_eq!(msg, ServerMsg::Response(Response::Pong));

    handle.shutdown(false);
    join.join().unwrap().unwrap();
}

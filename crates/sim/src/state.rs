//! Captured simulator state.

/// A complete snapshot of a design's architectural state: every register
/// value and every memory's full contents, plus the cycle count at which it
/// was taken.
///
/// This is the in-memory form of the paper's "RTL state at cycle *c*"
/// (§III-B); the FAME transform's scan chains serialise exactly this data,
/// and gate-level replay begins by loading it into the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimState {
    /// Register values, indexed by register declaration order.
    pub regs: Vec<u64>,
    /// Memory contents, indexed by memory declaration order.
    pub mems: Vec<Vec<u64>>,
    /// The simulation cycle at which the state was captured.
    pub cycle: u64,
}

impl SimState {
    /// Total number of architectural state bits represented (register bits
    /// are counted at 64 here only if unknown; use the design for exact
    /// counts).
    pub fn element_count(&self) -> usize {
        self.regs.len() + self.mems.iter().map(Vec::len).sum::<usize>()
    }
}

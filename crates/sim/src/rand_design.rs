//! Random design generation for differential and property testing.
//!
//! The generator produces structurally valid, loop-free designs with
//! registers, memories, and the full operator set. It is used by this
//! crate's property tests (tape simulator vs. naive interpreter), and by
//! `strober-synth`/`strober-formal`, which check that gate-level lowering
//! preserves RTL semantics on thousands of random circuits — the same style
//! of evidence a commercial equivalence checker provides.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strober_rtl::{BinOp, Design, NodeId, UnOp, Width};

/// Parameters for random design generation.
#[derive(Debug, Clone)]
pub struct RandDesignConfig {
    /// Number of top-level inputs.
    pub inputs: usize,
    /// Number of combinational operator nodes.
    pub ops: usize,
    /// Number of registers.
    pub regs: usize,
    /// Whether to include a small memory with one read and one write port.
    pub with_memory: bool,
    /// Number of named outputs.
    pub outputs: usize,
    /// The width ladder node widths are drawn from. Entries outside
    /// `1..=64` are ignored; an empty (or all-invalid) ladder falls back
    /// to `[1]`. Skewed ladders like `[64]` (no 1-bit nodes for mux
    /// selects and enables) or `[1]` (no node wide enough for a memory
    /// address) are valid and exercise the generator's fallback paths.
    pub widths: Vec<u32>,
}

impl Default for RandDesignConfig {
    fn default() -> Self {
        RandDesignConfig {
            inputs: 4,
            ops: 60,
            regs: 6,
            with_memory: true,
            outputs: 4,
            widths: vec![1, 4, 8, 13, 16, 32, 64],
        }
    }
}

/// Generates a random valid design from a seed.
///
/// The same `(seed, config)` pair always produces the same design.
///
/// Every configuration is valid, including degenerate corners
/// (`inputs: 0`, `ops: 0`, `regs: 0`, `outputs: 0`, restricted width
/// ladders): seeded per-width constants keep the operand pool non-empty,
/// and every selection site that filters the pool by width has a
/// derivation fallback (slice a bit out of a wide node, synthesize a
/// constant) for when the filter comes up empty.
///
/// # Panics
///
/// Panics only on internal generator bugs; every produced design passes
/// [`Design::validate`].
pub fn rand_design(seed: u64, config: &RandDesignConfig) -> Design {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new(format!("rand_{seed}"));

    let mut widths: Vec<Width> = config
        .widths
        .iter()
        .filter_map(|&b| Width::new(b).ok())
        .collect();
    if widths.is_empty() {
        widths.push(Width::BIT);
    }
    let pick_width = |rng: &mut StdRng| widths[rng.gen_range(0..widths.len())];

    // Pools of available nodes per width for operand selection.
    let mut pool: Vec<NodeId> = Vec::new();

    for i in 0..config.inputs {
        let w = pick_width(&mut rng);
        pool.push(d.input(format!("in{i}"), w).expect("fresh name"));
    }
    // Seed constants so every width has at least one candidate.
    for (i, &w) in widths.iter().enumerate() {
        let v = rng.gen::<u64>() & w.mask();
        let c = d.constant(v, w);
        pool.push(c);
        let _ = i;
    }

    // Registers with feedback: declare now, connect at the end.
    let mut regs = Vec::new();
    for i in 0..config.regs {
        let w = pick_width(&mut rng);
        let init = rng.gen::<u64>() & w.mask();
        let r = d.reg(format!("reg{i}"), w, init).expect("fresh name");
        pool.push(d.reg_out(r));
        regs.push(r);
    }

    let mem = if config.with_memory {
        let w = Width::new(16).expect("static");
        let m = d.mem("ram", w, 32, vec![]).expect("fresh name");
        Some(m)
    } else {
        None
    };

    let pick = |rng: &mut StdRng, pool: &[NodeId]| pool[rng.gen_range(0..pool.len())];

    for _ in 0..config.ops {
        let choice = rng.gen_range(0..10);
        let a = pick(&mut rng, &pool);
        let node = match choice {
            0 => {
                let ops = [
                    UnOp::Not,
                    UnOp::Neg,
                    UnOp::RedAnd,
                    UnOp::RedOr,
                    UnOp::RedXor,
                ];
                d.unary(ops[rng.gen_range(0..ops.len())], a)
            }
            1..=4 => {
                // Binary op: find a same-width partner (or reuse `a`).
                let wa = d.width(a);
                let partners: Vec<NodeId> =
                    pool.iter().copied().filter(|&n| d.width(n) == wa).collect();
                let b = partners[rng.gen_range(0..partners.len())];
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Sra,
                    BinOp::Eq,
                    BinOp::Neq,
                    BinOp::Ltu,
                    BinOp::Leu,
                    BinOp::Lts,
                    BinOp::Les,
                    BinOp::DivU,
                    BinOp::RemU,
                ];
                d.binary(ops[rng.gen_range(0..ops.len())], a, b)
                    .expect("same width")
            }
            5 => {
                // Mux: need a 1-bit select. With a ladder like `[64]`
                // the pool holds no 1-bit nodes, so derive one by
                // slicing bit 0 out of `a`.
                let wa = d.width(a);
                let sels: Vec<NodeId> = pool
                    .iter()
                    .copied()
                    .filter(|&n| d.width(n) == Width::BIT)
                    .collect();
                let sel = if sels.is_empty() {
                    d.slice(a, 0, 0).expect("bit 0 always in range")
                } else {
                    sels[rng.gen_range(0..sels.len())]
                };
                let partners: Vec<NodeId> =
                    pool.iter().copied().filter(|&n| d.width(n) == wa).collect();
                let f = partners[rng.gen_range(0..partners.len())];
                d.mux(sel, a, f).expect("checked widths")
            }
            6 => {
                let wa = d.width(a).bits();
                let lo = rng.gen_range(0..wa);
                let hi = rng.gen_range(lo..wa);
                d.slice(a, hi, lo).expect("in range")
            }
            7 => {
                let wa = d.width(a).bits();
                let room = 64 - wa;
                if room == 0 {
                    d.not(a)
                } else {
                    let partners: Vec<NodeId> = pool
                        .iter()
                        .copied()
                        .filter(|&n| d.width(n).bits() <= room)
                        .collect();
                    if partners.is_empty() {
                        d.not(a)
                    } else {
                        let b = partners[rng.gen_range(0..partners.len())];
                        d.cat(a, b).expect("fits")
                    }
                }
            }
            8 => {
                if let Some(m) = mem {
                    let addrs: Vec<NodeId> = pool
                        .iter()
                        .copied()
                        .filter(|&n| d.width(n).bits() == 5)
                        .collect();
                    if addrs.is_empty() {
                        // Derive an address by slicing.
                        let wa = d.width(a).bits();
                        if wa >= 5 {
                            let addr = d.slice(a, 4, 0).expect("in range");
                            d.mem_read(m, addr).expect("width ok")
                        } else {
                            d.not(a)
                        }
                    } else {
                        let addr = addrs[rng.gen_range(0..addrs.len())];
                        d.mem_read(m, addr).expect("width ok")
                    }
                } else {
                    d.not(a)
                }
            }
            _ => d.not(a),
        };
        pool.push(node);
    }

    // Connect registers: any same-width node, random 1-bit enable or none.
    for r in regs {
        let w = d.register(r).width();
        let candidates: Vec<NodeId> = pool.iter().copied().filter(|&n| d.width(n) == w).collect();
        let next = candidates[rng.gen_range(0..candidates.len())];
        // An always-enabled register is the natural fallback when the
        // width ladder left no 1-bit node to use as an enable.
        let sels: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&n| d.width(n) == Width::BIT)
            .collect();
        let enable = if rng.gen_bool(0.5) && !sels.is_empty() {
            Some(sels[rng.gen_range(0..sels.len())])
        } else {
            None
        };
        d.reconnect_reg(r, next, enable).expect("checked widths");
    }

    // Memory write port. Narrow ladders may leave no node wide enough
    // for the address or data, and no 1-bit node for the write enable;
    // synthesize constants (address/data) or slice a bit (enable) then.
    if let Some(m) = mem {
        let slice_or_const = |d: &mut Design, rng: &mut StdRng, pool: &[NodeId], bits: u32| {
            let w = Width::new(bits).expect("static width");
            let wide: Vec<NodeId> = pool
                .iter()
                .copied()
                .filter(|&n| d.width(n).bits() >= bits)
                .collect();
            if wide.is_empty() {
                d.constant(rng.gen::<u64>() & w.mask(), w)
            } else {
                let src = wide[rng.gen_range(0..wide.len())];
                if d.width(src).bits() == bits {
                    src
                } else {
                    d.slice(src, bits - 1, 0).expect("in range")
                }
            }
        };
        let addr = slice_or_const(&mut d, &mut rng, &pool, 5);
        let data = slice_or_const(&mut d, &mut rng, &pool, 16);
        let sels: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&n| d.width(n) == Width::BIT)
            .collect();
        let we = if sels.is_empty() {
            let src = pick(&mut rng, &pool);
            d.slice(src, 0, 0).expect("bit 0 always in range")
        } else {
            sels[rng.gen_range(0..sels.len())]
        };
        d.mem_write(m, addr, data, we).expect("checked widths");
    }

    for i in 0..config.outputs {
        let n = pick(&mut rng, &pool);
        d.output(format!("out{i}"), n).expect("fresh name");
    }

    d.validate().expect("generated design must be valid");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RandDesignConfig::default();
        let a = rand_design(42, &cfg);
        let b = rand_design(42, &cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.register_count(), b.register_count());
    }

    #[test]
    fn many_seeds_validate() {
        let cfg = RandDesignConfig::default();
        for seed in 0..50 {
            let d = rand_design(seed, &cfg);
            assert!(d.node_count() > 0);
        }
    }

    #[test]
    fn config_without_memory() {
        let cfg = RandDesignConfig {
            with_memory: false,
            ..RandDesignConfig::default()
        };
        let d = rand_design(7, &cfg);
        assert_eq!(d.memory_count(), 0);
    }
}

//! VCD waveform tracing for the RTL simulator.
//!
//! Records the design's ports, register values and named outputs every
//! sampled cycle and renders a standard Value Change Dump, viewable in
//! GTKWave or any waveform viewer — the debugging companion every RTL
//! simulator ships with.
//!
//! # Examples
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//! use strober_sim::{Simulator, VcdTrace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Ctx::new("counter");
//! let count = ctx.reg("count", Width::new(4)?, 0);
//! count.set(&count.out().add_lit(1));
//! ctx.output("value", &count.out());
//! let design = ctx.finish()?;
//!
//! let mut sim = Simulator::new(&design)?;
//! let mut vcd = VcdTrace::new(&design);
//! for _ in 0..8 {
//!     vcd.sample(&mut sim);
//!     sim.step();
//! }
//! let dump = vcd.finish();
//! assert!(dump.contains("$enddefinitions"));
//! assert!(dump.contains("count"));
//! # Ok(())
//! # }
//! ```

use crate::tape::Simulator;
use std::fmt::Write as _;
use strober_rtl::{Design, NodeId, RegId};

enum Probe {
    Port {
        name: String,
        id: strober_rtl::PortId,
        width: u32,
    },
    Reg {
        name: String,
        id: RegId,
        width: u32,
    },
    Output {
        name: String,
        id: NodeId,
        width: u32,
    },
}

/// An incremental VCD recorder over a design's architectural signals.
pub struct VcdTrace {
    probes: Vec<Probe>,
    last: Vec<Option<u64>>,
    body: String,
    header: String,
    time: u64,
}

impl std::fmt::Debug for VcdTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VcdTrace({} probes, t={})", self.probes.len(), self.time)
    }
}

/// Short printable VCD identifier for probe `i`.
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != ' ' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl VcdTrace {
    /// Creates a trace covering every port, register and output of the
    /// design.
    pub fn new(design: &Design) -> Self {
        let mut probes = Vec::new();
        for p in design.ports() {
            probes.push(Probe::Port {
                name: sanitize(p.name()),
                id: p.id(),
                width: p.width().bits(),
            });
        }
        for (id, r) in design.registers() {
            probes.push(Probe::Reg {
                name: sanitize(r.name()),
                id,
                width: r.width().bits(),
            });
        }
        for (name, id) in design.outputs() {
            probes.push(Probe::Output {
                name: sanitize(name),
                id: *id,
                width: design.width(*id).bits(),
            });
        }

        let mut header = String::new();
        writeln!(header, "$version strober-sim $end").unwrap();
        writeln!(header, "$timescale 1ns $end").unwrap();
        writeln!(header, "$scope module {} $end", sanitize(design.name())).unwrap();
        for (i, probe) in probes.iter().enumerate() {
            let (name, width) = match probe {
                Probe::Port { name, width, .. }
                | Probe::Reg { name, width, .. }
                | Probe::Output { name, width, .. } => (name, *width),
            };
            writeln!(header, "$var wire {width} {} {name} $end", ident(i)).unwrap();
        }
        writeln!(header, "$upscope $end").unwrap();
        writeln!(header, "$enddefinitions $end").unwrap();

        let n = probes.len();
        VcdTrace {
            probes,
            last: vec![None; n],
            body: String::new(),
            header,
            time: 0,
        }
    }

    /// Samples the current simulator state as one timestep; only changed
    /// signals are emitted, per the VCD format.
    pub fn sample(&mut self, sim: &mut Simulator) {
        let mut wrote_time = false;
        for (i, probe) in self.probes.iter().enumerate() {
            let (value, width) = match probe {
                Probe::Port { id, width, .. } => {
                    // Read the port through its input node: peeking the
                    // node reflects the currently poked value.
                    let node = sim
                        .design()
                        .nodes()
                        .find_map(|(nid, node, _)| match node {
                            strober_rtl::Node::Input(p) if p == id => Some(nid),
                            _ => None,
                        })
                        .expect("port node exists");
                    (sim.peek(node), *width)
                }
                Probe::Reg { id, width, .. } => (sim.reg_value(*id), *width),
                Probe::Output { id, width, .. } => (sim.peek(*id), *width),
            };
            if self.last[i] != Some(value) {
                if !wrote_time {
                    writeln!(self.body, "#{}", self.time).unwrap();
                    wrote_time = true;
                }
                if width == 1 {
                    writeln!(self.body, "{}{}", value & 1, ident(i)).unwrap();
                } else {
                    writeln!(self.body, "b{value:b} {}", ident(i)).unwrap();
                }
                self.last[i] = Some(value);
            }
        }
        self.time += 1;
    }

    /// Renders the complete VCD document.
    pub fn finish(self) -> String {
        strober_probe::debug!(
            "vcd: rendered {} probes over {} timesteps ({} bytes)",
            self.probes.len(),
            self.time,
            self.header.len() + self.body.len()
        );
        format!("{}{}", self.header, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;

    fn counter() -> Design {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.scope("core", |c| c.reg("count", Width::new(4).unwrap(), 0));
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        ctx.finish().unwrap()
    }

    #[test]
    fn header_declares_all_probes() {
        let design = counter();
        let vcd = VcdTrace::new(&design);
        let text = vcd.finish();
        assert!(text.contains("$var wire 1 ! en $end"));
        assert!(text.contains("core/count"));
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn only_changes_are_recorded() {
        let design = counter();
        let mut sim = Simulator::new(&design).unwrap();
        let mut vcd = VcdTrace::new(&design);
        sim.poke_by_name("en", 0).unwrap();
        for _ in 0..5 {
            vcd.sample(&mut sim);
            sim.step();
        }
        let text = vcd.finish();
        // With en = 0 nothing changes after t0: exactly one timestep
        // (identifier characters may themselves be '#', so count lines).
        let timesteps = text.lines().filter(|l| l.starts_with('#')).count();
        assert_eq!(timesteps, 1);
        assert!(text.contains("#0"));
    }

    #[test]
    fn counting_produces_value_changes() {
        let design = counter();
        let mut sim = Simulator::new(&design).unwrap();
        let mut vcd = VcdTrace::new(&design);
        sim.poke_by_name("en", 1).unwrap();
        for _ in 0..4 {
            vcd.sample(&mut sim);
            sim.step();
        }
        let text = vcd.finish();
        for t_line in ["#0", "#1", "#3"] {
            assert!(
                text.lines().any(|l| l == t_line),
                "missing timestep {t_line}"
            );
        }
        // The 4-bit counter emits binary vectors.
        assert!(text.contains("b11 "));
    }

    #[test]
    fn ident_generation_is_unique_and_printable() {
        let ids: Vec<String> = (0..500).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids.iter().all(|s| s.chars().all(|c| c.is_ascii_graphic())));
    }
}

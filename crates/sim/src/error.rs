use std::error::Error;
use std::fmt;

/// Errors produced by the simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A named port or output does not exist in the design.
    UnknownName {
        /// What kind of thing was looked up.
        kind: &'static str,
        /// The name that was not found.
        name: String,
    },
    /// A poked value does not fit the port's width.
    ValueTooWide {
        /// The port's name.
        port: String,
        /// The value that was poked.
        value: u64,
        /// The port's width in bits.
        width: u32,
    },
    /// A restored state does not match the design's shape.
    StateShapeMismatch {
        /// Description of the mismatch.
        what: &'static str,
    },
    /// A native settle engine was compiled from a different tape than the
    /// one it is being attached to (stale dylib, different design or
    /// optimizer options).
    EngineSignatureMismatch {
        /// The signature the simulator's own tape generates.
        expected: u64,
        /// The signature the offered engine reports.
        actual: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownName { kind, name } => write!(f, "unknown {kind} `{name}`"),
            SimError::ValueTooWide { port, value, width } => {
                write!(f, "value {value:#x} too wide for {width}-bit port `{port}`")
            }
            SimError::StateShapeMismatch { what } => {
                write!(f, "state shape mismatch: {what}")
            }
            SimError::EngineSignatureMismatch { expected, actual } => write!(
                f,
                "native settle engine signature {actual:#x} does not match \
                 this tape's generated source ({expected:#x})"
            ),
        }
    }
}

impl Error for SimError {}

//! The compiled-tape simulator.

use crate::error::SimError;
use crate::state::SimState;
use std::collections::HashMap;
use std::sync::Arc;
use strober_rtl::{BinOp, Design, MemId, Node, NodeId, RegId, UnOp, Width};

/// One pre-resolved operation on the evaluation tape.
#[derive(Debug, Clone, Copy)]
enum TapeOp {
    Input {
        dst: u32,
        port: u32,
    },
    Unary {
        dst: u32,
        op: UnOp,
        a: u32,
        w: Width,
    },
    Binary {
        dst: u32,
        op: BinOp,
        a: u32,
        b: u32,
        w: Width,
    },
    Mux {
        dst: u32,
        sel: u32,
        t: u32,
        f: u32,
    },
    Slice {
        dst: u32,
        a: u32,
        shift: u8,
        mask: u64,
    },
    Cat {
        dst: u32,
        hi: u32,
        lo: u32,
        shift: u8,
    },
    RegOut {
        dst: u32,
        reg: u32,
    },
    MemRead {
        dst: u32,
        mem: u32,
        addr: u32,
    },
    Wire {
        dst: u32,
        src: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct RegPlan {
    next: u32,
    enable: Option<u32>,
    mask: u64,
}

#[derive(Debug, Clone, Copy)]
struct WritePlan {
    mem: u32,
    addr: u32,
    data: u32,
    enable: u32,
}

/// The compiled-tape cycle-accurate simulator.
///
/// Construction compiles the design once (`O(nodes)`); each [`step`] then
/// evaluates the flat tape, captures register next-values, commits memory
/// writes and advances the clock. See the
/// [crate documentation](crate) for an example.
///
/// [`step`]: Simulator::step
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Arc<Design>,
    tape: Vec<TapeOp>,
    reg_plans: Vec<RegPlan>,
    write_plans: Vec<WritePlan>,
    values: Vec<u64>,
    regs: Vec<u64>,
    reg_next: Vec<u64>,
    mems: Vec<Vec<u64>>,
    inputs: Vec<u64>,
    cycle: u64,
    dirty: bool,
    output_index: HashMap<String, NodeId>,
    port_index: HashMap<String, (u32, Width)>,
}

impl Simulator {
    /// Compiles a design into a tape simulator.
    ///
    /// # Errors
    ///
    /// Returns the design's validation error if it is malformed (e.g.
    /// combinational loops or unconnected registers).
    pub fn new(design: &Design) -> Result<Self, strober_rtl::RtlError> {
        design.validate()?;
        let topo = design.topo_order()?;

        let mut values = vec![0u64; design.node_count()];
        let mut tape = Vec::with_capacity(design.node_count());
        for id in topo.iter() {
            let dst = id.index() as u32;
            match *design.node(id) {
                Node::Const(v) => values[id.index()] = v,
                Node::Input(p) => tape.push(TapeOp::Input {
                    dst,
                    port: p.index() as u32,
                }),
                Node::Unary { op, a } => tape.push(TapeOp::Unary {
                    dst,
                    op,
                    a: a.index() as u32,
                    w: design.width(a),
                }),
                Node::Binary { op, a, b } => tape.push(TapeOp::Binary {
                    dst,
                    op,
                    a: a.index() as u32,
                    b: b.index() as u32,
                    w: design.width(a),
                }),
                Node::Mux { sel, t, f } => tape.push(TapeOp::Mux {
                    dst,
                    sel: sel.index() as u32,
                    t: t.index() as u32,
                    f: f.index() as u32,
                }),
                Node::Slice { a, hi, lo } => tape.push(TapeOp::Slice {
                    dst,
                    a: a.index() as u32,
                    shift: lo as u8,
                    mask: Width::new(hi - lo + 1).expect("validated").mask(),
                }),
                Node::Cat { hi, lo } => tape.push(TapeOp::Cat {
                    dst,
                    hi: hi.index() as u32,
                    lo: lo.index() as u32,
                    shift: design.width(lo).bits() as u8,
                }),
                Node::RegOut(r) => tape.push(TapeOp::RegOut {
                    dst,
                    reg: r.index() as u32,
                }),
                Node::MemRead { mem, port } => {
                    let addr = design.memory(mem).read_ports()[port].addr();
                    tape.push(TapeOp::MemRead {
                        dst,
                        mem: mem.index() as u32,
                        addr: addr.index() as u32,
                    });
                }
                Node::Wire(wid) => {
                    let src = design.wire_driver(wid).expect("validated");
                    tape.push(TapeOp::Wire {
                        dst,
                        src: src.index() as u32,
                    });
                }
            }
        }

        let reg_plans = design
            .registers()
            .map(|(_, r)| RegPlan {
                next: r.next().expect("validated").index() as u32,
                enable: r.enable().map(|e| e.index() as u32),
                mask: r.width().mask(),
            })
            .collect();

        let mut write_plans = Vec::new();
        for (mid, m) in design.memories() {
            for wp in m.write_ports() {
                write_plans.push(WritePlan {
                    mem: mid.index() as u32,
                    addr: wp.addr().index() as u32,
                    data: wp.data().index() as u32,
                    enable: wp.enable().index() as u32,
                });
            }
        }

        let regs: Vec<u64> = design.registers().map(|(_, r)| r.init()).collect();
        let mems: Vec<Vec<u64>> = design
            .memories()
            .map(|(_, m)| {
                let mut v = m.init().to_vec();
                v.resize(m.depth(), 0);
                v
            })
            .collect();

        let output_index = design
            .outputs()
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        let port_index = design
            .ports()
            .iter()
            .map(|p| (p.name().to_owned(), (p.id().index() as u32, p.width())))
            .collect();

        let reg_next = regs.clone();
        let n_inputs = design.ports().len();
        Ok(Simulator {
            design: Arc::new(design.clone()),
            tape,
            reg_plans,
            write_plans,
            values,
            regs,
            reg_next,
            mems,
            inputs: vec![0; n_inputs],
            cycle: 0,
            dirty: true,
            output_index,
            port_index,
        })
    }

    /// The design this simulator was compiled from.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets a top-level input by port id index.
    pub(crate) fn poke_raw(&mut self, port: u32, value: u64) {
        self.inputs[port as usize] = value;
        self.dirty = true;
    }

    /// Sets a top-level input by [`strober_rtl::PortId`], masking the value
    /// to the port's width. This is the fast path for host drivers that
    /// resolve port names once up front.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a port of this design.
    pub fn poke(&mut self, port: strober_rtl::PortId, value: u64) {
        let width = self.design.ports()[port.index()].width();
        self.poke_raw(port.index() as u32, value & width.mask());
    }

    /// Sets a top-level input by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown port and
    /// [`SimError::ValueTooWide`] when the value does not fit.
    pub fn poke_by_name(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let &(port, width) = self
            .port_index
            .get(name)
            .ok_or_else(|| SimError::UnknownName {
                kind: "input port",
                name: name.to_owned(),
            })?;
        if value > width.mask() {
            return Err(SimError::ValueTooWide {
                port: name.to_owned(),
                value,
                width: width.bits(),
            });
        }
        self.poke_raw(port, value);
        Ok(())
    }

    /// Evaluates the combinational tape with the current inputs and state.
    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        for op in &self.tape {
            match *op {
                TapeOp::Input { dst, port } => {
                    self.values[dst as usize] = self.inputs[port as usize]
                }
                TapeOp::Unary { dst, op, a, w } => {
                    self.values[dst as usize] = op.eval(self.values[a as usize], w)
                }
                TapeOp::Binary { dst, op, a, b, w } => {
                    self.values[dst as usize] =
                        op.eval(self.values[a as usize], self.values[b as usize], w)
                }
                TapeOp::Mux { dst, sel, t, f } => {
                    self.values[dst as usize] = if self.values[sel as usize] != 0 {
                        self.values[t as usize]
                    } else {
                        self.values[f as usize]
                    }
                }
                TapeOp::Slice {
                    dst,
                    a,
                    shift,
                    mask,
                } => self.values[dst as usize] = (self.values[a as usize] >> shift) & mask,
                TapeOp::Cat { dst, hi, lo, shift } => {
                    self.values[dst as usize] =
                        (self.values[hi as usize] << shift) | self.values[lo as usize]
                }
                TapeOp::RegOut { dst, reg } => self.values[dst as usize] = self.regs[reg as usize],
                TapeOp::MemRead { dst, mem, addr } => {
                    let m = &self.mems[mem as usize];
                    let a = self.values[addr as usize] as usize;
                    // Addresses beyond the depth read as zero (the synthesis
                    // flow pads memories to powers of two the same way).
                    self.values[dst as usize] = m.get(a).copied().unwrap_or(0);
                }
                TapeOp::Wire { dst, src } => self.values[dst as usize] = self.values[src as usize],
            }
        }
        self.dirty = false;
    }

    /// Advances one clock cycle: settle, capture register next-values,
    /// commit memory writes, bump the cycle counter.
    pub fn step(&mut self) {
        self.settle();
        for (i, plan) in self.reg_plans.iter().enumerate() {
            let en = plan.enable.is_none_or(|e| self.values[e as usize] != 0);
            self.reg_next[i] = if en {
                self.values[plan.next as usize] & plan.mask
            } else {
                self.regs[i]
            };
        }
        for plan in &self.write_plans {
            if self.values[plan.enable as usize] != 0 {
                let addr = self.values[plan.addr as usize] as usize;
                let data = self.values[plan.data as usize];
                let mem = &mut self.mems[plan.mem as usize];
                if let Some(slot) = mem.get_mut(addr) {
                    *slot = data;
                }
            }
        }
        std::mem::swap(&mut self.regs, &mut self.reg_next);
        self.cycle += 1;
        self.dirty = true;
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Reads a named output, settling combinational logic first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown output.
    pub fn peek_output(&mut self, name: &str) -> Result<u64, SimError> {
        let id = *self
            .output_index
            .get(name)
            .ok_or_else(|| SimError::UnknownName {
                kind: "output",
                name: name.to_owned(),
            })?;
        Ok(self.peek(id))
    }

    /// Reads any node's settled value.
    pub fn peek(&mut self, node: NodeId) -> u64 {
        self.settle();
        self.values[node.index()]
    }

    /// The current value of a register.
    pub fn reg_value(&self, reg: RegId) -> u64 {
        self.regs[reg.index()]
    }

    /// Overwrites a register's current value (used when loading snapshots).
    pub fn set_reg_value(&mut self, reg: RegId, value: u64) {
        let mask = self.design.register(reg).width().mask();
        self.regs[reg.index()] = value & mask;
        self.dirty = true;
    }

    /// Reads one memory word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range for the memory.
    pub fn mem_value(&self, mem: MemId, addr: usize) -> u64 {
        self.mems[mem.index()][addr]
    }

    /// Overwrites one memory word (used when loading snapshots and
    /// program images).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range for the memory.
    pub fn set_mem_value(&mut self, mem: MemId, addr: usize, value: u64) {
        let mask = self.design.memory(mem).width().mask();
        self.mems[mem.index()][addr] = value & mask;
        self.dirty = true;
    }

    /// Captures the complete architectural state.
    pub fn state(&self) -> SimState {
        SimState {
            regs: self.regs.clone(),
            mems: self.mems.clone(),
            cycle: self.cycle,
        }
    }

    /// Restores a previously captured state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateShapeMismatch`] when the state does not
    /// match this design's register/memory shapes.
    pub fn restore(&mut self, state: &SimState) -> Result<(), SimError> {
        if state.regs.len() != self.regs.len() {
            return Err(SimError::StateShapeMismatch {
                what: "register count",
            });
        }
        if state.mems.len() != self.mems.len()
            || state
                .mems
                .iter()
                .zip(&self.mems)
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(SimError::StateShapeMismatch {
                what: "memory shapes",
            });
        }
        self.regs.clone_from(&state.regs);
        self.mems.clone_from(&state.mems);
        self.cycle = state.cycle;
        self.dirty = true;
        Ok(())
    }

    /// Resets registers and memories to their declared initial values and
    /// the cycle counter to zero. Inputs are preserved.
    pub fn reset_state(&mut self) {
        for (i, (_, r)) in self.design.registers().enumerate() {
            self.regs[i] = r.init();
        }
        let inits: Vec<(usize, Vec<u64>, usize)> = self
            .design
            .memories()
            .enumerate()
            .map(|(i, (_, m))| (i, m.init().to_vec(), m.depth()))
            .collect();
        for (i, init, depth) in inits {
            let mut v = init;
            v.resize(depth, 0);
            self.mems[i] = v;
        }
        self.cycle = 0;
        self.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn counter() -> Design {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.reg("count", w(8), 0);
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        ctx.finish().unwrap()
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(10);
        assert_eq!(sim.peek_output("value").unwrap(), 10);
        sim.poke_by_name("en", 0).unwrap();
        sim.step_n(3);
        assert_eq!(sim.peek_output("value").unwrap(), 10);
        assert_eq!(sim.cycle(), 13);
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(256);
        assert_eq!(sim.peek_output("value").unwrap(), 0);
    }

    #[test]
    fn unknown_names_error() {
        let mut sim = Simulator::new(&counter()).unwrap();
        assert!(matches!(
            sim.poke_by_name("nope", 0),
            Err(SimError::UnknownName { .. })
        ));
        assert!(matches!(
            sim.peek_output("nope"),
            Err(SimError::UnknownName { .. })
        ));
    }

    #[test]
    fn poke_checks_width() {
        let mut sim = Simulator::new(&counter()).unwrap();
        assert!(matches!(
            sim.poke_by_name("en", 2),
            Err(SimError::ValueTooWide { .. })
        ));
    }

    #[test]
    fn memory_write_then_read() {
        let ctx = Ctx::new("ram");
        let m = ctx.mem("ram", w(16), 16);
        let addr = ctx.input("addr", w(4));
        let data = ctx.input("data", w(16));
        let we = ctx.input("we", Width::BIT);
        ctx.output("q", &m.read(&addr));
        m.write(&addr, &data, &we);
        let design = ctx.finish().unwrap();

        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("addr", 5).unwrap();
        sim.poke_by_name("data", 0xABCD).unwrap();
        sim.poke_by_name("we", 1).unwrap();
        // Combinational read before the write edge sees the old value.
        assert_eq!(sim.peek_output("q").unwrap(), 0);
        sim.step();
        sim.poke_by_name("we", 0).unwrap();
        assert_eq!(sim.peek_output("q").unwrap(), 0xABCD);
    }

    #[test]
    fn state_snapshot_and_restore_round_trips() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(42);
        let snap = sim.state();
        sim.step_n(10);
        assert_eq!(sim.peek_output("value").unwrap(), 52);
        sim.restore(&snap).unwrap();
        assert_eq!(sim.cycle(), 42);
        assert_eq!(sim.peek_output("value").unwrap(), 42);
        // Determinism: re-running from the snapshot matches.
        sim.step_n(10);
        assert_eq!(sim.peek_output("value").unwrap(), 52);
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let mut sim = Simulator::new(&counter()).unwrap();
        let bad = SimState {
            regs: vec![0, 0],
            mems: vec![],
            cycle: 0,
        };
        assert!(sim.restore(&bad).is_err());
    }

    #[test]
    fn reset_state_restores_initial_values() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(9);
        sim.reset_state();
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.peek_output("value").unwrap(), 0);
    }

    #[test]
    fn register_without_enable_updates_every_cycle() {
        let ctx = Ctx::new("t");
        let r = ctx.reg("r", w(4), 3);
        r.set(&r.out().add_lit(2));
        ctx.output("o", &r.out());
        let design = ctx.finish().unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.step_n(2);
        assert_eq!(sim.peek_output("o").unwrap(), 7);
    }

    #[test]
    fn gcd_computes() {
        let ctx = Ctx::new("gcd");
        let w16 = w(16);
        let a_in = ctx.input("a", w16);
        let b_in = ctx.input("b", w16);
        let start = ctx.input("start", Width::BIT);
        let x = ctx.reg("x", w16, 0);
        let y = ctx.reg("y", w16, 0);
        let x_gt_y = y.out().ltu(&x.out());
        let x_next = x_gt_y.mux(&(&x.out() - &y.out()), &x.out());
        let y_next = x_gt_y.mux(&y.out(), &(&y.out() - &x.out()));
        x.set(&start.mux(&a_in, &x_next));
        y.set(&start.mux(&b_in, &y_next));
        ctx.output("result", &x.out());
        ctx.output("done", &y.out().eq_lit(0));
        let design = ctx.finish().unwrap();

        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("a", 48).unwrap();
        sim.poke_by_name("b", 36).unwrap();
        sim.poke_by_name("start", 1).unwrap();
        sim.step();
        sim.poke_by_name("start", 0).unwrap();
        let mut iters = 0;
        while sim.peek_output("done").unwrap() == 0 {
            sim.step();
            iters += 1;
            assert!(iters < 1000, "gcd did not converge");
        }
        assert_eq!(sim.peek_output("result").unwrap(), 12);
    }
}

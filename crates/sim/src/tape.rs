//! The compiled-tape simulator.
//!
//! # Tape IR
//!
//! Construction lowers the design's combinational graph into a flat,
//! topologically ordered array of [`TapeOp`]s over dense *value slots*.
//! The optimizer ([`crate::opt`]) emits every design constant into a
//! leading block of slots and then exactly one fresh slot per surviving
//! op, so each op writes a unique `dst` and reads only slots produced
//! earlier in the tape (or constants). That single-assignment shape is
//! what the multi-threaded engine in [`crate::partition`] relies on: ops
//! can be reordered across workers as long as producer-before-consumer
//! order is preserved, because no two ops ever race on a slot.
//!
//! # Execution
//!
//! Each [`Simulator::step`] settles the combinational tape, captures
//! register next-values, commits memory writes and advances the clock.
//! `settle` runs sequentially by default; after
//! [`Simulator::set_threads`] with `threads > 1` it dispatches to the
//! partitioned parallel engine instead, which is bit-identical by
//! construction (the sequential state-update epilogue in `step` is
//! shared by both paths).

use crate::codegen::JitSource;
use crate::engine::{Engine, NativeSettle};
use crate::error::SimError;
use crate::opt::{PassStats, TapeOptions};
use crate::partition::{self, PartitionStats};
use crate::state::SimState;
use std::collections::HashMap;
use std::sync::Arc;
use strober_rtl::{BinOp, Design, MemId, Node, NodeId, PortId, RegId, UnOp, Width};

/// Sentinel slot for nodes the optimizer removed from the tape; reads of
/// such nodes fall back to the tree-walking slow path.
pub(crate) const DEAD: u32 = u32::MAX;

/// One pre-resolved operation on the evaluation tape.
///
/// `dst`/operand fields are *value slots*, not node ids: the optimizer
/// renumbers surviving ops into a dense evaluation-ordered layout.
/// [`SliceBin`](TapeOp::SliceBin) and [`BinMux`](TapeOp::BinMux) are fused
/// superops produced by the peephole pass.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TapeOp {
    Input {
        dst: u32,
        port: u32,
    },
    Unary {
        dst: u32,
        op: UnOp,
        a: u32,
        w: Width,
    },
    Binary {
        dst: u32,
        op: BinOp,
        a: u32,
        b: u32,
        w: Width,
    },
    Mux {
        dst: u32,
        sel: u32,
        t: u32,
        f: u32,
    },
    Slice {
        dst: u32,
        a: u32,
        shift: u8,
        mask: u64,
    },
    Cat {
        dst: u32,
        hi: u32,
        lo: u32,
        shift: u8,
    },
    RegOut {
        dst: u32,
        reg: u32,
    },
    MemRead {
        dst: u32,
        mem: u32,
        addr: u32,
    },
    Wire {
        dst: u32,
        src: u32,
    },
    /// Fused slice-then-binary: one operand of the binary is
    /// `(values[src] >> shift) & mask`, inlined.
    SliceBin {
        dst: u32,
        op: BinOp,
        src: u32,
        shift: u8,
        mask: u64,
        other: u32,
        w: Width,
        slice_lhs: bool,
    },
    /// Fused binary-then-mux: the mux select is the binary's result,
    /// computed inline.
    BinMux {
        dst: u32,
        op: BinOp,
        a: u32,
        b: u32,
        w: Width,
        t: u32,
        f: u32,
    },
    /// Fused mux-then-mux: one branch is a single-use inner mux, computed
    /// inline (the scan-chain capture/shift cascade shape).
    MuxMux {
        dst: u32,
        sel: u32,
        other: u32,
        inner_sel: u32,
        inner_t: u32,
        inner_f: u32,
        /// Whether the inner mux sits on the true branch of the outer mux.
        inner_in_true: bool,
    },
    /// Specialized `Binary { op: And, .. }`: operands are pre-masked, so
    /// no width bookkeeping or operator dispatch is needed.
    BitAnd {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Specialized `Binary { op: Or, .. }`.
    BitOr {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Specialized `Binary { op: Xor, .. }`.
    BitXor {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Specialized `Binary { op: Eq, .. }`.
    CmpEq {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Specialized `Unary { op: Not, .. }` with the width pre-baked as a
    /// mask.
    NotMask {
        dst: u32,
        a: u32,
        mask: u64,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct RegPlan {
    pub(crate) next: u32,
    pub(crate) enable: Option<u32>,
    pub(crate) mask: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct WritePlan {
    pub(crate) mem: u32,
    pub(crate) addr: u32,
    pub(crate) data: u32,
    pub(crate) enable: u32,
}

/// The compiled-tape cycle-accurate simulator.
///
/// Construction compiles the design once (`O(nodes)`); each [`step`] then
/// evaluates the flat tape, captures register next-values, commits memory
/// writes and advances the clock. See the
/// [crate documentation](crate) for an example.
///
/// [`step`]: Simulator::step
#[derive(Debug)]
pub struct Simulator {
    design: Arc<Design>,
    tape: Vec<TapeOp>,
    reg_plans: Vec<RegPlan>,
    write_plans: Vec<WritePlan>,
    values: Vec<u64>,
    node_slot: Vec<u32>,
    regs: Vec<u64>,
    reg_next: Vec<u64>,
    mems: Vec<Vec<u64>>,
    inputs: Vec<u64>,
    cycle: u64,
    dirty: bool,
    stats: PassStats,
    output_index: HashMap<String, NodeId>,
    port_index: HashMap<String, (u32, Width)>,
    /// Worker count for `settle`; 1 = sequential (the default).
    threads: usize,
    /// Lazily built partitioned engine, present only while `threads > 1`.
    /// Never cloned: each clone rebuilds its own worker pool on first use.
    engine: Option<Box<partition::Engine>>,
    /// Native settle engine attached by `strober-jit`, taking priority
    /// over both the sequential walk and the partitioned engine. Shared
    /// across clones: the compiled code is immutable and thread-safe, so
    /// unlike the partitioned worker pool it travels with the clone.
    jit: Option<Arc<dyn NativeSettle>>,
    /// Per-slot "the native engine materializes this slot" mask, present
    /// while a JIT engine is attached. The generated code keeps internal
    /// temporaries in locals and stores only externally observed slots
    /// (outputs, register next/enable, memory ports); peeks of any other
    /// live slot reroute to the tree-walking recompute, like `DEAD` ones.
    jit_stored: Option<Arc<[bool]>>,
}

impl Clone for Simulator {
    fn clone(&self) -> Self {
        Simulator {
            design: self.design.clone(),
            tape: self.tape.clone(),
            reg_plans: self.reg_plans.clone(),
            write_plans: self.write_plans.clone(),
            values: self.values.clone(),
            node_slot: self.node_slot.clone(),
            regs: self.regs.clone(),
            reg_next: self.reg_next.clone(),
            mems: self.mems.clone(),
            inputs: self.inputs.clone(),
            cycle: self.cycle,
            dirty: self.dirty,
            stats: self.stats,
            output_index: self.output_index.clone(),
            port_index: self.port_index.clone(),
            threads: self.threads,
            engine: None,
            jit: self.jit.clone(),
            jit_stored: self.jit_stored.clone(),
        }
    }
}

impl Simulator {
    /// Compiles a design into a tape simulator with the full optimizing
    /// pass pipeline ([`TapeOptions::all`]).
    ///
    /// # Errors
    ///
    /// Returns the design's validation error if it is malformed (e.g.
    /// combinational loops or unconnected registers).
    pub fn new(design: &Design) -> Result<Self, strober_rtl::RtlError> {
        Self::with_options(design, &TapeOptions::default())
    }

    /// Compiles a design with an explicit optimizer pass selection.
    ///
    /// [`TapeOptions::none`] bypasses the pipeline entirely and reproduces
    /// the unoptimized one-op-per-node tape (slot == node index); this is
    /// the `--no-tape-opt` path and the baseline for the per-pass golden
    /// equivalence tests.
    ///
    /// # Errors
    ///
    /// Returns the design's validation error if it is malformed.
    pub fn with_options(
        design: &Design,
        options: &TapeOptions,
    ) -> Result<Self, strober_rtl::RtlError> {
        design.validate()?;
        let topo = design.topo_order()?;
        let plan = if options.any() {
            crate::opt::compile(design, &topo, options)
        } else {
            crate::opt::lower_identity(design, &topo)
        };
        if options.any() {
            record_pass_stats(&plan.stats);
        }

        let regs: Vec<u64> = design.registers().map(|(_, r)| r.init()).collect();
        let mems: Vec<Vec<u64>> = design
            .memories()
            .map(|(_, m)| {
                let mut v = m.init().to_vec();
                v.resize(m.depth(), 0);
                v
            })
            .collect();

        let output_index = design
            .outputs()
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        let port_index = design
            .ports()
            .iter()
            .map(|p| (p.name().to_owned(), (p.id().index() as u32, p.width())))
            .collect();

        let reg_next = regs.clone();
        let n_inputs = design.ports().len();
        Ok(Simulator {
            design: Arc::new(design.clone()),
            tape: plan.tape,
            reg_plans: plan.reg_plans,
            write_plans: plan.write_plans,
            values: plan.values,
            node_slot: plan.node_slot,
            regs,
            reg_next,
            mems,
            inputs: vec![0; n_inputs],
            cycle: 0,
            dirty: true,
            stats: plan.stats,
            output_index,
            port_index,
            threads: 1,
            engine: None,
            jit: None,
            jit_stored: None,
        })
    }

    /// Selects the settle engine: `1` (the default) keeps the sequential
    /// tape walk, anything larger dispatches combinational evaluation to
    /// the partitioned parallel engine (`partition` module, DESIGN.md
    /// §14) with that many workers. Values are clamped to at least 1.
    /// Changing the count drops any existing worker pool; the new one is
    /// built lazily on the next settle.
    ///
    /// Register capture and memory commit stay sequential on the calling
    /// thread either way, so results are bit-identical across settings.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.threads {
            self.threads = threads;
            self.engine = None;
        }
    }

    /// The configured settle worker count (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The partition plan shape of the parallel engine, or `None` while
    /// running sequentially. Builds the engine if it has not run yet.
    pub fn partition_stats(&mut self) -> Option<PartitionStats> {
        if self.threads <= 1 {
            return None;
        }
        self.ensure_engine();
        self.engine.as_ref().map(|e| e.stats())
    }

    /// Builds the worker pool for the current tape if it is not yet built.
    fn ensure_engine(&mut self) {
        if self.engine.is_none() {
            self.engine = Some(Box::new(partition::Engine::new(
                &self.tape,
                self.values.len(),
                self.threads,
            )));
        }
    }

    /// What the optimizer did to this simulator's tape. All-zero pass
    /// counters (with `ops_final == ops_initial`) indicate the unoptimized
    /// [`TapeOptions::none`] lowering.
    pub fn pass_stats(&self) -> PassStats {
        self.stats
    }

    /// Counts of tape ops by kind, for optimizer diagnostics.
    pub fn tape_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for op in &self.tape {
            let kind = match op {
                TapeOp::Input { .. } => "input".to_owned(),
                TapeOp::Unary { op, .. } => format!("unary:{op:?}"),
                TapeOp::Binary { op, .. } => format!("binary:{op:?}"),
                TapeOp::Mux { .. } => "mux".to_owned(),
                TapeOp::Slice { .. } => "slice".to_owned(),
                TapeOp::Cat { .. } => "cat".to_owned(),
                TapeOp::RegOut { .. } => "reg_out".to_owned(),
                TapeOp::MemRead { .. } => "mem_read".to_owned(),
                TapeOp::Wire { .. } => "wire".to_owned(),
                TapeOp::SliceBin { op, .. } => format!("slice_bin:{op:?}"),
                TapeOp::BinMux { op, .. } => format!("bin_mux:{op:?}"),
                TapeOp::MuxMux { .. } => "mux_mux".to_owned(),
                TapeOp::BitAnd { .. } => "and".to_owned(),
                TapeOp::BitOr { .. } => "or".to_owned(),
                TapeOp::BitXor { .. } => "xor".to_owned(),
                TapeOp::CmpEq { .. } => "eq".to_owned(),
                TapeOp::NotMask { .. } => "not".to_owned(),
            };
            *counts.entry(kind).or_insert(0) += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The design this simulator was compiled from.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets a top-level input by port id index.
    pub(crate) fn poke_raw(&mut self, port: u32, value: u64) {
        self.inputs[port as usize] = value;
        self.dirty = true;
    }

    /// Sets a top-level input by [`strober_rtl::PortId`], masking the value
    /// to the port's width. This is the fast path for host drivers that
    /// resolve port names once up front.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a port of this design.
    pub fn poke(&mut self, port: strober_rtl::PortId, value: u64) {
        let width = self.design.ports()[port.index()].width();
        self.poke_raw(port.index() as u32, value & width.mask());
    }

    /// Sets a top-level input by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown port and
    /// [`SimError::ValueTooWide`] when the value does not fit.
    pub fn poke_by_name(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let &(port, width) = self
            .port_index
            .get(name)
            .ok_or_else(|| SimError::UnknownName {
                kind: "input port",
                name: name.to_owned(),
            })?;
        if value > width.mask() {
            return Err(SimError::ValueTooWide {
                port: name.to_owned(),
                value,
                width: width.bits(),
            });
        }
        self.poke_raw(port, value);
        Ok(())
    }

    /// Attaches a native settle engine (see [`NativeSettle`]), after
    /// verifying that its signature matches the source this simulator's
    /// own tape generates. From then on `settle` calls into the native
    /// code instead of walking the tape; register capture and memory
    /// commit stay on the interpreted epilogue, so results are
    /// bit-identical by the same argument as the partitioned engine.
    ///
    /// The engine is shared by reference across [`Clone`]s.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EngineSignatureMismatch`] when the engine was
    /// compiled from a different tape (stale dylib, different design or
    /// optimizer options).
    pub fn attach_jit(&mut self, engine: Arc<dyn NativeSettle>) -> Result<(), SimError> {
        let expected = self.jit_source().sig;
        let actual = engine.signature();
        if actual != expected {
            return Err(SimError::EngineSignatureMismatch { expected, actual });
        }
        self.jit = Some(engine);
        self.jit_stored = Some(self.stored_slots().into());
        self.dirty = true;
        Ok(())
    }

    /// Drops any attached native settle engine, reverting to the
    /// interpreted tape walk (sequential or partitioned per
    /// [`set_threads`](Simulator::set_threads)). Marks the simulator
    /// dirty so the next settle rebuilds the full value slab — the
    /// native engine only materializes observed slots.
    pub fn detach_jit(&mut self) {
        self.jit = None;
        self.jit_stored = None;
        self.dirty = true;
    }

    /// The per-slot set the native engine must store back to the slab:
    /// everything read outside `settle` — output nodes, register
    /// next/enable slots, memory write ports. Internal temporaries stay
    /// in locals in the generated code; reads of those slots reroute to
    /// the tree-walking recompute (see [`peek`](Simulator::peek)).
    fn stored_slots(&self) -> Vec<bool> {
        let mut stored = vec![false; self.values.len()];
        let mut mark = |slot: u32| {
            if slot != DEAD {
                stored[slot as usize] = true;
            }
        };
        for id in self.output_index.values() {
            mark(self.node_slot[id.index()]);
        }
        for plan in &self.reg_plans {
            mark(plan.next);
            if let Some(e) = plan.enable {
                mark(e);
            }
        }
        for plan in &self.write_plans {
            mark(plan.enable);
            mark(plan.addr);
            mark(plan.data);
        }
        stored
    }

    /// Whether reads of `slot` must bypass the slab because the attached
    /// native engine keeps it in a local instead of storing it.
    fn jit_skips(&self, slot: u32) -> bool {
        self.jit.is_some() && self.jit_stored.as_ref().is_some_and(|s| !s[slot as usize])
    }

    /// Whether a native settle engine is currently attached.
    pub fn has_jit(&self) -> bool {
        self.jit.is_some()
    }

    /// Generates the Rust source of this tape's native settle function
    /// (see [`crate::JitSource`]). `strober-jit` compiles this to a
    /// `cdylib` and attaches the result via
    /// [`attach_jit`](Simulator::attach_jit).
    pub fn jit_source(&self) -> JitSource {
        crate::codegen::emit(&self.tape, self.values.len(), &self.stored_slots())
    }

    /// The label of the settle engine currently in effect, as used for
    /// benchmark rows and manifests: `"tape-jit"`, `"tape-partitioned"`
    /// or `"tape"` in priority order.
    pub fn active_engine_name(&self) -> &'static str {
        if self.jit.is_some() {
            "tape-jit"
        } else if self.threads > 1 {
            "tape-partitioned"
        } else {
            "tape"
        }
    }

    /// Evaluates the combinational tape with the current inputs and state.
    /// Idempotent until the next poke, state change or clock edge.
    ///
    /// Dispatches to the native JIT engine when one is attached, else the
    /// partitioned engine when `threads > 1`, else the sequential walk —
    /// all bit-identical.
    pub fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        if let Some(jit) = &self.jit {
            jit.settle(&mut self.values, &self.inputs, &self.regs, &self.mems);
            self.dirty = false;
            return;
        }
        if self.threads > 1 && !self.tape.is_empty() {
            self.ensure_engine();
            let engine = self.engine.as_ref().expect("just built");
            engine.settle(&mut self.values, &self.inputs, &self.regs, &self.mems);
            self.dirty = false;
            return;
        }
        for op in &self.tape {
            match *op {
                TapeOp::Input { dst, port } => {
                    self.values[dst as usize] = self.inputs[port as usize]
                }
                TapeOp::Unary { dst, op, a, w } => {
                    self.values[dst as usize] = op.eval(self.values[a as usize], w)
                }
                TapeOp::Binary { dst, op, a, b, w } => {
                    self.values[dst as usize] =
                        op.eval(self.values[a as usize], self.values[b as usize], w)
                }
                TapeOp::Mux { dst, sel, t, f } => {
                    self.values[dst as usize] = if self.values[sel as usize] != 0 {
                        self.values[t as usize]
                    } else {
                        self.values[f as usize]
                    }
                }
                TapeOp::Slice {
                    dst,
                    a,
                    shift,
                    mask,
                } => self.values[dst as usize] = (self.values[a as usize] >> shift) & mask,
                TapeOp::Cat { dst, hi, lo, shift } => {
                    self.values[dst as usize] =
                        (self.values[hi as usize] << shift) | self.values[lo as usize]
                }
                TapeOp::RegOut { dst, reg } => self.values[dst as usize] = self.regs[reg as usize],
                TapeOp::MemRead { dst, mem, addr } => {
                    let m = &self.mems[mem as usize];
                    let a = self.values[addr as usize] as usize;
                    // Addresses beyond the depth read as zero (the synthesis
                    // flow pads memories to powers of two the same way).
                    self.values[dst as usize] = m.get(a).copied().unwrap_or(0);
                }
                TapeOp::Wire { dst, src } => self.values[dst as usize] = self.values[src as usize],
                TapeOp::SliceBin {
                    dst,
                    op,
                    src,
                    shift,
                    mask,
                    other,
                    w,
                    slice_lhs,
                } => {
                    let sv = (self.values[src as usize] >> shift) & mask;
                    let ov = self.values[other as usize];
                    let (a, b) = if slice_lhs { (sv, ov) } else { (ov, sv) };
                    self.values[dst as usize] = op.eval(a, b, w);
                }
                TapeOp::BinMux {
                    dst,
                    op,
                    a,
                    b,
                    w,
                    t,
                    f,
                } => {
                    self.values[dst as usize] =
                        if op.eval(self.values[a as usize], self.values[b as usize], w) != 0 {
                            self.values[t as usize]
                        } else {
                            self.values[f as usize]
                        }
                }
                TapeOp::MuxMux {
                    dst,
                    sel,
                    other,
                    inner_sel,
                    inner_t,
                    inner_f,
                    inner_in_true,
                } => {
                    let take_inner = (self.values[sel as usize] != 0) == inner_in_true;
                    self.values[dst as usize] = if take_inner {
                        if self.values[inner_sel as usize] != 0 {
                            self.values[inner_t as usize]
                        } else {
                            self.values[inner_f as usize]
                        }
                    } else {
                        self.values[other as usize]
                    };
                }
                TapeOp::BitAnd { dst, a, b } => {
                    self.values[dst as usize] = self.values[a as usize] & self.values[b as usize]
                }
                TapeOp::BitOr { dst, a, b } => {
                    self.values[dst as usize] = self.values[a as usize] | self.values[b as usize]
                }
                TapeOp::BitXor { dst, a, b } => {
                    self.values[dst as usize] = self.values[a as usize] ^ self.values[b as usize]
                }
                TapeOp::CmpEq { dst, a, b } => {
                    self.values[dst as usize] =
                        u64::from(self.values[a as usize] == self.values[b as usize])
                }
                TapeOp::NotMask { dst, a, mask } => {
                    self.values[dst as usize] = !self.values[a as usize] & mask
                }
            }
        }
        self.dirty = false;
    }

    /// Advances one clock cycle: settle, capture register next-values,
    /// commit memory writes, bump the cycle counter.
    pub fn step(&mut self) {
        self.settle();
        self.clock_edge();
    }

    /// The synchronous half of a cycle: registers capture their next
    /// values, memory writes commit, the cycle counter increments.
    /// Settles first if needed, so calling this alone is a full
    /// [`step`](Simulator::step). This epilogue is sequential and shared
    /// by every settle engine, which is what makes them bit-identical.
    pub fn clock_edge(&mut self) {
        self.settle();
        for (i, plan) in self.reg_plans.iter().enumerate() {
            let en = plan.enable.is_none_or(|e| self.values[e as usize] != 0);
            self.reg_next[i] = if en {
                self.values[plan.next as usize] & plan.mask
            } else {
                self.regs[i]
            };
        }
        for plan in &self.write_plans {
            if self.values[plan.enable as usize] != 0 {
                let addr = self.values[plan.addr as usize] as usize;
                let data = self.values[plan.data as usize];
                let mem = &mut self.mems[plan.mem as usize];
                if let Some(slot) = mem.get_mut(addr) {
                    *slot = data;
                }
            }
        }
        std::mem::swap(&mut self.regs, &mut self.reg_next);
        self.cycle += 1;
        self.dirty = true;
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Reads a named output, settling combinational logic first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown output.
    pub fn peek_output(&mut self, name: &str) -> Result<u64, SimError> {
        let id = *self
            .output_index
            .get(name)
            .ok_or_else(|| SimError::UnknownName {
                kind: "output",
                name: name.to_owned(),
            })?;
        Ok(self.peek(id))
    }

    /// Reads any node's settled value.
    ///
    /// Nodes whose slot the optimizer removed (folded, dead or fused away)
    /// are recomputed on demand by a tree-walking fallback; outputs,
    /// register inputs and memory ports always stay on the fast path.
    pub fn peek(&mut self, node: NodeId) -> u64 {
        self.settle();
        match self.node_slot[node.index()] {
            DEAD => self.peek_slow(node, &mut HashMap::new()),
            slot if self.jit_skips(slot) => self.peek_slow(node, &mut HashMap::new()),
            slot => self.values[slot as usize],
        }
    }

    /// Recomputes a node the optimizer removed from the tape, reading live
    /// slots where available. Mirrors [`crate::NaiveInterpreter`] semantics.
    fn peek_slow(&self, id: NodeId, memo: &mut HashMap<NodeId, u64>) -> u64 {
        let slot = self.node_slot[id.index()];
        if slot != DEAD && !self.jit_skips(slot) {
            return self.values[slot as usize];
        }
        if let Some(&v) = memo.get(&id) {
            return v;
        }
        let v = match *self.design.node(id) {
            Node::Input(p) => self.inputs[p.index()],
            Node::Const(c) => c,
            Node::Unary { op, a } => op.eval(self.peek_slow(a, memo), self.design.width(a)),
            Node::Binary { op, a, b } => op.eval(
                self.peek_slow(a, memo),
                self.peek_slow(b, memo),
                self.design.width(a),
            ),
            Node::Mux { sel, t, f } => {
                if self.peek_slow(sel, memo) != 0 {
                    self.peek_slow(t, memo)
                } else {
                    self.peek_slow(f, memo)
                }
            }
            Node::Slice { a, hi, lo } => {
                let mask = Width::new(hi - lo + 1).expect("validated").mask();
                (self.peek_slow(a, memo) >> lo) & mask
            }
            Node::Cat { hi, lo } => {
                let shift = self.design.width(lo).bits();
                (self.peek_slow(hi, memo) << shift) | self.peek_slow(lo, memo)
            }
            Node::RegOut(r) => self.regs[r.index()],
            Node::MemRead { mem, port } => {
                let addr_node = self.design.memory(mem).read_ports()[port].addr();
                let addr = self.peek_slow(addr_node, memo) as usize;
                self.mems[mem.index()].get(addr).copied().unwrap_or(0)
            }
            Node::Wire(wid) => {
                let src = self.design.wire_driver(wid).expect("validated");
                self.peek_slow(src, memo)
            }
        };
        let v = v & self.design.width(id).mask();
        memo.insert(id, v);
        v
    }

    /// Resolves an output name to its node id once, for hot loops that
    /// would otherwise hash the name on every [`peek`](Simulator::peek).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown output.
    pub fn resolve_output(&self, name: &str) -> Result<NodeId, SimError> {
        self.output_index
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownName {
                kind: "output",
                name: name.to_owned(),
            })
    }

    /// Resolves an input port name to its port id once, for hot loops that
    /// would otherwise hash the name on every [`poke`](Simulator::poke).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown port.
    pub fn resolve_port(&self, name: &str) -> Result<PortId, SimError> {
        self.port_index
            .get(name)
            .map(|&(idx, _)| PortId::from_index(idx as usize))
            .ok_or_else(|| SimError::UnknownName {
                kind: "input port",
                name: name.to_owned(),
            })
    }

    /// The current value of a register.
    pub fn reg_value(&self, reg: RegId) -> u64 {
        self.regs[reg.index()]
    }

    /// Overwrites a register's current value (used when loading snapshots).
    pub fn set_reg_value(&mut self, reg: RegId, value: u64) {
        let mask = self.design.register(reg).width().mask();
        self.regs[reg.index()] = value & mask;
        self.dirty = true;
    }

    /// Reads one memory word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range for the memory.
    pub fn mem_value(&self, mem: MemId, addr: usize) -> u64 {
        self.mems[mem.index()][addr]
    }

    /// Overwrites one memory word (used when loading snapshots and
    /// program images).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range for the memory.
    pub fn set_mem_value(&mut self, mem: MemId, addr: usize, value: u64) {
        let mask = self.design.memory(mem).width().mask();
        self.mems[mem.index()][addr] = value & mask;
        self.dirty = true;
    }

    /// Captures the complete architectural state.
    pub fn state(&self) -> SimState {
        SimState {
            regs: self.regs.clone(),
            mems: self.mems.clone(),
            cycle: self.cycle,
        }
    }

    /// Restores a previously captured state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateShapeMismatch`] when the state does not
    /// match this design's register/memory shapes.
    pub fn restore(&mut self, state: &SimState) -> Result<(), SimError> {
        if state.regs.len() != self.regs.len() {
            return Err(SimError::StateShapeMismatch {
                what: "register count",
            });
        }
        if state.mems.len() != self.mems.len()
            || state
                .mems
                .iter()
                .zip(&self.mems)
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(SimError::StateShapeMismatch {
                what: "memory shapes",
            });
        }
        self.regs.clone_from(&state.regs);
        self.mems.clone_from(&state.mems);
        self.cycle = state.cycle;
        self.dirty = true;
        Ok(())
    }

    /// Resets registers and memories to their declared initial values and
    /// the cycle counter to zero. Inputs are preserved.
    pub fn reset_state(&mut self) {
        for (i, (_, r)) in self.design.registers().enumerate() {
            self.regs[i] = r.init();
        }
        let inits: Vec<(usize, Vec<u64>, usize)> = self
            .design
            .memories()
            .enumerate()
            .map(|(i, (_, m))| (i, m.init().to_vec(), m.depth()))
            .collect();
        for (i, init, depth) in inits {
            let mut v = init;
            v.resize(depth, 0);
            self.mems[i] = v;
        }
        self.cycle = 0;
        self.dirty = true;
    }
}

impl Engine for Simulator {
    fn poke(&mut self, port: PortId, value: u64) {
        Simulator::poke(self, port, value);
    }

    fn peek(&mut self, node: NodeId) -> u64 {
        Simulator::peek(self, node)
    }

    fn settle(&mut self) {
        Simulator::settle(self);
    }

    fn clock_edge(&mut self) {
        Simulator::clock_edge(self);
    }

    fn state(&self) -> SimState {
        Simulator::state(self)
    }

    fn engine_name(&self) -> &'static str {
        self.active_engine_name()
    }
}

/// Mirrors one tape's [`PassStats`] into the probe registry so
/// `strober probe report` aggregates optimizer effectiveness across a flow.
fn record_pass_stats(stats: &PassStats) {
    if !strober_probe::enabled() {
        return;
    }
    strober_probe::counter_add("strober.sim.tape.ops_before", stats.ops_initial as u64);
    strober_probe::counter_add("strober.sim.tape.ops_after", stats.ops_final as u64);
    strober_probe::counter_add("strober.sim.tape.const_folded", stats.const_folded as u64);
    strober_probe::counter_add(
        "strober.sim.tape.copies_propagated",
        stats.copies_propagated as u64,
    );
    strober_probe::counter_add(
        "strober.sim.tape.dead_eliminated",
        stats.dead_eliminated as u64,
    );
    strober_probe::counter_add("strober.sim.tape.ops_fused", stats.ops_fused as u64);
    strober_probe::counter_add("strober.sim.tape.slots_before", stats.slots_initial as u64);
    strober_probe::counter_add("strober.sim.tape.slots_after", stats.slots_final as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn counter() -> Design {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.reg("count", w(8), 0);
        count.set_en(&count.out().add_lit(1), &en);
        ctx.output("value", &count.out());
        ctx.finish().unwrap()
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(10);
        assert_eq!(sim.peek_output("value").unwrap(), 10);
        sim.poke_by_name("en", 0).unwrap();
        sim.step_n(3);
        assert_eq!(sim.peek_output("value").unwrap(), 10);
        assert_eq!(sim.cycle(), 13);
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(256);
        assert_eq!(sim.peek_output("value").unwrap(), 0);
    }

    #[test]
    fn unknown_names_error() {
        let mut sim = Simulator::new(&counter()).unwrap();
        assert!(matches!(
            sim.poke_by_name("nope", 0),
            Err(SimError::UnknownName { .. })
        ));
        assert!(matches!(
            sim.peek_output("nope"),
            Err(SimError::UnknownName { .. })
        ));
    }

    #[test]
    fn poke_checks_width() {
        let mut sim = Simulator::new(&counter()).unwrap();
        assert!(matches!(
            sim.poke_by_name("en", 2),
            Err(SimError::ValueTooWide { .. })
        ));
    }

    #[test]
    fn memory_write_then_read() {
        let ctx = Ctx::new("ram");
        let m = ctx.mem("ram", w(16), 16);
        let addr = ctx.input("addr", w(4));
        let data = ctx.input("data", w(16));
        let we = ctx.input("we", Width::BIT);
        ctx.output("q", &m.read(&addr));
        m.write(&addr, &data, &we);
        let design = ctx.finish().unwrap();

        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("addr", 5).unwrap();
        sim.poke_by_name("data", 0xABCD).unwrap();
        sim.poke_by_name("we", 1).unwrap();
        // Combinational read before the write edge sees the old value.
        assert_eq!(sim.peek_output("q").unwrap(), 0);
        sim.step();
        sim.poke_by_name("we", 0).unwrap();
        assert_eq!(sim.peek_output("q").unwrap(), 0xABCD);
    }

    #[test]
    fn state_snapshot_and_restore_round_trips() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(42);
        let snap = sim.state();
        sim.step_n(10);
        assert_eq!(sim.peek_output("value").unwrap(), 52);
        sim.restore(&snap).unwrap();
        assert_eq!(sim.cycle(), 42);
        assert_eq!(sim.peek_output("value").unwrap(), 42);
        // Determinism: re-running from the snapshot matches.
        sim.step_n(10);
        assert_eq!(sim.peek_output("value").unwrap(), 52);
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let mut sim = Simulator::new(&counter()).unwrap();
        let bad = SimState {
            regs: vec![0, 0],
            mems: vec![],
            cycle: 0,
        };
        assert!(sim.restore(&bad).is_err());
    }

    #[test]
    fn reset_state_restores_initial_values() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(9);
        sim.reset_state();
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.peek_output("value").unwrap(), 0);
    }

    #[test]
    fn register_without_enable_updates_every_cycle() {
        let ctx = Ctx::new("t");
        let r = ctx.reg("r", w(4), 3);
        r.set(&r.out().add_lit(2));
        ctx.output("o", &r.out());
        let design = ctx.finish().unwrap();
        let mut sim = Simulator::new(&design).unwrap();
        sim.step_n(2);
        assert_eq!(sim.peek_output("o").unwrap(), 7);
    }

    #[test]
    fn threaded_counter_matches_sequential() {
        let mut seq = Simulator::new(&counter()).unwrap();
        let mut par = Simulator::new(&counter()).unwrap();
        par.set_threads(3);
        assert_eq!(par.threads(), 3);
        for sim in [&mut seq, &mut par] {
            sim.poke_by_name("en", 1).unwrap();
            sim.step_n(37);
        }
        assert_eq!(
            seq.peek_output("value").unwrap(),
            par.peek_output("value").unwrap()
        );
        assert!(par.partition_stats().is_some());
        assert!(seq.partition_stats().is_none());
    }

    #[test]
    fn clone_with_threads_rebuilds_its_own_pool() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.set_threads(2);
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(5);
        let mut twin = sim.clone();
        assert_eq!(twin.threads(), 2);
        sim.step_n(5);
        twin.step_n(5);
        assert_eq!(
            sim.peek_output("value").unwrap(),
            twin.peek_output("value").unwrap()
        );
    }

    #[test]
    fn set_threads_back_to_one_restores_sequential() {
        let mut sim = Simulator::new(&counter()).unwrap();
        sim.set_threads(4);
        sim.poke_by_name("en", 1).unwrap();
        sim.step_n(3);
        sim.set_threads(1);
        sim.step_n(3);
        assert_eq!(sim.peek_output("value").unwrap(), 6);
        assert!(sim.partition_stats().is_none());
    }

    #[test]
    fn gcd_computes() {
        let ctx = Ctx::new("gcd");
        let w16 = w(16);
        let a_in = ctx.input("a", w16);
        let b_in = ctx.input("b", w16);
        let start = ctx.input("start", Width::BIT);
        let x = ctx.reg("x", w16, 0);
        let y = ctx.reg("y", w16, 0);
        let x_gt_y = y.out().ltu(&x.out());
        let x_next = x_gt_y.mux(&(&x.out() - &y.out()), &x.out());
        let y_next = x_gt_y.mux(&y.out(), &(&y.out() - &x.out()));
        x.set(&start.mux(&a_in, &x_next));
        y.set(&start.mux(&b_in, &y_next));
        ctx.output("result", &x.out());
        ctx.output("done", &y.out().eq_lit(0));
        let design = ctx.finish().unwrap();

        let mut sim = Simulator::new(&design).unwrap();
        sim.poke_by_name("a", 48).unwrap();
        sim.poke_by_name("b", 36).unwrap();
        sim.poke_by_name("start", 1).unwrap();
        sim.step();
        sim.poke_by_name("start", 0).unwrap();
        let mut iters = 0;
        while sim.peek_output("done").unwrap() == 0 {
            sim.step();
            iters += 1;
            assert!(iters < 1000, "gcd did not converge");
        }
        assert_eq!(sim.peek_output("result").unwrap(), 12);
    }
}

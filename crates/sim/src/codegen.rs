//! Tape-to-Rust lowering for the JIT engine.
//!
//! Emits the optimized op tape as one straight-line Rust function of word
//! ops, with every constant, shift, mask and slot index baked into the
//! instruction stream and no per-op dispatch. Dataflow between ops runs
//! through SSA locals (so the compiled code keeps it in registers); only
//! the slots read outside `settle` — outputs, register next/enable slots,
//! memory write ports — are stored back to the flat value slab the
//! sequential settle loop in [`crate::tape`] maintains in full. Peeks of
//! any other slot reroute to the tree-walking recompute, exactly like
//! slots the optimizer removed. `strober-jit` compiles the emitted source with
//! `rustc --crate-type cdylib` and `dlopen`s the result; the exported
//! `strober_jit_settle` symbol has the exact signature of
//! [`crate::NativeSettle::settle`] flattened to C ABI (memories are
//! passed as `(ptr, len)` span pairs).
//!
//! Bit-identity with the interpreted tape is achieved by construction:
//! every emitted expression is a literal transcription of the matching
//! arm in the settle loop and of `UnOp::eval`/`BinOp::eval` in
//! `strober-rtl`, division-by-zero and out-of-range shift/address
//! semantics included. The golden suites and the fuzz oracle's `tape-jit`
//! lane hold this invariant under test.
//!
//! The emitted source also exports `strober_jit_sig() -> u64`, an FNV-1a
//! hash of the settle body. The simulator checks that hash against the
//! source it would generate for its own tape before attaching a native
//! engine, so a stale dylib (different design, different optimizer
//! options, different codegen revision) is rejected instead of silently
//! producing wrong bits.

use crate::tape::TapeOp;
use std::fmt::Write;
use strober_rtl::{BinOp, UnOp, Width};

/// Generated settle source plus its identity hash.
#[derive(Debug, Clone)]
pub struct JitSource {
    /// Complete Rust source for a `cdylib` crate exporting
    /// `strober_jit_settle` and `strober_jit_sig`.
    pub source: String,
    /// FNV-1a hash of the settle body, also returned by the compiled
    /// dylib's `strober_jit_sig`.
    pub sig: u64,
}

/// FNV-1a over the generated body; must match the dylib-side constant.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A slot read from the value slab.
fn v(slot: u32) -> String {
    format!("*v.add({slot})")
}

/// An operand read: the SSA local when a prior op in this settle already
/// defined the slot, the slab otherwise (constants and other values
/// initialized outside the tape). Keeping consumers on locals instead of
/// slab re-loads is what lets LLVM hold the dataflow in registers — with
/// thousands of stores in one straight-line block its store-to-load
/// forwarding gives up long before the end of the function.
fn r(slot: u32, defined: &[bool]) -> String {
    if defined[slot as usize] {
        format!("t{slot}")
    } else {
        v(slot)
    }
}

/// Transcribes `UnOp::eval` with width constants baked in.
fn un_expr(op: UnOp, a: &str, w: Width) -> String {
    let m = w.mask();
    match op {
        UnOp::Not => format!("!({a}) & {m:#x}"),
        UnOp::Neg => format!("({a}).wrapping_neg() & {m:#x}"),
        UnOp::RedAnd => format!("(({a}) == {m:#x}) as u64"),
        UnOp::RedOr => format!("(({a}) != 0) as u64"),
        UnOp::RedXor => format!("(({a}).count_ones() & 1) as u64"),
    }
}

/// Transcribes `BinOp::eval` with width constants baked in. `a` and `b`
/// are expression strings; block-bodied ops bind them once to keep
/// side-effect-free double evaluation out of the emitted code.
fn bin_expr(op: BinOp, a: &str, b: &str, w: Width) -> String {
    let m = w.mask();
    let bits = w.bits();
    // `sign_extend(x, w)`: shift to the top, arithmetic shift back.
    let s64 = 64 - bits;
    let sext = |x: &str| format!("(((({x}) << {s64}) as i64) >> {s64})");
    match op {
        BinOp::Add => format!("({a}).wrapping_add({b}) & {m:#x}"),
        BinOp::Sub => format!("({a}).wrapping_sub({b}) & {m:#x}"),
        BinOp::Mul => format!("({a}).wrapping_mul({b}) & {m:#x}"),
        BinOp::DivU => {
            format!("{{ let d = {b}; if d == 0 {{ {m:#x} }} else {{ (({a}) / d) & {m:#x} }} }}")
        }
        BinOp::RemU => {
            format!("{{ let d = {b}; if d == 0 {{ {a} }} else {{ (({a}) % d) & {m:#x} }} }}")
        }
        BinOp::And => format!("({a}) & ({b})"),
        BinOp::Or => format!("({a}) | ({b})"),
        BinOp::Xor => format!("({a}) ^ ({b})"),
        BinOp::Shl => {
            format!("{{ let s = {b}; if s >= {bits} {{ 0 }} else {{ (({a}) << s) & {m:#x} }} }}")
        }
        BinOp::Shr => {
            format!("{{ let s = {b}; if s >= {bits} {{ 0 }} else {{ ({a}) >> s }} }}")
        }
        BinOp::Sra => format!(
            "{{ let s = ({b}).min({}); (({} >> s) as u64) & {m:#x} }}",
            bits - 1,
            sext(a)
        ),
        BinOp::Eq => format!("(({a}) == ({b})) as u64"),
        BinOp::Neq => format!("(({a}) != ({b})) as u64"),
        BinOp::Ltu => format!("(({a}) < ({b})) as u64"),
        BinOp::Leu => format!("(({a}) <= ({b})) as u64"),
        BinOp::Lts => format!("({} < {}) as u64", sext(a), sext(b)),
        BinOp::Les => format!("({} <= {}) as u64", sext(a), sext(b)),
    }
}

/// A bounds-checked memory read: addresses beyond the depth read as zero,
/// exactly like the interpreted `MemRead` arm.
fn mem_read(mem: u32, addr_expr: &str) -> String {
    format!(
        "{{ let s = &*mems.add({mem}); let a = ({addr_expr}) as usize; \
         if a < s.len {{ *s.ptr.add(a) }} else {{ 0 }} }}"
    )
}

/// Lowers a tape to the source of a `cdylib` crate exporting the native
/// settle entry point. `n_values` is the slot slab length; every slot
/// index the tape references is asserted to lie below it here, which is
/// what makes the raw-pointer writes in the emitted code sound.
/// `stored` flags the slots read outside `settle` (outputs, register
/// next/enable, memory ports): only those are written back to the slab,
/// everything else lives in SSA locals the whole function.
pub(crate) fn emit(tape: &[TapeOp], n_values: usize, stored: &[bool]) -> JitSource {
    assert_eq!(stored.len(), n_values, "stored mask must cover the slab");
    let mut reads = Vec::new();
    for op in tape {
        reads.clear();
        crate::partition::operands(op, &mut reads);
        reads.push(crate::partition::dst(op));
        for &slot in &reads {
            assert!(
                (slot as usize) < n_values,
                "tape slot {slot} out of range for slab of {n_values}"
            );
        }
    }
    // Every op binds an SSA local (`t<slot>`, shadowed on slot reuse);
    // only externally observed slots are also stored to the slab. The
    // local keeps consumers in registers, the store keeps the slab
    // correct where the clock edge and peeks read it. `defined` tracks
    // which slots already have a local this settle.
    let mut defined = vec![false; n_values];
    let mut body = String::new();
    for op in tape {
        let d = &defined;
        let (dst, expr) = match *op {
            TapeOp::Input { dst, port } => (dst, format!("*inp.add({port})")),
            TapeOp::Unary { dst, op, a, w } => (dst, un_expr(op, &r(a, d), w)),
            TapeOp::Binary { dst, op, a, b, w } => {
                (dst, bin_expr(op, &r(a, d), &r(b, d), w))
            }
            TapeOp::Mux { dst, sel, t, f } => (
                dst,
                format!(
                    "if {} != 0 {{ {} }} else {{ {} }}",
                    r(sel, d),
                    r(t, d),
                    r(f, d)
                ),
            ),
            TapeOp::Slice {
                dst,
                a,
                shift,
                mask,
            } => (dst, format!("({} >> {shift}) & {mask:#x}", r(a, d))),
            TapeOp::Cat { dst, hi, lo, shift } => (
                dst,
                format!("({} << {shift}) | {}", r(hi, d), r(lo, d)),
            ),
            TapeOp::RegOut { dst, reg } => (dst, format!("*regs.add({reg})")),
            TapeOp::MemRead { dst, mem, addr } => (dst, mem_read(mem, &r(addr, d))),
            TapeOp::Wire { dst, src } => (dst, r(src, d)),
            TapeOp::SliceBin {
                dst,
                op,
                src,
                shift,
                mask,
                other,
                w,
                slice_lhs,
            } => {
                let sv = format!("({} >> {shift}) & {mask:#x}", r(src, d));
                let ov = r(other, d);
                let (a, b) = if slice_lhs { (sv, ov) } else { (ov, sv) };
                (dst, bin_expr(op, &a, &b, w))
            }
            TapeOp::BinMux {
                dst,
                op,
                a,
                b,
                w,
                t,
                f,
            } => (
                dst,
                format!(
                    "if {} != 0 {{ {} }} else {{ {} }}",
                    bin_expr(op, &r(a, d), &r(b, d), w),
                    r(t, d),
                    r(f, d)
                ),
            ),
            TapeOp::MuxMux {
                dst,
                sel,
                other,
                inner_sel,
                inner_t,
                inner_f,
                inner_in_true,
            } => (
                dst,
                format!(
                    "if ({} != 0) == {inner_in_true} {{ if {} != 0 {{ {} }} else {{ {} }} }} else {{ {} }}",
                    r(sel, d),
                    r(inner_sel, d),
                    r(inner_t, d),
                    r(inner_f, d),
                    r(other, d)
                ),
            ),
            TapeOp::BitAnd { dst, a, b } => (dst, format!("{} & {}", r(a, d), r(b, d))),
            TapeOp::BitOr { dst, a, b } => (dst, format!("{} | {}", r(a, d), r(b, d))),
            TapeOp::BitXor { dst, a, b } => (dst, format!("{} ^ {}", r(a, d), r(b, d))),
            TapeOp::CmpEq { dst, a, b } => {
                (dst, format!("({} == {}) as u64", r(a, d), r(b, d)))
            }
            TapeOp::NotMask { dst, a, mask } => {
                (dst, format!("!{} & {mask:#x}", r(a, d)))
            }
        };
        if stored[dst as usize] {
            let _ = writeln!(body, "    let t{dst} = {expr}; {} = t{dst};", v(dst));
        } else {
            let _ = writeln!(body, "    let t{dst} = {expr};");
        }
        defined[dst as usize] = true;
    }

    // The hash covers the settle body plus the slab length, so two tapes
    // that happen to emit the same ops over different slab sizes (never
    // expected, but cheap to defend against) still get distinct ids.
    let mut hashed = body.clone();
    let _ = write!(hashed, "n_values={n_values}");
    let sig = fnv1a(hashed.as_bytes());

    let mut source = String::with_capacity(body.len() + 1024);
    source.push_str(
        "// Generated by strober-sim codegen; do not edit.\n\
         #![allow(unused_variables, unused_parens, clippy::all)]\n\
         \n\
         /// One memory array, passed as a raw span across the C ABI.\n\
         #[repr(C)]\n\
         pub struct MemSpan {\n\
         \x20   pub ptr: *const u64,\n\
         \x20   pub len: usize,\n\
         }\n\
         \n\
         /// # Safety\n\
         /// `v` must point at the value slab this tape was compiled for\n\
         /// (length checked via `strober_jit_sig` at attach time); `inp`,\n\
         /// `regs` and `mems` must match the design's port/register/memory\n\
         /// counts.\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn strober_jit_settle(\n\
         \x20   v: *mut u64,\n\
         \x20   inp: *const u64,\n\
         \x20   regs: *const u64,\n\
         \x20   mems: *const MemSpan,\n\
         ) {\n",
    );
    source.push_str(&body);
    source.push_str("}\n\n#[no_mangle]\npub extern \"C\" fn strober_jit_sig() -> u64 {\n");
    let _ = writeln!(source, "    {sig:#x}");
    source.push_str("}\n");

    JitSource { source, sig }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_rtl::Width;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    #[test]
    fn bin_expr_matches_eval_on_edge_cases() {
        // Evaluate the emitted expression semantics by hand for the arms
        // with data-dependent control flow.
        let w8 = w(8);
        // DivU by zero yields the all-ones mask.
        assert_eq!(BinOp::DivU.eval(7, 0, w8), 0xff);
        // Shl past the width yields zero.
        assert_eq!(BinOp::Shl.eval(1, 8, w8), 0);
        // Sra clamps the shift and sign-extends.
        assert_eq!(BinOp::Sra.eval(0x80, 63, w8), 0xff);
        // The emitted strings bake those constants in.
        assert!(bin_expr(BinOp::DivU, "x", "y", w8).contains("0xff"));
        assert!(bin_expr(BinOp::Shl, "x", "y", w8).contains("s >= 8"));
        assert!(bin_expr(BinOp::Sra, "x", "y", w8).contains(".min(7)"));
    }

    #[test]
    fn emitted_source_exports_entry_points_and_stable_sig() {
        let tape = vec![
            TapeOp::Input { dst: 1, port: 0 },
            TapeOp::Binary {
                op: BinOp::Add,
                dst: 2,
                a: 1,
                b: 0,
                w: w(8),
            },
        ];
        let all = [true; 3];
        let one = emit(&tape, 3, &all);
        let two = emit(&tape, 3, &all);
        assert_eq!(one.sig, two.sig, "emission must be deterministic");
        assert!(one.source.contains("strober_jit_settle"));
        assert!(one.source.contains("strober_jit_sig"));
        assert!(one.source.contains(&format!("{:#x}", one.sig)));
        // Different slab length => different identity.
        assert_ne!(emit(&tape, 4, &[true; 4]).sig, one.sig);
        // A different stored-slot set changes the emitted body, hence
        // the identity: consumers must never attach across the two.
        assert_ne!(emit(&tape, 3, &[true, true, false]).sig, one.sig);
    }

    #[test]
    fn unstored_slots_keep_locals_only() {
        let tape = vec![
            TapeOp::Input { dst: 1, port: 0 },
            TapeOp::Binary {
                op: BinOp::Add,
                dst: 2,
                a: 1,
                b: 1,
                w: w(8),
            },
        ];
        let src = emit(&tape, 3, &[false, false, true]).source;
        // Slot 1 is internal: a local binding but no slab store.
        assert!(src.contains("let t1 ="));
        assert!(!src.contains("*v.add(1) = t1"));
        // Slot 2 is observed: local plus store.
        assert!(src.contains("*v.add(2) = t2"));
        // The consumer of slot 1 reads the local, not the slab.
        assert!(src.contains("(t1).wrapping_add(t1)"));
    }
}

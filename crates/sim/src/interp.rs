//! A deliberately naive tree-walking reference interpreter.
//!
//! Used for differential testing of the compiled-tape [`crate::Simulator`]
//! and as the "unoptimised software simulator" baseline in the ablation
//! benchmarks (DESIGN.md §4). It re-walks the expression tree of every
//! register input, memory port and output each cycle, memoising per cycle.
//!
//! This is the slowest rung of the engine ladder and the trust anchor for
//! the faster ones: the optimized tape (DESIGN.md §11) and the partitioned
//! multi-threaded settle ([`crate::partition`], selected via
//! [`crate::Simulator::set_threads`]) are both held bit-identical to this
//! interpreter by the golden equivalence suites and by the fuzz oracle
//! matrix, which uses it as the reference lane for every other engine.

use crate::engine::Engine;
use crate::error::SimError;
use crate::state::SimState;
use std::collections::HashMap;
use strober_rtl::{Design, Node, NodeId, PortId};

/// A tree-walking interpreter with identical semantics to
/// [`crate::Simulator`].
#[derive(Debug, Clone)]
pub struct NaiveInterpreter {
    design: Design,
    regs: Vec<u64>,
    mems: Vec<Vec<u64>>,
    inputs: HashMap<String, u64>,
    cycle: u64,
}

impl NaiveInterpreter {
    /// Creates an interpreter for a validated design.
    ///
    /// # Errors
    ///
    /// Returns the design's validation error if it is malformed.
    pub fn new(design: &Design) -> Result<Self, strober_rtl::RtlError> {
        design.validate()?;
        let regs = design.registers().map(|(_, r)| r.init()).collect();
        let mems = design
            .memories()
            .map(|(_, m)| {
                let mut v = m.init().to_vec();
                v.resize(m.depth(), 0);
                v
            })
            .collect();
        Ok(NaiveInterpreter {
            design: design.clone(),
            regs,
            mems,
            inputs: HashMap::new(),
            cycle: 0,
        })
    }

    /// Sets a top-level input by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown port.
    pub fn poke_by_name(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        if self.design.port_by_name(name).is_none() {
            return Err(SimError::UnknownName {
                kind: "input port",
                name: name.to_owned(),
            });
        }
        self.inputs.insert(name.to_owned(), value);
        Ok(())
    }

    fn eval(&self, id: NodeId, memo: &mut HashMap<NodeId, u64>) -> u64 {
        if let Some(&v) = memo.get(&id) {
            return v;
        }
        let w = self.design.width(id);
        let v = match *self.design.node(id) {
            Node::Input(p) => {
                let port = &self.design.ports()[p.index()];
                self.inputs.get(port.name()).copied().unwrap_or(0)
            }
            Node::Const(c) => c,
            Node::Unary { op, a } => op.eval(self.eval(a, memo), self.design.width(a)),
            Node::Binary { op, a, b } => {
                op.eval(self.eval(a, memo), self.eval(b, memo), self.design.width(a))
            }
            Node::Mux { sel, t, f } => {
                if self.eval(sel, memo) != 0 {
                    self.eval(t, memo)
                } else {
                    self.eval(f, memo)
                }
            }
            Node::Slice { a, hi, lo } => {
                let mask = strober_rtl::Width::new(hi - lo + 1)
                    .expect("validated")
                    .mask();
                (self.eval(a, memo) >> lo) & mask
            }
            Node::Cat { hi, lo } => {
                let shift = self.design.width(lo).bits();
                (self.eval(hi, memo) << shift) | self.eval(lo, memo)
            }
            Node::RegOut(r) => self.regs[r.index()],
            Node::MemRead { mem, port } => {
                let addr_node = self.design.memory(mem).read_ports()[port].addr();
                let addr = self.eval(addr_node, memo) as usize;
                self.mems[mem.index()].get(addr).copied().unwrap_or(0)
            }
            Node::Wire(wid) => {
                let src = self.design.wire_driver(wid).expect("validated");
                self.eval(src, memo)
            }
        };
        let v = v & w.mask();
        memo.insert(id, v);
        v
    }

    /// Advances one clock cycle.
    pub fn step(&mut self) {
        let mut memo = HashMap::new();
        let reg_info: Vec<(NodeId, Option<NodeId>, u64)> = self
            .design
            .registers()
            .map(|(_, r)| (r.next().expect("validated"), r.enable(), r.width().mask()))
            .collect();
        let mut new_regs = Vec::with_capacity(self.regs.len());
        for (i, (next, enable, mask)) in reg_info.iter().enumerate() {
            let en = enable.is_none_or(|e| self.eval(e, &mut memo) != 0);
            new_regs.push(if en {
                self.eval(*next, &mut memo) & mask
            } else {
                self.regs[i]
            });
        }
        let mut writes = Vec::new();
        for (mid, m) in self.design.memories() {
            for wp in m.write_ports() {
                writes.push((mid, wp.addr(), wp.data(), wp.enable()));
            }
        }
        for (mid, addr, data, enable) in writes {
            if self.eval(enable, &mut memo) != 0 {
                let a = self.eval(addr, &mut memo) as usize;
                let d = self.eval(data, &mut memo);
                if let Some(slot) = self.mems[mid.index()].get_mut(a) {
                    *slot = d;
                }
            }
        }
        self.regs = new_regs;
        self.cycle += 1;
    }

    /// Advances `n` cycles.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Reads a named output.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownName`] for an unknown output.
    pub fn peek_output(&mut self, name: &str) -> Result<u64, SimError> {
        let id = self
            .design
            .output_by_name(name)
            .ok_or_else(|| SimError::UnknownName {
                kind: "output",
                name: name.to_owned(),
            })?;
        let mut memo = HashMap::new();
        Ok(self.eval(id, &mut memo))
    }

    /// The current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Captures the complete architectural state.
    pub fn state(&self) -> SimState {
        SimState {
            regs: self.regs.clone(),
            mems: self.mems.clone(),
            cycle: self.cycle,
        }
    }

    /// Reads any node's value with a fresh per-call memo.
    pub fn peek(&self, node: NodeId) -> u64 {
        self.eval(node, &mut HashMap::new())
    }
}

impl Engine for NaiveInterpreter {
    fn poke(&mut self, port: PortId, value: u64) {
        let p = &self.design.ports()[port.index()];
        let masked = value & p.width().mask();
        let name = p.name().to_owned();
        self.inputs.insert(name, masked);
    }

    fn peek(&mut self, node: NodeId) -> u64 {
        NaiveInterpreter::peek(self, node)
    }

    /// A no-op: the interpreter evaluates on demand from a fresh memo at
    /// every read, so there is no settled cache to build.
    fn settle(&mut self) {}

    fn clock_edge(&mut self) {
        self.step();
    }

    fn state(&self) -> SimState {
        NaiveInterpreter::state(self)
    }

    fn engine_name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;

    #[test]
    fn naive_matches_counter_semantics() {
        let ctx = Ctx::new("counter");
        let en = ctx.input("en", Width::BIT);
        let count = ctx.reg("count", Width::new(8).unwrap(), 0);
        count.set_en(&count.out().add_lit(3), &en);
        ctx.output("value", &count.out());
        let design = ctx.finish().unwrap();

        let mut interp = NaiveInterpreter::new(&design).unwrap();
        interp.poke_by_name("en", 1).unwrap();
        interp.step_n(4);
        assert_eq!(interp.peek_output("value").unwrap(), 12);
        assert_eq!(interp.cycle(), 4);
    }
}

//! Fast cycle-accurate RTL simulation.
//!
//! This crate provides the execution substrate that plays the FPGA's role in
//! the Strober flow (§IV-B of the paper): a fast, cycle-exact simulator for
//! any [`strober_rtl::Design`]. Where the paper maps the FAME1-transformed
//! design onto FPGA fabric, we compile the design's combinational graph once
//! into a flat *op tape* — a topologically ordered array of pre-resolved
//! operations — and evaluate it per cycle. An optimizing pass pipeline
//! (constant folding, copy propagation, dead-code elimination, peephole
//! fusion and dense slot renumbering — see [`TapeOptions`] and DESIGN.md
//! §11) shrinks the tape before the first step. The tape simulator is
//! orders of magnitude faster than gate-level simulation of the same
//! design, which is precisely the speed differential the sample-based
//! methodology exploits.
//!
//! Four engines are provided:
//!
//! * [`Simulator`] — the compiled-tape engine used everywhere.
//! * [`Simulator::set_threads`] with `threads > 1` switches the same
//!   simulator to the partitioned multi-threaded settle engine: the tape
//!   is cut into balanced partitions (with a min-cut refinement pass on
//!   cross-partition edges) and executed on a persistent worker pool with
//!   phase barriers, bit-identical to the sequential walk. See
//!   [`PartitionStats`] and DESIGN.md §14.
//! * [`Simulator::attach_jit`] replaces the settle loop with native code
//!   compiled from the tape by `strober-jit`: [`Simulator::jit_source`]
//!   lowers the tape to one straight-line Rust function (constants,
//!   masks and slot indices baked in, no per-op dispatch), and any
//!   [`NativeSettle`] whose signature matches can be plugged in. See
//!   DESIGN.md §16.
//! * [`NaiveInterpreter`] — a deliberately simple tree-walking reference
//!   engine, used for differential testing and as the slow baseline in the
//!   ablation benchmarks.
//!
//! All engines implement identical semantics — combinational settle, then
//! clock edge (registers capture, memory writes commit) — made explicit
//! by the [`Engine`] trait.
//!
//! The gate-level side of the flow mirrors this architecture one layer
//! down: `strober-gatesim` compiles the synthesized netlist into its own
//! flat op tape of two-input cells and interprets it scalar (`GateSim`)
//! or 64 samples at a time in the bit-lanes of a `u64` per net
//! (`BatchSim`). `DESIGN.md` §9 documents the whole simulator stack and
//! its per-cycle complexity.
//!
//! # Examples
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//! use strober_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Ctx::new("counter");
//! let w8 = Width::new(8)?;
//! let en = ctx.input("en", Width::BIT);
//! let count = ctx.reg("count", w8, 0);
//! count.set_en(&count.out().add_lit(1), &en);
//! ctx.output("value", &count.out());
//! let design = ctx.finish()?;
//!
//! let mut sim = Simulator::new(&design)?;
//! sim.poke_by_name("en", 1)?;
//! sim.step_n(5);
//! assert_eq!(sim.peek_output("value")?, 5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod codegen;
mod engine;
mod error;
mod interp;
mod opt;
mod partition;
pub mod rand_design;
mod state;
mod tape;
mod vcd;

pub use codegen::JitSource;
pub use engine::{Engine, NativeSettle};
pub use error::SimError;
pub use interp::NaiveInterpreter;
pub use opt::{PassStats, TapeOptions};
pub use partition::PartitionStats;
pub use state::SimState;
// The id types the peek/poke/resolve APIs traffic in, re-exported so
// callers holding pre-resolved handles need not depend on `strober-rtl`.
pub use strober_rtl::{NodeId, PortId};
pub use tape::Simulator;
pub use vcd::VcdTrace;

//! The partitioned parallel tape engine.
//!
//! The optimized op tape ([`crate::Simulator`]'s evaluation format, built
//! by [`crate::opt`]) is a flat, topologically ordered array of ops with
//! dense value slots — exactly the representation that makes a parallel
//! cut cheap to compute and cheap to execute. This module cuts that tape
//! into `N` balanced partitions and evaluates them on a persistent worker
//! pool, synchronizing with barriers only where a value crosses a
//! partition boundary, so a settle produces values **bit-identical** to
//! the sequential interpretation loop. DESIGN.md §14 documents the
//! algorithm and its invariants; the CLI knob is `--hub-threads N` and
//! the platform knob is `PlatformConfig::hub_threads`.
//!
//! # Planning
//!
//! [`plan`] runs once per engine, in three steps:
//!
//! 1. **Dependency graph.** Every op names its operand *slots*; mapping
//!    each slot back to the op that writes it (constant slots have no
//!    producer) yields the slot-dependency DAG, plus ASAP levels for the
//!    stats.
//! 2. **Balanced partitioning with min-cut refinement.** A greedy
//!    tape-order sweep assigns each op to the partition owning most of
//!    its producers (capped for balance), then a few
//!    Kernighan–Lin-style refinement sweeps move ops to the neighbouring
//!    partition with the highest edge gain, shrinking the cross-partition
//!    cut.
//! 3. **Phase schedule.** Ops in one partition execute sequentially in
//!    tape order, so intra-partition edges cost nothing; only
//!    cross-partition edges force a barrier. An op's *phase* is the
//!    longest chain of cross-partition edges below it, and the number of
//!    barriers per settle equals the number of phases — which the min-cut
//!    refinement directly reduces.
//!
//! # Execution
//!
//! [`Engine`] pins `N - 1` persistent worker threads (the caller's thread
//! is worker 0). Each settle publishes raw pointers to the simulator's
//! `values`/`inputs`/`regs`/`mems` arrays under a mutex, bumps an epoch,
//! and all workers sweep their per-phase chunks with a spin-then-yield
//! barrier between phases. Register capture and memory-write commit stay
//! on the caller's thread after the final barrier — state only changes at
//! the synchronization point, exactly as in the sequential engine.
//!
//! Safety rests on three invariants, each enforced by construction:
//! every tape op writes a distinct `values` slot (disjoint writes); an
//! op's operand slots are written in an earlier phase or earlier in the
//! same worker's chunk (ordered reads); and `inputs`/`regs`/`mems` are
//! frozen for the duration of a settle (shared reads).

use crate::tape::TapeOp;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Slot-producer sentinel: the slot is a constant (or otherwise
/// pre-filled) and no tape op writes it.
const NO_PRODUCER: u32 = u32::MAX;

/// How often (in settles) accumulated worker telemetry is flushed into
/// the probe registry.
const FLUSH_EVERY: u64 = 1024;

/// What the partitioner did to one tape, exposed via
/// [`crate::Simulator::partition_stats`] and mirrored into
/// `strober.sim.partition.*` probe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Worker count the tape was cut for (including the caller's thread).
    pub workers: usize,
    /// Tape ops scheduled.
    pub ops: usize,
    /// ASAP levels of the slot-dependency graph (longest op chain).
    pub levels: usize,
    /// Barriers per settle after scheduling (longest chain of
    /// cross-partition edges, plus one).
    pub phases: usize,
    /// Cross-partition edges after the greedy initial assignment.
    pub cut_edges_initial: usize,
    /// Cross-partition edges after min-cut refinement.
    pub cut_edges: usize,
    /// Ops in the heaviest partition.
    pub max_partition_ops: usize,
    /// Ops in the lightest partition.
    pub min_partition_ops: usize,
}

/// The compiled schedule: per worker, per phase, the ops to evaluate (in
/// tape order).
pub(crate) struct PartitionPlan {
    /// `chunks[worker][phase]` — owned copies of the tape ops.
    pub(crate) chunks: Vec<Vec<Vec<TapeOp>>>,
    pub(crate) stats: PartitionStats,
}

/// The `values` slots an op reads, appended to `out`.
pub(crate) fn operands(op: &TapeOp, out: &mut Vec<u32>) {
    match *op {
        TapeOp::Input { .. } | TapeOp::RegOut { .. } => {}
        TapeOp::Unary { a, .. }
        | TapeOp::Slice { a, .. }
        | TapeOp::NotMask { a, .. }
        | TapeOp::MemRead { addr: a, .. }
        | TapeOp::Wire { src: a, .. } => out.push(a),
        TapeOp::Binary { a, b, .. }
        | TapeOp::BitAnd { a, b, .. }
        | TapeOp::BitOr { a, b, .. }
        | TapeOp::BitXor { a, b, .. }
        | TapeOp::CmpEq { a, b, .. } => {
            out.push(a);
            out.push(b);
        }
        TapeOp::Mux { sel, t, f, .. } => {
            out.push(sel);
            out.push(t);
            out.push(f);
        }
        TapeOp::Cat { hi, lo, .. } => {
            out.push(hi);
            out.push(lo);
        }
        TapeOp::SliceBin { src, other, .. } => {
            out.push(src);
            out.push(other);
        }
        TapeOp::BinMux { a, b, t, f, .. } => {
            out.push(a);
            out.push(b);
            out.push(t);
            out.push(f);
        }
        TapeOp::MuxMux {
            sel,
            other,
            inner_sel,
            inner_t,
            inner_f,
            ..
        } => {
            out.push(sel);
            out.push(other);
            out.push(inner_sel);
            out.push(inner_t);
            out.push(inner_f);
        }
    }
}

/// The `values` slot an op writes.
pub(crate) fn dst(op: &TapeOp) -> u32 {
    match *op {
        TapeOp::Input { dst, .. }
        | TapeOp::Unary { dst, .. }
        | TapeOp::Binary { dst, .. }
        | TapeOp::Mux { dst, .. }
        | TapeOp::Slice { dst, .. }
        | TapeOp::Cat { dst, .. }
        | TapeOp::RegOut { dst, .. }
        | TapeOp::MemRead { dst, .. }
        | TapeOp::Wire { dst, .. }
        | TapeOp::SliceBin { dst, .. }
        | TapeOp::BinMux { dst, .. }
        | TapeOp::MuxMux { dst, .. }
        | TapeOp::BitAnd { dst, .. }
        | TapeOp::BitOr { dst, .. }
        | TapeOp::BitXor { dst, .. }
        | TapeOp::CmpEq { dst, .. }
        | TapeOp::NotMask { dst, .. } => dst,
    }
}

/// Cuts a tape into a per-worker, per-phase schedule. `n_values` is the
/// size of the simulator's `values` array (slot namespace).
pub(crate) fn plan(tape: &[TapeOp], n_values: usize, workers: usize) -> PartitionPlan {
    let workers = workers.max(1);
    let n = tape.len();

    // -- 1. slot-dependency graph --------------------------------------
    let mut producer = vec![NO_PRODUCER; n_values];
    for (i, op) in tape.iter().enumerate() {
        producer[dst(op) as usize] = i as u32;
    }
    let mut deps: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut buf = Vec::new();
    for op in tape {
        buf.clear();
        operands(op, &mut buf);
        let mut d: Vec<u32> = buf
            .iter()
            .filter_map(|&s| {
                let p = producer[s as usize];
                (p != NO_PRODUCER).then_some(p)
            })
            .collect();
        d.sort_unstable();
        d.dedup();
        deps.push(d);
    }
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, d) in deps.iter().enumerate() {
        for &p in d {
            consumers[p as usize].push(i as u32);
        }
    }
    let mut level = vec![0u32; n];
    for i in 0..n {
        level[i] = deps[i]
            .iter()
            .map(|&p| level[p as usize] + 1)
            .max()
            .unwrap_or(0);
    }
    let levels = level.iter().max().map_or(0, |&m| m as usize + 1);

    // -- 2. balanced partitioning --------------------------------------
    // Weight cap: perfect balance plus ~12.5% slack, so affinity moves
    // have room without letting one partition swallow the tape.
    let cap = n.div_ceil(workers) + n / (8 * workers) + 1;
    let mut part = vec![0u32; n];
    let mut weight = vec![0usize; workers];
    let mut votes = vec![0usize; workers];
    for i in 0..n {
        votes.iter_mut().for_each(|v| *v = 0);
        for &p in &deps[i] {
            votes[part[p as usize] as usize] += 1;
        }
        let mut best = usize::MAX;
        for w in 0..workers {
            if weight[w] >= cap {
                continue;
            }
            if best == usize::MAX
                || votes[w] > votes[best]
                || (votes[w] == votes[best] && weight[w] < weight[best])
            {
                best = w;
            }
        }
        if best == usize::MAX {
            // cap * workers >= n keeps this unreachable, but stay total.
            best = (0..workers).min_by_key(|&w| weight[w]).unwrap_or(0);
        }
        part[i] = best as u32;
        weight[best] += 1;
    }

    let cut = |part: &[u32]| -> usize {
        deps.iter()
            .enumerate()
            .map(|(i, d)| d.iter().filter(|&&p| part[p as usize] != part[i]).count())
            .sum()
    };
    let cut_edges_initial = cut(&part);

    // Min-cut refinement: move an op to the partition holding most of
    // its neighbours (producers + consumers) when that strictly reduces
    // the cut and keeps the balance cap. Alternating-direction sweeps to
    // a fixpoint (bounded).
    for sweep in 0..4 {
        let mut moved = false;
        let order: Vec<usize> = if sweep % 2 == 0 {
            (0..n).collect()
        } else {
            (0..n).rev().collect()
        };
        for i in order {
            let cur = part[i] as usize;
            votes.iter_mut().for_each(|v| *v = 0);
            for &p in &deps[i] {
                votes[part[p as usize] as usize] += 1;
            }
            for &c in &consumers[i] {
                votes[part[c as usize] as usize] += 1;
            }
            let mut best = cur;
            for w in 0..workers {
                if w == cur || weight[w] >= cap {
                    continue;
                }
                if votes[w] > votes[best] {
                    best = w;
                }
            }
            if best != cur && votes[best] > votes[cur] {
                weight[cur] -= 1;
                weight[best] += 1;
                part[i] = best as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let cut_edges = cut(&part);

    // -- 3. phase schedule ---------------------------------------------
    // Intra-partition edges are free (sequential tape order inside a
    // chunk); each cross-partition edge adds one barrier of separation.
    let mut phase = vec![0u32; n];
    for i in 0..n {
        phase[i] = deps[i]
            .iter()
            .map(|&p| {
                let p = p as usize;
                phase[p] + u32::from(part[p] != part[i])
            })
            .max()
            .unwrap_or(0);
    }
    let phases = phase.iter().max().map_or(0, |&m| m as usize + 1);

    let mut chunks = vec![vec![Vec::new(); phases]; workers];
    for i in 0..n {
        chunks[part[i] as usize][phase[i] as usize].push(tape[i]);
    }

    let stats = PartitionStats {
        workers,
        ops: n,
        levels,
        phases,
        cut_edges_initial,
        cut_edges,
        max_partition_ops: weight.iter().copied().max().unwrap_or(0),
        min_partition_ops: weight.iter().copied().min().unwrap_or(0),
    };
    PartitionPlan { chunks, stats }
}

/// Raw pointers into the simulator's arrays, valid for exactly one
/// settle. Published under the epoch mutex; copied by each worker while
/// holding that mutex.
#[derive(Clone, Copy)]
struct Ctx {
    values: *mut u64,
    inputs: *const u64,
    regs: *const u64,
    mems: *const Vec<u64>,
    /// Whether workers should time busy/wait intervals this settle.
    timed: bool,
}

impl Ctx {
    const fn null() -> Ctx {
        Ctx {
            values: std::ptr::null_mut(),
            inputs: std::ptr::null(),
            regs: std::ptr::null(),
            mems: std::ptr::null(),
            timed: false,
        }
    }
}

/// Evaluates one tape op against the shared arrays.
///
/// # Safety
///
/// `ctx`'s pointers must be valid for the whole settle; `op` must write a
/// slot no other concurrently-running op writes, and read only slots
/// settled in an earlier phase or earlier in this worker's chunk.
unsafe fn exec(op: &TapeOp, ctx: &Ctx) {
    let v = ctx.values;
    macro_rules! val {
        ($i:expr) => {
            *v.add($i as usize)
        };
    }
    match *op {
        TapeOp::Input { dst, port } => val!(dst) = *ctx.inputs.add(port as usize),
        TapeOp::Unary { dst, op, a, w } => val!(dst) = op.eval(val!(a), w),
        TapeOp::Binary { dst, op, a, b, w } => val!(dst) = op.eval(val!(a), val!(b), w),
        TapeOp::Mux { dst, sel, t, f } => {
            val!(dst) = if val!(sel) != 0 { val!(t) } else { val!(f) }
        }
        TapeOp::Slice {
            dst,
            a,
            shift,
            mask,
        } => val!(dst) = (val!(a) >> shift) & mask,
        TapeOp::Cat { dst, hi, lo, shift } => val!(dst) = (val!(hi) << shift) | val!(lo),
        TapeOp::RegOut { dst, reg } => val!(dst) = *ctx.regs.add(reg as usize),
        TapeOp::MemRead { dst, mem, addr } => {
            let m = &*ctx.mems.add(mem as usize);
            let a = val!(addr) as usize;
            val!(dst) = m.get(a).copied().unwrap_or(0);
        }
        TapeOp::Wire { dst, src } => val!(dst) = val!(src),
        TapeOp::SliceBin {
            dst,
            op,
            src,
            shift,
            mask,
            other,
            w,
            slice_lhs,
        } => {
            let sv = (val!(src) >> shift) & mask;
            let ov = val!(other);
            let (a, b) = if slice_lhs { (sv, ov) } else { (ov, sv) };
            val!(dst) = op.eval(a, b, w);
        }
        TapeOp::BinMux {
            dst,
            op,
            a,
            b,
            w,
            t,
            f,
        } => {
            val!(dst) = if op.eval(val!(a), val!(b), w) != 0 {
                val!(t)
            } else {
                val!(f)
            }
        }
        TapeOp::MuxMux {
            dst,
            sel,
            other,
            inner_sel,
            inner_t,
            inner_f,
            inner_in_true,
        } => {
            let take_inner = (val!(sel) != 0) == inner_in_true;
            val!(dst) = if take_inner {
                if val!(inner_sel) != 0 {
                    val!(inner_t)
                } else {
                    val!(inner_f)
                }
            } else {
                val!(other)
            };
        }
        TapeOp::BitAnd { dst, a, b } => val!(dst) = val!(a) & val!(b),
        TapeOp::BitOr { dst, a, b } => val!(dst) = val!(a) | val!(b),
        TapeOp::BitXor { dst, a, b } => val!(dst) = val!(a) ^ val!(b),
        TapeOp::CmpEq { dst, a, b } => val!(dst) = u64::from(val!(a) == val!(b)),
        TapeOp::NotMask { dst, a, mask } => val!(dst) = !val!(a) & mask,
    }
}

/// A sense-reversing barrier that spins briefly and then yields, so it
/// stays cheap when workers arrive together and fair when the machine
/// has fewer cores than workers.
struct PhaseBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl PhaseBarrier {
    fn new(total: usize) -> PhaseBarrier {
        PhaseBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.saturating_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// State shared between the caller's thread and the persistent workers.
struct Shared {
    /// `chunks[worker][phase]` — the schedule.
    chunks: Vec<Vec<Vec<TapeOp>>>,
    phases: usize,
    /// Settles started so far; workers sleep on the condvar until it
    /// moves. `u64::MAX` sentinel is never reached in practice.
    epoch: Mutex<u64>,
    start: Condvar,
    shutdown: AtomicBool,
    barrier: PhaseBarrier,
    /// The per-settle pointer bundle. Written by the caller under the
    /// `epoch` mutex, copied by workers under the same mutex.
    ctx: UnsafeCell<Ctx>,
    /// Per-worker accumulated op-evaluation time, flushed to the probe
    /// registry every [`FLUSH_EVERY`] settles.
    busy_ns: Vec<AtomicU64>,
    /// Per-worker accumulated barrier-wait time.
    wait_ns: Vec<AtomicU64>,
    /// Barrier waits sampled into `wait_ns` (for the histogram mean).
    wait_samples: AtomicU64,
}

// SAFETY: `ctx` is only written by the (single) caller of
// `Engine::settle` while holding the `epoch` mutex, and only read by
// workers holding the same mutex; the raw pointers inside it are used
// under the disjoint-writes/ordered-reads discipline documented on
// `exec`. Everything else is `Sync` by construction.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

impl Shared {
    /// Runs one worker's chunks for every phase of one settle.
    fn run_phases(&self, me: usize, ctx: &Ctx) {
        let chunks = &self.chunks[me];
        for chunk in chunks.iter().take(self.phases) {
            if ctx.timed {
                let t0 = Instant::now();
                for op in chunk {
                    // SAFETY: see `exec` — the plan guarantees disjoint
                    // writes and phase-ordered reads; the caller keeps
                    // the arrays alive and unmoved for the whole settle.
                    unsafe { exec(op, ctx) };
                }
                let busy = t0.elapsed().as_nanos() as u64;
                let t1 = Instant::now();
                self.barrier.wait();
                let wait = t1.elapsed().as_nanos() as u64;
                self.busy_ns[me].fetch_add(busy, Ordering::Relaxed);
                self.wait_ns[me].fetch_add(wait, Ordering::Relaxed);
                self.wait_samples.fetch_add(1, Ordering::Relaxed);
            } else {
                for op in chunk {
                    // SAFETY: as above.
                    unsafe { exec(op, ctx) };
                }
                self.barrier.wait();
            }
        }
    }
}

fn worker_main(shared: Arc<Shared>, me: usize) {
    let mut seen = 0u64;
    loop {
        let ctx = {
            let mut epoch = shared.epoch.lock().expect("engine epoch mutex");
            while *epoch == seen && !shared.shutdown.load(Ordering::Relaxed) {
                epoch = shared.start.wait(epoch).expect("engine epoch mutex");
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            seen = *epoch;
            // SAFETY: read under the epoch mutex, synchronized with the
            // caller's write (see `Shared`).
            unsafe { *shared.ctx.get() }
        };
        shared.run_phases(me, &ctx);
    }
}

/// A persistent worker pool executing one tape's partition schedule.
///
/// Owned by a [`crate::Simulator`] with `threads > 1`; dropped (and the
/// pool joined) when the simulator is dropped, re-cloned, or re-threaded.
pub(crate) struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    stats: PartitionStats,
    settles: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("stats", &self.stats)
            .field("settles", &self.settles.load(Ordering::Relaxed))
            .finish()
    }
}

impl Engine {
    /// Plans the tape and spawns the worker pool (`workers - 1` threads;
    /// the caller is worker 0).
    pub(crate) fn new(tape: &[TapeOp], n_values: usize, workers: usize) -> Engine {
        let plan = plan(tape, n_values, workers);
        let stats = plan.stats;
        record_partition_stats(&stats);
        let shared = Arc::new(Shared {
            chunks: plan.chunks,
            phases: stats.phases,
            epoch: Mutex::new(0),
            start: Condvar::new(),
            shutdown: AtomicBool::new(false),
            barrier: PhaseBarrier::new(stats.workers),
            ctx: UnsafeCell::new(Ctx::null()),
            busy_ns: (0..stats.workers).map(|_| AtomicU64::new(0)).collect(),
            wait_ns: (0..stats.workers).map(|_| AtomicU64::new(0)).collect(),
            wait_samples: AtomicU64::new(0),
        });
        let handles = if stats.phases == 0 {
            Vec::new()
        } else {
            (1..stats.workers)
                .map(|w| {
                    let shared = shared.clone();
                    std::thread::Builder::new()
                        .name(format!("strober-sim-{w}"))
                        .spawn(move || worker_main(shared, w))
                        .expect("spawn partition worker")
                })
                .collect()
        };
        Engine {
            shared,
            handles,
            stats,
            settles: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> PartitionStats {
        self.stats
    }

    /// Evaluates the whole tape in parallel. Returns with every `values`
    /// slot settled, exactly as the sequential loop would leave them.
    pub(crate) fn settle(
        &self,
        values: &mut [u64],
        inputs: &[u64],
        regs: &[u64],
        mems: &[Vec<u64>],
    ) {
        if self.shared.phases == 0 {
            return;
        }
        let timed = strober_probe::enabled();
        let ctx = Ctx {
            values: values.as_mut_ptr(),
            inputs: inputs.as_ptr(),
            regs: regs.as_ptr(),
            mems: mems.as_ptr(),
            timed,
        };
        {
            let mut epoch = self.shared.epoch.lock().expect("engine epoch mutex");
            // SAFETY: written under the epoch mutex before the epoch
            // moves; workers copy it under the same mutex.
            unsafe { *self.shared.ctx.get() = ctx };
            *epoch += 1;
            self.shared.start.notify_all();
        }
        self.shared.run_phases(0, &ctx);
        // The final phase barrier is the synchronization point: every
        // worker has finished every chunk once it is crossed, so all
        // `values` writes are visible here.
        let settles = self.settles.fetch_add(1, Ordering::Relaxed) + 1;
        if timed && settles.is_multiple_of(FLUSH_EVERY) {
            self.flush_telemetry();
        }
    }

    /// Drains the per-worker busy/wait accumulators into the probe
    /// registry (labeled per worker) and records the mean barrier wait.
    fn flush_telemetry(&self) {
        if !strober_probe::enabled() {
            return;
        }
        let mut total_wait = 0u64;
        for w in 0..self.stats.workers {
            let busy = self.shared.busy_ns[w].swap(0, Ordering::Relaxed);
            let wait = self.shared.wait_ns[w].swap(0, Ordering::Relaxed);
            total_wait += wait;
            let labels = strober_probe::Labels::new().worker(&w.to_string());
            if busy > 0 {
                strober_probe::counter_add_labeled(
                    "strober.sim.partition.worker_busy_ns",
                    &labels,
                    busy,
                );
            }
            if wait > 0 {
                strober_probe::counter_add_labeled(
                    "strober.sim.partition.barrier_wait_ns",
                    &labels,
                    wait,
                );
            }
        }
        let samples = self.shared.wait_samples.swap(0, Ordering::Relaxed);
        if samples > 0 {
            strober_probe::histogram_record(
                "strober.sim.partition.barrier_wait_ns",
                total_wait as f64 / samples as f64,
            );
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        {
            let _epoch = self.shared.epoch.lock().expect("engine epoch mutex");
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.flush_telemetry();
    }
}

/// Mirrors one engine's [`PartitionStats`] into the probe registry, the
/// same way tape pass stats land in `strober.sim.tape.*`.
fn record_partition_stats(stats: &PartitionStats) {
    if !strober_probe::enabled() {
        return;
    }
    strober_probe::histogram_with_bounds(
        "strober.sim.partition.barrier_wait_ns",
        &[100.0, 500.0, 1_000.0, 5_000.0, 25_000.0, 100_000.0],
    );
    strober_probe::counter_add("strober.sim.partition.engines", 1);
    strober_probe::counter_add("strober.sim.partition.workers", stats.workers as u64);
    strober_probe::counter_add("strober.sim.partition.ops", stats.ops as u64);
    strober_probe::counter_add("strober.sim.partition.levels", stats.levels as u64);
    strober_probe::counter_add("strober.sim.partition.phases", stats.phases as u64);
    strober_probe::counter_add("strober.sim.partition.cut_edges", stats.cut_edges as u64);
    strober_probe::counter_add(
        "strober.sim.partition.cut_edges_initial",
        stats.cut_edges_initial as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chain `s0 -> s1 -> ... -> s(n-1)` of unary-free ops expressed as
    /// `Wire`s: maximally serial, so phases collapse to intra-partition
    /// sequencing when the partitioner keeps the chain together.
    fn chain(n: u32) -> Vec<TapeOp> {
        (1..=n)
            .map(|i| TapeOp::Wire { dst: i, src: i - 1 })
            .collect()
    }

    /// `n` independent ops reading slot 0: a single level.
    fn flat(n: u32) -> Vec<TapeOp> {
        (1..=n)
            .map(|i| TapeOp::NotMask {
                dst: i,
                a: 0,
                mask: u64::MAX,
            })
            .collect()
    }

    fn chunk_ops(plan: &PartitionPlan) -> usize {
        plan.chunks
            .iter()
            .flat_map(|w| w.iter())
            .map(|c| c.len())
            .sum()
    }

    #[test]
    fn empty_tape_plans_to_zero_phases() {
        let p = plan(&[], 4, 4);
        assert_eq!(p.stats.ops, 0);
        assert_eq!(p.stats.phases, 0);
        assert_eq!(p.stats.levels, 0);
        assert_eq!(p.stats.cut_edges, 0);
        assert_eq!(chunk_ops(&p), 0);
    }

    #[test]
    fn every_op_is_scheduled_exactly_once() {
        for workers in [1, 2, 3, 7] {
            let tape = chain(40);
            let p = plan(&tape, 41, workers);
            assert_eq!(chunk_ops(&p), 40, "workers={workers}");
            assert_eq!(p.stats.workers, workers);
        }
    }

    #[test]
    fn serial_chain_splits_into_contiguous_blocks() {
        // A pure dependency chain has no parallelism; the balance cap
        // splits it into contiguous blocks, and every block boundary is
        // exactly one cut edge and one extra phase.
        let tape = chain(32);
        let p = plan(&tape, 33, 4);
        assert_eq!(p.stats.levels, 32);
        assert_eq!(p.stats.phases, p.stats.cut_edges + 1);
        assert!(p.stats.cut_edges < 4, "stats: {:?}", p.stats);
    }

    #[test]
    fn short_chain_is_a_single_partition() {
        // Below the balance cap, affinity keeps the whole chain in one
        // partition: no cut edges, one phase.
        let tape = chain(2);
        let p = plan(&tape, 3, 4);
        assert_eq!(p.stats.cut_edges, 0);
        assert_eq!(p.stats.phases, 1);
        assert_eq!(p.stats.max_partition_ops, 2);
    }

    #[test]
    fn more_workers_than_ops_leaves_partitions_empty() {
        let tape = flat(3);
        let p = plan(&tape, 4, 7);
        assert_eq!(chunk_ops(&p), 3);
        assert_eq!(p.stats.min_partition_ops, 0);
        assert_eq!(p.stats.phases, 1);
    }

    #[test]
    fn single_level_tape_has_one_phase_and_balances() {
        let tape = flat(64);
        let p = plan(&tape, 65, 4);
        assert_eq!(p.stats.levels, 1);
        assert_eq!(p.stats.phases, 1);
        assert_eq!(p.stats.cut_edges, 0);
        assert!(p.stats.max_partition_ops <= 64 / 4 + 64 / 32 + 1);
        assert!(p.stats.min_partition_ops >= 1);
    }

    #[test]
    fn single_worker_is_one_partition_with_no_cuts() {
        let tape = flat(10);
        let p = plan(&tape, 11, 1);
        assert_eq!(p.stats.workers, 1);
        assert_eq!(p.stats.cut_edges, 0);
        assert_eq!(p.stats.phases, 1);
        assert_eq!(p.stats.max_partition_ops, 10);
    }

    #[test]
    fn phases_respect_cross_partition_dependencies() {
        // Two wide layers joined by a reduction: whatever the cut, every
        // dependency must resolve to an earlier phase or an earlier slot
        // in the same worker's same-phase chunk (tape order).
        let mut tape: Vec<TapeOp> = (1..=16u32)
            .map(|i| TapeOp::NotMask {
                dst: i,
                a: 0,
                mask: u64::MAX,
            })
            .collect();
        for i in 0..8u32 {
            tape.push(TapeOp::BitXor {
                dst: 17 + i,
                a: 1 + 2 * i,
                b: 2 + 2 * i,
            });
        }
        let p = plan(&tape, 25, 3);
        assert_eq!(chunk_ops(&p), 24);
        // Reconstruct (phase, worker, index-in-chunk) per dst slot and
        // check the scheduling invariant directly.
        let mut where_of = std::collections::HashMap::new();
        for (w, phases) in p.chunks.iter().enumerate() {
            for (ph, chunk) in phases.iter().enumerate() {
                for (k, op) in chunk.iter().enumerate() {
                    where_of.insert(dst(op), (ph, w, k));
                }
            }
        }
        let mut buf = Vec::new();
        for phases in &p.chunks {
            for chunk in phases {
                for op in chunk {
                    let &(ph, w, k) = &where_of[&dst(op)];
                    buf.clear();
                    operands(op, &mut buf);
                    for &s in &buf {
                        if let Some(&(dph, dw, dk)) = where_of.get(&s) {
                            assert!(
                                dph < ph || (dph == ph && dw == w && dk < k),
                                "op at phase {ph} worker {w} reads slot {s} \
                                 produced at phase {dph} worker {dw}"
                            );
                        }
                    }
                }
            }
        }
    }
}

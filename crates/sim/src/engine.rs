//! The engine interface shared by every simulator variant.
//!
//! All engines in this crate — the tree-walking [`NaiveInterpreter`],
//! the sequential compiled tape, the partitioned multi-threaded settle
//! and the JIT-compiled native settle — implement identical semantics:
//! combinational *settle*, then *clock edge* (registers capture, memory
//! writes commit). The [`Engine`] trait makes that implicit contract
//! explicit so callers can select an engine dynamically and benchmark
//! rows can be labeled by variant, and [`NativeSettle`] is the narrow
//! plug-in point through which `strober-jit` swaps the interpreted
//! settle loop for a `dlopen`ed native function without the `Simulator`
//! facade changing shape.
//!
//! [`NaiveInterpreter`]: crate::NaiveInterpreter

use crate::state::SimState;
use strober_rtl::{NodeId, PortId};

/// The cycle-accurate simulation contract every engine implements.
///
/// The split into [`settle`](Engine::settle) and
/// [`clock_edge`](Engine::clock_edge) mirrors the two phases of a
/// synchronous design's cycle: combinational evaluation with the current
/// inputs and state, then the synchronous state update. `settle` must be
/// idempotent between state changes; `clock_edge` must settle first if
/// needed, so calling it alone is equivalent to a full
/// [`step`](Engine::step).
pub trait Engine {
    /// Sets a top-level input by pre-resolved port id, masking the value
    /// to the port's width.
    fn poke(&mut self, port: PortId, value: u64);

    /// Reads any node's settled value.
    fn peek(&mut self, node: NodeId) -> u64;

    /// Evaluates combinational logic with the current inputs and state.
    /// Idempotent until the next poke or clock edge.
    fn settle(&mut self);

    /// Advances one clock cycle: registers capture their next values,
    /// memory writes commit, the cycle counter increments. Settles first
    /// when needed.
    fn clock_edge(&mut self);

    /// Captures the complete architectural state.
    fn state(&self) -> SimState;

    /// Advances one full cycle (settle + clock edge).
    fn step(&mut self) {
        self.settle();
        self.clock_edge();
    }

    /// A short static label for this engine variant, as used by
    /// `strober bench report` rows (e.g. `"naive"`, `"tape"`,
    /// `"tape-partitioned"`, `"tape-jit"`).
    fn engine_name(&self) -> &'static str;
}

/// A native (JIT-compiled) replacement for the tape settle loop.
///
/// Implementations evaluate exactly the same op tape the sequential
/// interpreter would walk, writing every slot of `values`. The contract
/// mirrors the partitioned engine's settle entry point: `values` is the
/// dense slot slab, `inputs` the per-port input latches, `regs` the
/// current register file and `mems` the memory arrays. The callee must
/// not retain pointers past the call.
///
/// Bit-identity with the interpreted tape is non-negotiable and is
/// enforced at attach time by [`NativeSettle::signature`]: the simulator
/// refuses an engine whose signature does not match the FNV-1a hash of
/// the settle source it would generate for its own tape (see
/// `Simulator::attach_jit`), which rejects stale dylibs compiled for a
/// different design or optimizer configuration.
pub trait NativeSettle: Send + Sync + std::fmt::Debug {
    /// Evaluates the combinational tape into `values`.
    fn settle(&self, values: &mut [u64], inputs: &[u64], regs: &[u64], mems: &[Vec<u64>]);

    /// The FNV-1a hash of the generated settle source this engine was
    /// compiled from, used to verify design/tape identity at attach time.
    fn signature(&self) -> u64;
}

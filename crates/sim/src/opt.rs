//! The optimizing tape compiler.
//!
//! [`crate::Simulator::new`] lowers the topo-sorted design into a flat tape
//! and then runs the pass pipeline in this module before the first `step`:
//!
//! 1. **Constant folding** — operators whose operands all resolve to
//!    constants are evaluated at compile time and become constants
//!    themselves; folding propagates through unary/binary/mux/slice/cat
//!    chains in one topological walk.
//! 2. **Copy propagation** — `Wire` ops and mux-with-constant-select ops
//!    are erased by rewriting every reader to the underlying source.
//! 3. **Dead-code elimination** — slots never (transitively) read by an
//!    output, a register next-value/enable, a memory port or a scan-chain
//!    probe (which are plain hub outputs) emit no tape op at all.
//! 4. **Peephole fusion** — the hot two-op patterns slice-then-binary and
//!    binary-then-mux become single fused superops; slice-of-cat is
//!    rewritten to a slice of the covering side so the cat can die.
//! 5. **Slot renumbering** — surviving ops are packed into a dense,
//!    evaluation-ordered `values` layout (deduplicated constants first)
//!    for cache locality.
//!
//! Every pass preserves the cycle-accurate semantics of the unoptimized
//! tape bit-for-bit; `Simulator::peek` falls back to a tree-walking
//! evaluator for nodes whose slot was optimized away. See DESIGN.md §11
//! for the per-pass invariants.
//!
//! Beyond the dense `values` layout, slot renumbering leaves the emitted
//! tape in *single-assignment* form: constants are materialized before
//! the first op runs and every surviving op writes exactly one slot no
//! other op writes. The [`crate::partition`] engine
//! ([`crate::Simulator::set_threads`]) depends on that shape — it lets
//! disjoint tape chunks execute from different worker threads with no
//! write conflicts, so the only synchronization the parallel settle needs
//! is a barrier per dependency *phase*, not per op.

use crate::tape::{RegPlan, TapeOp, WritePlan, DEAD};
use std::collections::HashMap;
use strober_rtl::{BinOp, Design, Node, TopoOrder, UnOp, Width};

/// Which optimizer passes to run when compiling a [`crate::Simulator`] tape.
///
/// The default ([`TapeOptions::all`]) enables the full pipeline;
/// [`TapeOptions::none`] bypasses the optimizer entirely and reproduces the
/// legacy one-op-per-node lowering (this is what the CLI `--no-tape-opt`
/// escape hatch selects). Individual passes can be toggled for debugging
/// and for the per-pass golden equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeOptions {
    /// Fold and propagate constants through combinational ops.
    pub const_fold: bool,
    /// Erase `Wire` ops and constant-select muxes by operand rewriting.
    pub copy_prop: bool,
    /// Drop ops whose results no output, register, memory port or probe
    /// ever reads.
    pub dce: bool,
    /// Fuse slice→binary, binary→mux and cat→slice patterns.
    pub fuse: bool,
}

impl TapeOptions {
    /// Enables every pass (the default for [`crate::Simulator::new`]).
    pub fn all() -> Self {
        TapeOptions {
            const_fold: true,
            copy_prop: true,
            dce: true,
            fuse: true,
        }
    }

    /// Disables every pass: the tape is the legacy unoptimized lowering
    /// with one op per RTL node and slot == node index.
    pub fn none() -> Self {
        TapeOptions {
            const_fold: false,
            copy_prop: false,
            dce: false,
            fuse: false,
        }
    }

    /// Whether any pass is enabled.
    pub fn any(&self) -> bool {
        self.const_fold || self.copy_prop || self.dce || self.fuse
    }
}

impl Default for TapeOptions {
    fn default() -> Self {
        TapeOptions::all()
    }
}

/// Counters describing what the optimizer did to one compiled tape.
///
/// Exposed via [`crate::Simulator::pass_stats`] and mirrored into
/// `strober.sim.tape.*` probe counters so `strober probe report` shows
/// aggregate numbers across a whole flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Tape ops the unoptimized lowering would emit (one per non-const node).
    pub ops_initial: usize,
    /// Non-constant nodes folded to compile-time constants.
    pub const_folded: usize,
    /// Live `Wire`/alias ops erased by operand rewriting.
    pub copies_propagated: usize,
    /// Ops dropped because nothing observable reads them.
    pub dead_eliminated: usize,
    /// Fused superops emitted (each replaces a two-op pattern).
    pub ops_fused: usize,
    /// Tape ops actually emitted.
    pub ops_final: usize,
    /// `values` slots before renumbering (== node count).
    pub slots_initial: usize,
    /// `values` slots after dense renumbering.
    pub slots_final: usize,
}

/// Everything `Simulator` needs to run a compiled tape.
pub(crate) struct TapePlan {
    pub(crate) tape: Vec<TapeOp>,
    pub(crate) reg_plans: Vec<RegPlan>,
    pub(crate) write_plans: Vec<WritePlan>,
    /// Initial `values` array with constant slots prefilled.
    pub(crate) values: Vec<u64>,
    /// Node index → value slot, [`DEAD`] when the node has no slot.
    pub(crate) node_slot: Vec<u32>,
    pub(crate) stats: PassStats,
}

/// Working representation of one node during optimization. Indexed by node,
/// mutated in place by the passes; `Copy` stands for both design `Wire`s
/// and aliases introduced by copy propagation.
#[derive(Debug, Clone, Copy)]
enum WOp {
    Const(u64),
    Input(u32),
    Unary { op: UnOp, a: u32, w: Width },
    Binary { op: BinOp, a: u32, b: u32, w: Width },
    Mux { sel: u32, t: u32, f: u32 },
    Slice { a: u32, shift: u8, mask: u64 },
    Cat { hi: u32, lo: u32, shift: u8 },
    RegOut(u32),
    MemRead { mem: u32, addr: u32 },
    Copy(u32),
}

/// A planned superop: the keyed node absorbs one single-use producer.
#[derive(Debug, Clone, Copy)]
enum FusePlan {
    /// A `Binary` node absorbing the `Slice` at `slice` as one operand.
    SliceBin { slice: u32, slice_lhs: bool },
    /// A `Mux` node absorbing the `Binary` at `bin` as its select.
    BinMux { bin: u32 },
    /// A `Mux` node absorbing the `Mux` at `inner` as one branch.
    MuxMux { inner: u32, inner_in_true: bool },
}

/// The legacy lowering: one tape op per non-constant node, slot == node
/// index, constants prefilled into `values`. `--no-tape-opt` and
/// [`TapeOptions::none`] take this path without running any pass.
pub(crate) fn lower_identity(design: &Design, topo: &TopoOrder) -> TapePlan {
    let n = design.node_count();
    let mut values = vec![0u64; n];
    let mut tape = Vec::with_capacity(n);
    for id in topo.iter() {
        let dst = id.index() as u32;
        match *design.node(id) {
            Node::Const(v) => values[id.index()] = v,
            Node::Input(p) => tape.push(TapeOp::Input {
                dst,
                port: p.index() as u32,
            }),
            Node::Unary { op, a } => tape.push(TapeOp::Unary {
                dst,
                op,
                a: a.index() as u32,
                w: design.width(a),
            }),
            Node::Binary { op, a, b } => tape.push(TapeOp::Binary {
                dst,
                op,
                a: a.index() as u32,
                b: b.index() as u32,
                w: design.width(a),
            }),
            Node::Mux { sel, t, f } => tape.push(TapeOp::Mux {
                dst,
                sel: sel.index() as u32,
                t: t.index() as u32,
                f: f.index() as u32,
            }),
            Node::Slice { a, hi, lo } => tape.push(TapeOp::Slice {
                dst,
                a: a.index() as u32,
                shift: lo as u8,
                mask: Width::new(hi - lo + 1).expect("validated").mask(),
            }),
            Node::Cat { hi, lo } => tape.push(TapeOp::Cat {
                dst,
                hi: hi.index() as u32,
                lo: lo.index() as u32,
                shift: design.width(lo).bits() as u8,
            }),
            Node::RegOut(r) => tape.push(TapeOp::RegOut {
                dst,
                reg: r.index() as u32,
            }),
            Node::MemRead { mem, port } => {
                let addr = design.memory(mem).read_ports()[port].addr();
                tape.push(TapeOp::MemRead {
                    dst,
                    mem: mem.index() as u32,
                    addr: addr.index() as u32,
                });
            }
            Node::Wire(wid) => {
                let src = design.wire_driver(wid).expect("validated");
                tape.push(TapeOp::Wire {
                    dst,
                    src: src.index() as u32,
                });
            }
        }
    }
    let ops = tape.len();
    TapePlan {
        tape,
        reg_plans: reg_plans(design, &identity_slots(n)),
        write_plans: write_plans(design, &identity_slots(n)),
        values,
        node_slot: identity_slots(n),
        stats: PassStats {
            ops_initial: ops,
            ops_final: ops,
            slots_initial: n,
            slots_final: n,
            ..PassStats::default()
        },
    }
}

fn identity_slots(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

fn reg_plans(design: &Design, node_slot: &[u32]) -> Vec<RegPlan> {
    design
        .registers()
        .map(|(_, r)| RegPlan {
            next: node_slot[r.next().expect("validated").index()],
            enable: r.enable().map(|e| node_slot[e.index()]),
            mask: r.width().mask(),
        })
        .collect()
}

fn write_plans(design: &Design, node_slot: &[u32]) -> Vec<WritePlan> {
    let mut plans = Vec::new();
    for (mid, m) in design.memories() {
        for wp in m.write_ports() {
            plans.push(WritePlan {
                mem: mid.index() as u32,
                addr: node_slot[wp.addr().index()],
                data: node_slot[wp.data().index()],
                enable: node_slot[wp.enable().index()],
            });
        }
    }
    plans
}

/// Follows `Copy` chains to the representative node.
fn resolve(wops: &[WOp], mut i: u32) -> u32 {
    while let WOp::Copy(src) = wops[i as usize] {
        i = src;
    }
    i
}

/// Reads the value of a node that resolved to a constant, if any.
fn const_of(wops: &[WOp], i: u32) -> Option<u64> {
    match wops[resolve(wops, i) as usize] {
        WOp::Const(v) => Some(v),
        _ => None,
    }
}

/// Compiles a design through the optimizing pass pipeline.
pub(crate) fn compile(design: &Design, topo: &TopoOrder, options: &TapeOptions) -> TapePlan {
    let n = design.node_count();
    let order: Vec<u32> = topo.iter().map(|id| id.index() as u32).collect();
    let mut wops = lower_wops(design, &order);
    let mut stats = PassStats {
        ops_initial: wops.iter().filter(|w| !matches!(w, WOp::Const(_))).count(),
        slots_initial: n,
        ..PassStats::default()
    };

    if options.const_fold {
        stats.const_folded = fold_constants(&mut wops, &order);
    }
    if options.copy_prop {
        let widths: Vec<Width> = (0..n)
            .map(|i| design.width(strober_rtl::NodeId::from_index(i)))
            .collect();
        propagate_copies(&mut wops, &order, &widths);
    }

    let roots = collect_roots(design);
    let mut live = mark_live(&wops, &roots, options.dce);
    if options.fuse {
        stats.ops_fused += rewrite_cat_slices(&mut wops, &order, options.const_fold);
        if options.dce {
            // Cat-of-slice rewrites can orphan the cat; sweep again.
            live = mark_live(&wops, &roots, true);
        }
    }
    let emits = |wops: &[WOp], live: &[bool], i: u32| -> bool {
        live[i as usize]
            && match wops[i as usize] {
                WOp::Const(_) => false,
                WOp::Copy(_) => !options.copy_prop,
                _ => true,
            }
    };
    let eres = |wops: &[WOp], i: u32| -> u32 {
        if options.copy_prop {
            resolve(wops, i)
        } else {
            i
        }
    };

    stats.copies_propagated = (0..n as u32)
        .filter(|&i| {
            live[i as usize] && options.copy_prop && matches!(wops[i as usize], WOp::Copy(_))
        })
        .count();
    stats.dead_eliminated = (0..n as u32)
        .filter(|&i| {
            !(live[i as usize]
                || matches!(wops[i as usize], WOp::Const(_))
                || (options.copy_prop && matches!(wops[i as usize], WOp::Copy(_))))
        })
        .count();

    // Peephole superop planning over the surviving graph.
    let mut plans: Vec<Option<FusePlan>> = vec![None; n];
    let mut consumed = vec![false; n];
    if options.fuse {
        let mut uses = vec![0u32; n];
        for &i in &order {
            if !emits(&wops, &live, i) {
                continue;
            }
            for o in operands(&wops[i as usize]) {
                uses[eres(&wops, o) as usize] += 1;
            }
        }
        for &r in &roots {
            uses[eres(&wops, r) as usize] += 1;
        }
        let fusable = |wops: &[WOp],
                       live: &[bool],
                       plans: &[Option<FusePlan>],
                       consumed: &[bool],
                       x: u32|
         -> bool {
            emits(wops, live, x)
                && uses[x as usize] == 1
                && !consumed[x as usize]
                && plans[x as usize].is_none()
        };
        for &i in &order {
            if !emits(&wops, &live, i) {
                continue;
            }
            match wops[i as usize] {
                WOp::Binary { a, b, .. } => {
                    let (ea, eb) = (eres(&wops, a), eres(&wops, b));
                    if fusable(&wops, &live, &plans, &consumed, ea)
                        && matches!(wops[ea as usize], WOp::Slice { .. })
                    {
                        plans[i as usize] = Some(FusePlan::SliceBin {
                            slice: ea,
                            slice_lhs: true,
                        });
                        consumed[ea as usize] = true;
                        stats.ops_fused += 1;
                    } else if eb != ea
                        && fusable(&wops, &live, &plans, &consumed, eb)
                        && matches!(wops[eb as usize], WOp::Slice { .. })
                    {
                        plans[i as usize] = Some(FusePlan::SliceBin {
                            slice: eb,
                            slice_lhs: false,
                        });
                        consumed[eb as usize] = true;
                        stats.ops_fused += 1;
                    }
                }
                WOp::Mux { sel, t, f } => {
                    let es = eres(&wops, sel);
                    let (et, ef) = (eres(&wops, t), eres(&wops, f));
                    if fusable(&wops, &live, &plans, &consumed, es)
                        && matches!(wops[es as usize], WOp::Binary { .. })
                    {
                        plans[i as usize] = Some(FusePlan::BinMux { bin: es });
                        consumed[es as usize] = true;
                        stats.ops_fused += 1;
                    } else if et != es
                        && et != ef
                        && fusable(&wops, &live, &plans, &consumed, et)
                        && matches!(wops[et as usize], WOp::Mux { .. })
                    {
                        plans[i as usize] = Some(FusePlan::MuxMux {
                            inner: et,
                            inner_in_true: true,
                        });
                        consumed[et as usize] = true;
                        stats.ops_fused += 1;
                    } else if ef != es
                        && ef != et
                        && fusable(&wops, &live, &plans, &consumed, ef)
                        && matches!(wops[ef as usize], WOp::Mux { .. })
                    {
                        plans[i as usize] = Some(FusePlan::MuxMux {
                            inner: ef,
                            inner_in_true: false,
                        });
                        consumed[ef as usize] = true;
                        stats.ops_fused += 1;
                    }
                }
                _ => {}
            }
        }
    }

    // Slot assignment: deduplicated constants first, then computed slots in
    // evaluation order.
    let mut node_slot = vec![DEAD; n];
    let mut values = Vec::new();
    let mut const_slots: HashMap<u64, u32> = HashMap::new();
    for &i in &order {
        if !live[i as usize] {
            continue;
        }
        if let WOp::Const(v) = wops[i as usize] {
            let slot = *const_slots.entry(v).or_insert_with(|| {
                values.push(v);
                (values.len() - 1) as u32
            });
            node_slot[i as usize] = slot;
        }
    }
    let n_const_slots = values.len();
    let mut tape = Vec::new();
    for &i in &order {
        if consumed[i as usize] || !emits(&wops, &live, i) {
            // Live copies alias their representative's slot.
            if live[i as usize] && matches!(wops[i as usize], WOp::Copy(_)) && options.copy_prop {
                node_slot[i as usize] = node_slot[resolve(&wops, i) as usize];
            }
            continue;
        }
        let dst = values.len() as u32;
        values.push(0);
        node_slot[i as usize] = dst;
        let slot = |x: u32| -> u32 { node_slot[eres(&wops, x) as usize] };
        let op = match (wops[i as usize], plans[i as usize]) {
            (WOp::Binary { op, a, b, w }, Some(FusePlan::SliceBin { slice, slice_lhs })) => {
                let WOp::Slice {
                    a: src,
                    shift,
                    mask,
                } = wops[slice as usize]
                else {
                    unreachable!("fusion planned over a non-slice")
                };
                let other = if slice_lhs { b } else { a };
                TapeOp::SliceBin {
                    dst,
                    op,
                    src: slot(src),
                    shift,
                    mask,
                    other: slot(other),
                    w,
                    slice_lhs,
                }
            }
            (WOp::Mux { sel: _, t, f }, Some(FusePlan::BinMux { bin })) => {
                let WOp::Binary { op, a, b, w } = wops[bin as usize] else {
                    unreachable!("fusion planned over a non-binary")
                };
                TapeOp::BinMux {
                    dst,
                    op,
                    a: slot(a),
                    b: slot(b),
                    w,
                    t: slot(t),
                    f: slot(f),
                }
            }
            (
                WOp::Mux { sel, t, f },
                Some(FusePlan::MuxMux {
                    inner,
                    inner_in_true,
                }),
            ) => {
                let WOp::Mux {
                    sel: isel,
                    t: it,
                    f: inf,
                } = wops[inner as usize]
                else {
                    unreachable!("fusion planned over a non-mux")
                };
                TapeOp::MuxMux {
                    dst,
                    sel: slot(sel),
                    other: slot(if inner_in_true { f } else { t }),
                    inner_sel: slot(isel),
                    inner_t: slot(it),
                    inner_f: slot(inf),
                    inner_in_true,
                }
            }
            (WOp::Input(p), _) => TapeOp::Input { dst, port: p },
            (
                WOp::Unary {
                    op: UnOp::Not,
                    a,
                    w,
                },
                _,
            ) => TapeOp::NotMask {
                dst,
                a: slot(a),
                mask: w.mask(),
            },
            (WOp::Unary { op, a, w }, _) => TapeOp::Unary {
                dst,
                op,
                a: slot(a),
                w,
            },
            (
                WOp::Binary {
                    op: BinOp::And,
                    a,
                    b,
                    ..
                },
                _,
            ) => TapeOp::BitAnd {
                dst,
                a: slot(a),
                b: slot(b),
            },
            (
                WOp::Binary {
                    op: BinOp::Or,
                    a,
                    b,
                    ..
                },
                _,
            ) => TapeOp::BitOr {
                dst,
                a: slot(a),
                b: slot(b),
            },
            (
                WOp::Binary {
                    op: BinOp::Xor,
                    a,
                    b,
                    ..
                },
                _,
            ) => TapeOp::BitXor {
                dst,
                a: slot(a),
                b: slot(b),
            },
            (
                WOp::Binary {
                    op: BinOp::Eq,
                    a,
                    b,
                    ..
                },
                _,
            ) => TapeOp::CmpEq {
                dst,
                a: slot(a),
                b: slot(b),
            },
            (WOp::Binary { op, a, b, w }, _) => TapeOp::Binary {
                dst,
                op,
                a: slot(a),
                b: slot(b),
                w,
            },
            (WOp::Mux { sel, t, f }, _) => TapeOp::Mux {
                dst,
                sel: slot(sel),
                t: slot(t),
                f: slot(f),
            },
            (WOp::Slice { a, shift, mask }, _) => TapeOp::Slice {
                dst,
                a: slot(a),
                shift,
                mask,
            },
            (WOp::Cat { hi, lo, shift }, _) => TapeOp::Cat {
                dst,
                hi: slot(hi),
                lo: slot(lo),
                shift,
            },
            (WOp::RegOut(r), _) => TapeOp::RegOut { dst, reg: r },
            (WOp::MemRead { mem, addr }, _) => TapeOp::MemRead {
                dst,
                mem,
                addr: slot(addr),
            },
            (WOp::Copy(src), _) => TapeOp::Wire {
                dst,
                src: slot(src),
            },
            (WOp::Const(_), _) => unreachable!("consts never emit"),
        };
        tape.push(op);
    }
    debug_assert_eq!(values.len(), n_const_slots + tape.len());

    stats.ops_final = tape.len();
    stats.slots_final = values.len();
    TapePlan {
        reg_plans: reg_plans_mapped(design, &wops, &node_slot, options.copy_prop),
        write_plans: write_plans_mapped(design, &wops, &node_slot, options.copy_prop),
        tape,
        values,
        node_slot,
        stats,
    }
}

fn reg_plans_mapped(design: &Design, wops: &[WOp], node_slot: &[u32], cp: bool) -> Vec<RegPlan> {
    let slot = |x: u32| node_slot[if cp { resolve(wops, x) } else { x } as usize];
    design
        .registers()
        .map(|(_, r)| RegPlan {
            next: slot(r.next().expect("validated").index() as u32),
            enable: r.enable().map(|e| slot(e.index() as u32)),
            mask: r.width().mask(),
        })
        .collect()
}

fn write_plans_mapped(
    design: &Design,
    wops: &[WOp],
    node_slot: &[u32],
    cp: bool,
) -> Vec<WritePlan> {
    let slot = |x: u32| node_slot[if cp { resolve(wops, x) } else { x } as usize];
    let mut plans = Vec::new();
    for (mid, m) in design.memories() {
        for wp in m.write_ports() {
            plans.push(WritePlan {
                mem: mid.index() as u32,
                addr: slot(wp.addr().index() as u32),
                data: slot(wp.data().index() as u32),
                enable: slot(wp.enable().index() as u32),
            });
        }
    }
    plans
}

/// Lowers the design into the mutable working representation.
fn lower_wops(design: &Design, order: &[u32]) -> Vec<WOp> {
    let mut wops = vec![WOp::Const(0); design.node_count()];
    for &i in order {
        let id = strober_rtl::NodeId::from_index(i as usize);
        wops[i as usize] = match *design.node(id) {
            Node::Const(v) => WOp::Const(v),
            Node::Input(p) => WOp::Input(p.index() as u32),
            Node::Unary { op, a } => WOp::Unary {
                op,
                a: a.index() as u32,
                w: design.width(a),
            },
            Node::Binary { op, a, b } => WOp::Binary {
                op,
                a: a.index() as u32,
                b: b.index() as u32,
                w: design.width(a),
            },
            Node::Mux { sel, t, f } => WOp::Mux {
                sel: sel.index() as u32,
                t: t.index() as u32,
                f: f.index() as u32,
            },
            Node::Slice { a, hi, lo } => WOp::Slice {
                a: a.index() as u32,
                shift: lo as u8,
                mask: Width::new(hi - lo + 1).expect("validated").mask(),
            },
            Node::Cat { hi, lo } => WOp::Cat {
                hi: hi.index() as u32,
                lo: lo.index() as u32,
                shift: design.width(lo).bits() as u8,
            },
            Node::RegOut(r) => WOp::RegOut(r.index() as u32),
            Node::MemRead { mem, port } => WOp::MemRead {
                mem: mem.index() as u32,
                addr: design.memory(mem).read_ports()[port].addr().index() as u32,
            },
            Node::Wire(wid) => {
                WOp::Copy(design.wire_driver(wid).expect("validated").index() as u32)
            }
        };
    }
    wops
}

/// Pass 1: constant folding with propagation. One topological walk; copies
/// of constants become constants, so folding sees through wires.
/// Annihilating operand patterns (`and` with 0, `mul` by 0) fold even when
/// the other operand is unknown.
fn fold_constants(wops: &mut [WOp], order: &[u32]) -> usize {
    let mut folded = 0;
    for &i in order {
        let new = match wops[i as usize] {
            WOp::Unary { op, a, w } => const_of(wops, a).map(|av| op.eval(av, w)),
            WOp::Binary { op, a, b, w } => match (const_of(wops, a), const_of(wops, b)) {
                (Some(av), Some(bv)) => Some(op.eval(av, bv, w)),
                (av, bv) => annihilate(op, av, bv, w),
            },
            WOp::Mux { sel, t, f } => {
                const_of(wops, sel).and_then(|s| const_of(wops, if s != 0 { t } else { f }))
            }
            WOp::Slice { a, shift, mask } => const_of(wops, a).map(|av| (av >> shift) & mask),
            WOp::Cat { hi, lo, shift } => match (const_of(wops, hi), const_of(wops, lo)) {
                (Some(hv), Some(lv)) => Some((hv << shift) | lv),
                _ => None,
            },
            WOp::Copy(src) => const_of(wops, src),
            _ => None,
        };
        if let Some(v) = new {
            wops[i as usize] = WOp::Const(v);
            folded += 1;
        }
    }
    folded
}

/// Folds a binary whose result is fixed by one constant operand alone.
fn annihilate(op: BinOp, a: Option<u64>, b: Option<u64>, w: Width) -> Option<u64> {
    match op {
        BinOp::And if a == Some(0) || b == Some(0) => Some(0),
        BinOp::Mul if a == Some(0) || b == Some(0) => Some(0),
        BinOp::Or if a == Some(w.mask()) || b == Some(w.mask()) => Some(w.mask()),
        _ => None,
    }
}

/// Pass 2: copy propagation. One topological walk creating `Copy` aliases
/// that emission later erases by operand rewriting:
///
/// * muxes whose select resolves to a constant take the chosen branch;
/// * muxes whose branches resolve to the same node are that node;
/// * `cat` with an all-zero high side is its low side;
/// * full-width slices are their operand;
/// * binaries with an identity operand (`x|0`, `x^0`, `x+0`, `x-0`,
///   `x<<0`, `x>>0`, `x&ones`, `x*1`, `x/1`) are the other operand;
/// * structurally identical ops are merged into the first occurrence
///   (local value numbering — the classic "node merging" win on
///   generated hubs, where every scan element stamps out the same
///   gating expressions).
///
/// (Design `Wire`s are already `Copy` ops and need no rewrite here.)
fn propagate_copies(wops: &mut [WOp], order: &[u32], widths: &[Width]) {
    let mut seen: HashMap<CseKey, u32> = HashMap::new();
    for &i in order {
        let alias = match wops[i as usize] {
            WOp::Mux { sel, t, f } => match const_of(wops, sel) {
                Some(s) => Some(if s != 0 { t } else { f }),
                None if resolve(wops, t) == resolve(wops, f) => Some(t),
                None => None,
            },
            // (0 << shift) | lo == lo: the FAME scan chain pads every
            // sub-64-bit register this way.
            WOp::Cat { hi, lo, .. } if const_of(wops, hi) == Some(0) => Some(lo),
            // A zero-based slice whose mask covers every bit the (resolved)
            // operand can carry passes the value through unchanged.
            WOp::Slice { a, shift, mask }
                if shift == 0
                    && mask & widths[resolve(wops, a) as usize].mask()
                        == widths[resolve(wops, a) as usize].mask() =>
            {
                Some(a)
            }
            WOp::Binary { op, a, b, w } => identity_operand(wops, op, a, b, w),
            _ => None,
        };
        if let Some(src) = alias {
            wops[i as usize] = WOp::Copy(src);
            continue;
        }
        // Value numbering over resolved operands: all ops are pure
        // functions of operands and (settle-constant) register/memory
        // state, so equal keys always hold equal values.
        if let Some(key) = cse_key(wops, i) {
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    wops[i as usize] = WOp::Copy(*e.get());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
}

/// The other operand when one side is this op's identity element, if any.
fn identity_operand(wops: &[WOp], op: BinOp, a: u32, b: u32, w: Width) -> Option<u32> {
    let (ca, cb) = (const_of(wops, a), const_of(wops, b));
    let pick = |cx: Option<u64>, ident: u64, other: u32| -> Option<u32> {
        (cx == Some(ident)).then_some(other)
    };
    match op {
        BinOp::Or | BinOp::Xor | BinOp::Add => pick(ca, 0, b).or_else(|| pick(cb, 0, a)),
        BinOp::And => pick(ca, w.mask(), b).or_else(|| pick(cb, w.mask(), a)),
        BinOp::Mul => pick(ca, 1, b).or_else(|| pick(cb, 1, a)),
        BinOp::Sub | BinOp::Shl | BinOp::Shr | BinOp::Sra => pick(cb, 0, a),
        BinOp::DivU => pick(cb, 1, a),
        _ => None,
    }
}

/// Structural key for value numbering; `None` for constants (deduplicated
/// at slot assignment instead).
type CseKey = (u8, u32, u64, u64, u32, u32, u32);

fn cse_key(wops: &[WOp], i: u32) -> Option<CseKey> {
    let r = |x: u32| resolve(wops, x);
    Some(match wops[i as usize] {
        WOp::Const(_) | WOp::Copy(_) => return None,
        WOp::Input(p) => (1, p, 0, 0, 0, 0, 0),
        WOp::RegOut(reg) => (2, reg, 0, 0, 0, 0, 0),
        WOp::Unary { op, a, .. } => (3, op as u32, 0, 0, r(a), 0, 0),
        WOp::Binary { op, a, b, .. } => {
            let (mut ra, mut rb) = (r(a), r(b));
            if commutes(op) && ra > rb {
                std::mem::swap(&mut ra, &mut rb);
            }
            (4, op as u32, 0, 0, ra, rb, 0)
        }
        WOp::Mux { sel, t, f } => (5, 0, 0, 0, r(sel), r(t), r(f)),
        WOp::Slice { a, shift, mask } => (6, u32::from(shift), mask, 0, r(a), 0, 0),
        WOp::Cat { hi, lo, shift } => (7, u32::from(shift), 0, 0, r(hi), r(lo), 0),
        WOp::MemRead { mem, addr } => (8, mem, 0, 0, r(addr), 0, 0),
    })
}

fn commutes(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Neq
    )
}

/// Observable roots: outputs, register next/enable, memory write ports.
/// Memory read addresses are reached through live `MemRead` ops; scan-chain
/// and trace probes are ordinary hub outputs.
fn collect_roots(design: &Design) -> Vec<u32> {
    let mut roots = Vec::new();
    for (_, id) in design.outputs() {
        roots.push(id.index() as u32);
    }
    for (_, r) in design.registers() {
        roots.push(r.next().expect("validated").index() as u32);
        if let Some(e) = r.enable() {
            roots.push(e.index() as u32);
        }
    }
    for (_, m) in design.memories() {
        for wp in m.write_ports() {
            roots.push(wp.addr().index() as u32);
            roots.push(wp.data().index() as u32);
            roots.push(wp.enable().index() as u32);
        }
    }
    roots
}

fn operands(w: &WOp) -> Vec<u32> {
    match *w {
        WOp::Const(_) | WOp::Input(_) | WOp::RegOut(_) => Vec::new(),
        WOp::Unary { a, .. } => vec![a],
        WOp::Binary { a, b, .. } => vec![a, b],
        WOp::Mux { sel, t, f } => vec![sel, t, f],
        WOp::Slice { a, .. } => vec![a],
        WOp::Cat { hi, lo, .. } => vec![hi, lo],
        WOp::MemRead { addr, .. } => vec![addr],
        WOp::Copy(src) => vec![src],
    }
}

/// Pass 3: liveness from the observable roots. With `dce` disabled every
/// node is considered live.
fn mark_live(wops: &[WOp], roots: &[u32], dce: bool) -> Vec<bool> {
    if !dce {
        return vec![true; wops.len()];
    }
    let mut live = vec![false; wops.len()];
    let mut stack: Vec<u32> = roots.to_vec();
    while let Some(i) = stack.pop() {
        if live[i as usize] {
            continue;
        }
        live[i as usize] = true;
        stack.extend(operands(&wops[i as usize]));
    }
    live
}

/// Pass 4a: slices that read a cat and lie entirely within one side are
/// rewritten to slice that side directly, letting the cat go dead. Repeats
/// per node so nested cats (scan-chain padding) collapse fully.
fn rewrite_cat_slices(wops: &mut [WOp], order: &[u32], const_fold: bool) -> usize {
    let mut rewritten = 0;
    for &i in order {
        while let WOp::Slice { a, shift, mask } = wops[i as usize] {
            let src = resolve(wops, a);
            let WOp::Cat {
                hi,
                lo,
                shift: cshift,
            } = wops[src as usize]
            else {
                if const_fold {
                    if let Some(av) = const_of(wops, a) {
                        wops[i as usize] = WOp::Const((av >> shift) & mask);
                    }
                }
                break;
            };
            let bits = mask.count_ones() as u8;
            if shift + bits <= cshift {
                wops[i as usize] = WOp::Slice { a: lo, shift, mask };
            } else if shift >= cshift {
                wops[i as usize] = WOp::Slice {
                    a: hi,
                    shift: shift - cshift,
                    mask,
                };
            } else {
                break;
            }
            rewritten += 1;
        }
    }
    rewritten
}

//! Golden equivalence tests for the optimizing tape compiler.
//!
//! Every pass must be transparent: a simulator built with any subset of
//! [`TapeOptions`] enabled must be cycle-for-cycle, bit-for-bit identical
//! to the naive tree-walking reference — per-cycle outputs, final
//! architectural state, and peeks of nodes the optimizer deleted. The
//! passes are exercised one at a time (so a miscompile is attributed to a
//! single pass) and all together, over a seed sweep of random designs.

use strober_rtl::{BinOp, Design, UnOp, Width};
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_sim::{NaiveInterpreter, Simulator, TapeOptions};

const SEEDS: u64 = 30;
const CYCLES: u64 = 32;

/// Deterministic per-(port, cycle) stimulus (splitmix64 finalizer).
fn stim(seed: u64, port: usize, cycle: u64) -> u64 {
    let mut z = seed
        .wrapping_add((port as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pass subsets under test, with the labels used in failure messages.
fn pass_matrix() -> Vec<(&'static str, TapeOptions)> {
    let off = TapeOptions {
        const_fold: false,
        copy_prop: false,
        dce: false,
        fuse: false,
    };
    vec![
        ("none", off),
        (
            "const_fold",
            TapeOptions {
                const_fold: true,
                ..off
            },
        ),
        (
            "copy_prop",
            TapeOptions {
                copy_prop: true,
                ..off
            },
        ),
        ("dce", TapeOptions { dce: true, ..off }),
        ("fuse", TapeOptions { fuse: true, ..off }),
        ("all", TapeOptions::all()),
    ]
}

/// Runs `design` for [`CYCLES`] under each pass subset and asserts every
/// output every cycle (and the final state) matches the naive reference.
fn assert_equivalent(design: &Design, seed: u64) {
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    let mut naive = NaiveInterpreter::new(design).expect("valid design");
    let mut trace: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..CYCLES {
        for (i, (name, mask)) in ports.iter().enumerate() {
            naive
                .poke_by_name(name, stim(seed, i, cycle) & mask)
                .expect("port");
        }
        trace.push(
            outputs
                .iter()
                .map(|o| naive.peek_output(o).expect("output"))
                .collect(),
        );
        naive.step();
    }
    let golden_state = naive.state();

    for (label, options) in pass_matrix() {
        let mut sim = Simulator::with_options(design, &options).expect("valid design");
        for cycle in 0..CYCLES {
            for (i, (name, mask)) in ports.iter().enumerate() {
                sim.poke_by_name(name, stim(seed, i, cycle) & mask)
                    .expect("port");
            }
            for (oi, o) in outputs.iter().enumerate() {
                let got = sim.peek_output(o).expect("output");
                let expected = trace[cycle as usize][oi];
                assert_eq!(
                    got, expected,
                    "seed {seed}, pass `{label}`: output `{o}` diverged at cycle {cycle}"
                );
            }
            sim.step();
        }
        assert_eq!(
            sim.state(),
            golden_state,
            "seed {seed}, pass `{label}`: final architectural state diverged"
        );
    }
}

#[test]
fn every_pass_is_transparent_on_random_designs() {
    let cfg = RandDesignConfig::default();
    for seed in 0..SEEDS {
        assert_equivalent(&rand_design(seed, &cfg), seed);
    }
}

#[test]
fn every_pass_is_transparent_without_memories() {
    let cfg = RandDesignConfig {
        with_memory: false,
        regs: 3,
        ops: 40,
        ..RandDesignConfig::default()
    };
    for seed in 0..SEEDS {
        assert_equivalent(&rand_design(1000 + seed, &cfg), 1000 + seed);
    }
}

#[test]
fn no_tape_opt_bypasses_the_pipeline() {
    // `TapeOptions::none()` is the CLI `--no-tape-opt` path: the legacy
    // identity lowering must run instead of the optimizer, so nothing is
    // folded, propagated, eliminated or fused and the tape keeps its
    // original size slot-for-slot.
    let design = rand_design(7, &RandDesignConfig::default());
    let raw = Simulator::with_options(&design, &TapeOptions::none()).expect("valid");
    let s = raw.pass_stats();
    assert_eq!(
        (
            s.const_folded,
            s.copies_propagated,
            s.dead_eliminated,
            s.ops_fused
        ),
        (0, 0, 0, 0),
        "identity lowering must not transform: {s:?}"
    );
    assert_eq!(s.ops_final, s.ops_initial, "{s:?}");
    assert_eq!(s.slots_final, s.slots_initial, "{s:?}");

    let opt = Simulator::new(&design).expect("valid");
    let stats = opt.pass_stats();
    assert!(
        stats.ops_initial > 0,
        "optimizer must record its input size"
    );
    assert!(
        stats.ops_final <= stats.ops_initial,
        "optimizer must never grow the tape"
    );
}

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

#[test]
fn constant_subgraphs_fold_to_nothing() {
    // out = (5 + 3) ^ 6 is compile-time constant; with folding on, the
    // whole expression costs zero tape ops.
    let mut d = Design::new("const");
    let a = d.constant(5, w(8));
    let b = d.constant(3, w(8));
    let sum = d.binary(BinOp::Add, a, b).expect("widths");
    let c = d.constant(6, w(8));
    let x = d.binary(BinOp::Xor, sum, c).expect("widths");
    d.output("out", x).expect("fresh");
    let mut sim = Simulator::new(&d).expect("valid");
    assert_eq!(sim.peek_output("out").expect("out"), (5 + 3) ^ 6);
    let stats = sim.pass_stats();
    assert!(stats.const_folded >= 2, "stats: {stats:?}");
    assert_eq!(stats.ops_final, 0, "stats: {stats:?}");
}

#[test]
fn identity_operations_are_copy_propagated() {
    // out = (x | 0) ^ 0 collapses to x by operand identities alone.
    let mut d = Design::new("ident");
    let x = d.input("x", w(16)).expect("fresh");
    let z = d.constant(0, w(16));
    let or0 = d.binary(BinOp::Or, x, z).expect("widths");
    let xor0 = d.binary(BinOp::Xor, or0, z).expect("widths");
    d.output("out", xor0).expect("fresh");
    let mut sim = Simulator::new(&d).expect("valid");
    sim.poke_by_name("x", 0xBEEF).expect("port");
    assert_eq!(sim.peek_output("out").expect("out"), 0xBEEF);
    // Only the port load for `x` survives; both binaries became copies.
    let stats = sim.pass_stats();
    assert!(stats.copies_propagated >= 2, "stats: {stats:?}");
    assert_eq!(stats.ops_final, 1, "stats: {stats:?}");
}

#[test]
fn common_subexpressions_are_merged() {
    // Two structurally identical adders: CSE keeps one.
    let mut d = Design::new("cse");
    let x = d.input("x", w(8)).expect("fresh");
    let y = d.input("y", w(8)).expect("fresh");
    let s1 = d.binary(BinOp::Add, x, y).expect("widths");
    let s2 = d.binary(BinOp::Add, y, x).expect("widths"); // commuted
    let both = d.binary(BinOp::Xor, s1, s2).expect("widths");
    d.output("out", both).expect("fresh");
    let mut sim = Simulator::new(&d).expect("valid");
    sim.poke_by_name("x", 9).expect("port");
    sim.poke_by_name("y", 4).expect("port");
    // x+y == y+x, so the xor of the two sums is identically zero — and
    // after CSE the fold pass cannot see that, but the tape keeps only
    // one adder.
    assert_eq!(sim.peek_output("out").expect("out"), 0);
    let stats = sim.pass_stats();
    assert!(stats.copies_propagated >= 1, "stats: {stats:?}");
}

#[test]
fn dead_nodes_are_eliminated_but_still_peekable() {
    // `dead` feeds no output, register, memory port or probe: DCE drops
    // it from the tape, and `peek` falls back to direct evaluation.
    let mut d = Design::new("dead");
    let x = d.input("x", w(8)).expect("fresh");
    let dead = d.binary(BinOp::Add, x, x).expect("widths");
    let live = d.unary(UnOp::Not, x);
    d.output("out", live).expect("fresh");
    let mut sim = Simulator::new(&d).expect("valid");
    assert!(sim.pass_stats().dead_eliminated >= 1);
    sim.poke_by_name("x", 200).expect("port");
    assert_eq!(sim.peek_output("out").expect("out"), !200u64 & 0xFF);
    assert_eq!(sim.peek(dead), (200 + 200) & 0xFF);
}

#[test]
fn optimized_simulators_clone_mid_run() {
    // Snapshot replay clones simulators mid-flight; the optimized tape's
    // compacted state must survive that.
    let design = rand_design(11, &RandDesignConfig::default());
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let mut sim = Simulator::new(&design).expect("valid");
    for cycle in 0..10 {
        for (i, (name, mask)) in ports.iter().enumerate() {
            sim.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
        }
        sim.step();
    }
    let mut fork = sim.clone();
    for cycle in 10..20 {
        for (i, (name, mask)) in ports.iter().enumerate() {
            sim.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
            fork.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
        }
        sim.step();
        fork.step();
    }
    assert_eq!(sim.state(), fork.state());
}

//! Golden equivalence tests for the partitioned multi-threaded engine.
//!
//! The parallel settle must be invisible: a simulator running its
//! combinational tape on any worker count must be cycle-for-cycle,
//! bit-for-bit identical to the naive tree-walking reference — per-cycle
//! outputs and final architectural state. The sweep covers random
//! designs at 1/2/4/7 workers (1 exercises the sequential fast path the
//! `--hub-threads` default takes), plus the degenerate tape shapes the
//! planner special-cases.

use strober_rtl::{BinOp, Design, Width};
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_sim::{NaiveInterpreter, Simulator, TapeOptions};

const SEEDS: u64 = 30;
const CYCLES: u64 = 32;
const WORKERS: [usize; 4] = [1, 2, 4, 7];

/// Deterministic per-(port, cycle) stimulus (splitmix64 finalizer).
fn stim(seed: u64, port: usize, cycle: u64) -> u64 {
    let mut z = seed
        .wrapping_add((port as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `design` for [`CYCLES`] at every worker count (on both the
/// optimized and the identity-lowered tape) and asserts every output
/// every cycle, and the final state, matches the naive reference.
fn assert_equivalent(design: &Design, seed: u64) {
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    let mut naive = NaiveInterpreter::new(design).expect("valid design");
    let mut trace: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..CYCLES {
        for (i, (name, mask)) in ports.iter().enumerate() {
            naive
                .poke_by_name(name, stim(seed, i, cycle) & mask)
                .expect("port");
        }
        trace.push(
            outputs
                .iter()
                .map(|o| naive.peek_output(o).expect("output"))
                .collect(),
        );
        naive.step();
    }
    let golden_state = naive.state();

    for (label, options) in [
        ("opt", TapeOptions::all()),
        ("identity", TapeOptions::none()),
    ] {
        for workers in WORKERS {
            let mut sim = Simulator::with_options(design, &options).expect("valid design");
            sim.set_threads(workers);
            for cycle in 0..CYCLES {
                for (i, (name, mask)) in ports.iter().enumerate() {
                    sim.poke_by_name(name, stim(seed, i, cycle) & mask)
                        .expect("port");
                }
                for (oi, o) in outputs.iter().enumerate() {
                    let got = sim.peek_output(o).expect("output");
                    let expected = trace[cycle as usize][oi];
                    assert_eq!(
                        got, expected,
                        "seed {seed}, tape `{label}`, {workers} workers: \
                         output `{o}` diverged at cycle {cycle}"
                    );
                }
                sim.step();
            }
            assert_eq!(
                sim.state(),
                golden_state,
                "seed {seed}, tape `{label}`, {workers} workers: \
                 final architectural state diverged"
            );
        }
    }
}

#[test]
fn partitioned_engine_is_transparent_on_random_designs() {
    let cfg = RandDesignConfig::default();
    for seed in 0..SEEDS {
        assert_equivalent(&rand_design(seed, &cfg), seed);
    }
}

#[test]
fn partitioned_engine_is_transparent_without_memories() {
    let cfg = RandDesignConfig {
        with_memory: false,
        regs: 3,
        ops: 40,
        ..RandDesignConfig::default()
    };
    for seed in 0..SEEDS {
        assert_equivalent(&rand_design(2000 + seed, &cfg), 2000 + seed);
    }
}

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

#[test]
fn empty_tape_runs_without_workers() {
    // A fully constant design folds to zero tape ops; the engine must
    // not spin up a pool (stats report zero phases) and peeks still see
    // the folded value.
    let mut d = Design::new("const");
    let a = d.constant(5, w(8));
    let b = d.constant(3, w(8));
    let sum = d.binary(BinOp::Add, a, b).expect("widths");
    d.output("out", sum).expect("fresh");
    let mut sim = Simulator::new(&d).expect("valid");
    sim.set_threads(4);
    sim.step_n(3);
    assert_eq!(sim.peek_output("out").expect("out"), 8);
    assert_eq!(sim.pass_stats().ops_final, 0);
}

#[test]
fn single_level_tape_settles_in_one_phase() {
    // Independent per-input inverters: each Input/Not pair is its own
    // connected component, so affinity keeps pairs together and the
    // whole tape settles in one barrier phase with zero cut edges
    // regardless of the worker count. (A truly single-level graph —
    // every op at ASAP level 0 — is covered by the planner unit tests.)
    let mut d = Design::new("flat");
    for i in 0..12 {
        let x = d.input(format!("x{i}"), w(8)).expect("fresh");
        let n = d.unary(strober_rtl::UnOp::Not, x);
        d.output(format!("o{i}"), n).expect("fresh");
    }
    let mut sim = Simulator::new(&d).expect("valid");
    sim.set_threads(4);
    for i in 0..12 {
        sim.poke_by_name(&format!("x{i}"), i).expect("port");
    }
    for i in 0..12u64 {
        assert_eq!(sim.peek_output(&format!("o{i}")).expect("out"), !i & 0xFF);
    }
    let stats = sim.partition_stats().expect("parallel engine");
    assert_eq!(stats.levels, 2, "input load + inverter: {stats:?}");
    assert_eq!(stats.phases, 1, "stats: {stats:?}");
    assert_eq!(stats.cut_edges, 0, "stats: {stats:?}");
}

#[test]
fn single_worker_request_reports_no_partition_plan() {
    let design = rand_design(5, &RandDesignConfig::default());
    let mut sim = Simulator::new(&design).expect("valid");
    sim.set_threads(1);
    assert!(sim.partition_stats().is_none());
    // Clamped-to-one requests behave the same.
    sim.set_threads(0);
    assert_eq!(sim.threads(), 1);
    assert!(sim.partition_stats().is_none());
}

#[test]
fn partition_stats_cover_every_op() {
    let design = rand_design(9, &RandDesignConfig::default());
    for workers in [2usize, 4, 7] {
        let mut sim = Simulator::new(&design).expect("valid");
        let ops_final = sim.pass_stats().ops_final;
        sim.set_threads(workers);
        let stats = sim.partition_stats().expect("parallel engine");
        assert_eq!(stats.workers, workers);
        assert_eq!(stats.ops, ops_final, "stats: {stats:?}");
        assert!(stats.phases >= 1, "stats: {stats:?}");
        assert!(
            stats.cut_edges <= stats.cut_edges_initial,
            "refinement must not grow the cut: {stats:?}"
        );
        assert!(stats.max_partition_ops >= stats.min_partition_ops);
    }
}

#[test]
fn threaded_simulators_clone_mid_run() {
    // Snapshot replay clones simulators mid-flight; the clone must
    // rebuild its own worker pool and stay bit-identical.
    let design = rand_design(11, &RandDesignConfig::default());
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let mut sim = Simulator::new(&design).expect("valid");
    sim.set_threads(4);
    for cycle in 0..10 {
        for (i, (name, mask)) in ports.iter().enumerate() {
            sim.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
        }
        sim.step();
    }
    let mut fork = sim.clone();
    for cycle in 10..20 {
        for (i, (name, mask)) in ports.iter().enumerate() {
            sim.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
            fork.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
        }
        sim.step();
        fork.step();
    }
    assert_eq!(sim.state(), fork.state());
}

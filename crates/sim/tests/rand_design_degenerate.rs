//! Property tests: `rand_design` is total over degenerate configurations.
//!
//! The fuzzer's config sweeps deliberately include corners — zero inputs,
//! zero ops, zero registers, zero outputs, and width ladders that starve
//! the generator of 1-bit nodes (mux selects, enables) or of nodes wide
//! enough for a memory address. None of these may panic the generator,
//! and every produced design must simulate.

use proptest::prelude::*;
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_sim::{NaiveInterpreter, Simulator};

/// Builds the design and runs it a few cycles on both engines, comparing
/// outputs and state — the design must not just validate, it must work.
fn generate_and_simulate(seed: u64, cfg: &RandDesignConfig) {
    let design = rand_design(seed, cfg);
    design.validate().expect("generated design validates");

    let mut tape = Simulator::new(&design).expect("tape builds");
    let mut naive = NaiveInterpreter::new(&design).expect("interp builds");
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();
    for cycle in 0..8u64 {
        for p in design.ports() {
            let v = cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15) & p.width().mask();
            tape.poke_by_name(p.name(), v).unwrap();
            naive.poke_by_name(p.name(), v).unwrap();
        }
        for out in &outputs {
            assert_eq!(
                tape.peek_output(out).unwrap(),
                naive.peek_output(out).unwrap(),
                "seed {seed}: output `{out}` diverged at cycle {cycle}"
            );
        }
        tape.step();
        naive.step();
    }
    assert_eq!(tape.state(), naive.state(), "seed {seed}: state diverged");
}

/// Width ladders that stress the fallback paths: empty (falls back to
/// `[1]`), only-wide (no 1-bit nodes), only-narrow (nothing wide enough
/// to address a memory), out-of-range entries (ignored), and the default.
fn arb_widths() -> impl Strategy<Value = Vec<u32>> {
    proptest::sample::select(vec![
        vec![],
        vec![64],
        vec![1],
        vec![4],
        vec![0, 65, 99],
        vec![1, 4, 8, 13, 16, 32, 64],
        vec![13, 32],
        vec![0, 1, 80],
    ])
}

proptest! {
    #[test]
    fn degenerate_configs_never_panic(
        seed in 0u64..1_000,
        inputs in 0usize..=4,
        ops in 0usize..=24,
        regs in 0usize..=4,
        with_memory in any::<bool>(),
        outputs in 0usize..=4,
        widths in arb_widths(),
    ) {
        let cfg = RandDesignConfig { inputs, ops, regs, with_memory, outputs, widths };
        generate_and_simulate(seed, &cfg);
    }
}

#[test]
fn all_zero_config_is_valid() {
    let cfg = RandDesignConfig {
        inputs: 0,
        ops: 0,
        regs: 0,
        with_memory: false,
        outputs: 0,
        widths: vec![],
    };
    for seed in 0..16 {
        generate_and_simulate(seed, &cfg);
    }
}

#[test]
fn wide_only_ladder_still_builds_muxes_and_memories() {
    // `[64]` leaves no 1-bit node in the pool, so every mux select,
    // register enable, and memory write enable must come from the
    // slice-a-bit fallback.
    let cfg = RandDesignConfig {
        widths: vec![64],
        ..RandDesignConfig::default()
    };
    for seed in 0..16 {
        generate_and_simulate(seed, &cfg);
    }
}

#[test]
fn narrow_only_ladder_synthesizes_memory_addresses() {
    // `[1]` leaves nothing wide enough for the 5-bit memory address or
    // 16-bit write data, forcing the constant-synthesis fallback.
    let cfg = RandDesignConfig {
        widths: vec![1],
        ..RandDesignConfig::default()
    };
    for seed in 0..16 {
        generate_and_simulate(seed, &cfg);
    }
}

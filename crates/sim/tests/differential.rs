//! Differential testing: the compiled-tape simulator and the naive
//! tree-walking interpreter must agree cycle-for-cycle on random designs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_sim::{NaiveInterpreter, Simulator};

fn run_differential(seed: u64, cycles: u64) {
    let cfg = RandDesignConfig::default();
    let design = rand_design(seed, &cfg);
    let mut tape = Simulator::new(&design).expect("valid design");
    let mut naive = NaiveInterpreter::new(&design).expect("valid design");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEADBEEF);

    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    for cycle in 0..cycles {
        for (name, mask) in &ports {
            let v = rng.gen::<u64>() & mask;
            tape.poke_by_name(name, v).unwrap();
            naive.poke_by_name(name, v).unwrap();
        }
        for out in &outputs {
            let t = tape.peek_output(out).unwrap();
            let n = naive.peek_output(out).unwrap();
            assert_eq!(
                t, n,
                "seed {seed}: output `{out}` diverged at cycle {cycle}: tape={t:#x} naive={n:#x}"
            );
        }
        tape.step();
        naive.step();
        assert_eq!(
            tape.state(),
            naive.state(),
            "seed {seed}: architectural state diverged after cycle {cycle}"
        );
    }
}

#[test]
fn tape_and_naive_agree_on_many_random_designs() {
    for seed in 0..40 {
        run_differential(seed, 50);
    }
}

#[test]
fn long_run_agreement() {
    run_differential(1234, 2000);
}

#[test]
fn memoryless_designs_agree() {
    let cfg = RandDesignConfig {
        with_memory: false,
        regs: 10,
        ops: 120,
        ..RandDesignConfig::default()
    };
    for seed in 100..110 {
        let design = rand_design(seed, &cfg);
        let mut tape = Simulator::new(&design).unwrap();
        let mut naive = NaiveInterpreter::new(&design).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            for p in design.ports() {
                let v = rng.gen::<u64>() & p.width().mask();
                tape.poke_by_name(p.name(), v).unwrap();
                naive.poke_by_name(p.name(), v).unwrap();
            }
            tape.step();
            naive.step();
        }
        assert_eq!(tape.state(), naive.state());
    }
}

//! Golden equivalence tests for the JIT-compiled native settle engine.
//!
//! The compiled dylib must be invisible: a simulator dispatching its
//! combinational settle to native code must be cycle-for-cycle,
//! bit-for-bit identical to the naive tree-walking reference — per-cycle
//! outputs and final architectural state. The sweep covers random
//! designs on both the optimized and the identity-lowered tape (the two
//! sources the codegen can be asked to lower), plus the degenerate
//! shapes: an empty tape, a detach mid-run, and a clone mid-run sharing
//! the loaded engine.
//!
//! Every case skips (with a printed reason) when no `rustc` is on
//! `PATH` — the same condition under which the production fallback
//! ladder reverts to the interpreter.

use strober_jit::{rustc_version, JitCompiler};
use strober_rtl::{BinOp, Design, Width};
use strober_sim::rand_design::{rand_design, RandDesignConfig};
use strober_sim::{NaiveInterpreter, Simulator, TapeOptions};

const SEEDS: u64 = 10;
const CYCLES: u64 = 32;

/// Deterministic per-(port, cycle) stimulus (splitmix64 finalizer).
fn stim(seed: u64, port: usize, cycle: u64) -> u64 {
    let mut z = seed
        .wrapping_add((port as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shared content-addressed cache for the whole test binary, so the
/// per-design compile happens once even when several cases reuse a seed.
fn compiler() -> JitCompiler {
    JitCompiler::new(
        std::env::temp_dir()
            .join("strober-jit-equivalence")
            .join(std::process::id().to_string()),
    )
}

/// Runs `design` for [`CYCLES`] with the native engine attached (on both
/// the optimized and the identity-lowered tape) and asserts every output
/// every cycle, and the final state, matches the naive reference.
fn assert_equivalent(design: &Design, seed: u64) {
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    let mut naive = NaiveInterpreter::new(design).expect("valid design");
    let mut trace: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..CYCLES {
        for (i, (name, mask)) in ports.iter().enumerate() {
            naive
                .poke_by_name(name, stim(seed, i, cycle) & mask)
                .expect("port");
        }
        trace.push(
            outputs
                .iter()
                .map(|o| naive.peek_output(o).expect("output"))
                .collect(),
        );
        naive.step();
    }
    let golden_state = naive.state();

    let compiler = compiler();
    for (label, options) in [
        ("opt", TapeOptions::all()),
        ("identity", TapeOptions::none()),
    ] {
        let mut sim = Simulator::with_options(design, &options).expect("valid design");
        compiler.attach(&mut sim).expect("jit attach");
        assert_eq!(sim.active_engine_name(), "tape-jit");
        for cycle in 0..CYCLES {
            for (i, (name, mask)) in ports.iter().enumerate() {
                sim.poke_by_name(name, stim(seed, i, cycle) & mask)
                    .expect("port");
            }
            for (oi, o) in outputs.iter().enumerate() {
                let got = sim.peek_output(o).expect("output");
                let expected = trace[cycle as usize][oi];
                assert_eq!(
                    got, expected,
                    "seed {seed}, tape `{label}`, jit engine: \
                     output `{o}` diverged at cycle {cycle}"
                );
            }
            sim.step();
        }
        assert_eq!(
            sim.state(),
            golden_state,
            "seed {seed}, tape `{label}`, jit engine: \
             final architectural state diverged"
        );
    }
}

/// True (with a printed reason) when the JIT cases cannot run here.
fn skip() -> bool {
    if rustc_version().is_none() {
        println!("skipping: no rustc on PATH (the production fallback case)");
        return true;
    }
    false
}

#[test]
fn jit_engine_is_transparent_on_random_designs() {
    if skip() {
        return;
    }
    let cfg = RandDesignConfig::default();
    for seed in 0..SEEDS {
        assert_equivalent(&rand_design(seed, &cfg), seed);
    }
}

#[test]
fn jit_engine_is_transparent_without_memories() {
    if skip() {
        return;
    }
    let cfg = RandDesignConfig {
        with_memory: false,
        regs: 3,
        ops: 40,
        ..RandDesignConfig::default()
    };
    for seed in 0..SEEDS {
        assert_equivalent(&rand_design(2000 + seed, &cfg), 2000 + seed);
    }
}

fn w(bits: u32) -> Width {
    Width::new(bits).expect("static width")
}

#[test]
fn empty_tape_compiles_and_runs() {
    if skip() {
        return;
    }
    // A fully constant design folds to zero tape ops; the generated
    // settle function is an empty body, which must still compile, attach
    // and leave the folded peeks intact.
    let mut d = Design::new("const");
    let a = d.constant(5, w(8));
    let b = d.constant(3, w(8));
    let sum = d.binary(BinOp::Add, a, b).expect("widths");
    d.output("out", sum).expect("fresh");
    let mut sim = Simulator::new(&d).expect("valid");
    compiler().attach(&mut sim).expect("jit attach");
    assert_eq!(sim.pass_stats().ops_final, 0);
    sim.step_n(3);
    assert_eq!(sim.peek_output("out").expect("out"), 8);
}

#[test]
fn jit_simulators_clone_mid_run() {
    if skip() {
        return;
    }
    // Snapshot replay clones simulators mid-flight; the clone must share
    // the loaded engine (no recompile) and stay bit-identical.
    let design = rand_design(11, &RandDesignConfig::default());
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let mut sim = Simulator::new(&design).expect("valid");
    compiler().attach(&mut sim).expect("jit attach");
    for cycle in 0..10 {
        for (i, (name, mask)) in ports.iter().enumerate() {
            sim.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
        }
        sim.step();
    }
    let mut fork = sim.clone();
    assert_eq!(fork.active_engine_name(), "tape-jit");
    for cycle in 10..20 {
        for (i, (name, mask)) in ports.iter().enumerate() {
            sim.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
            fork.poke_by_name(name, stim(3, i, cycle) & mask)
                .expect("port");
        }
        sim.step();
        fork.step();
    }
    assert_eq!(sim.state(), fork.state());
}

#[test]
fn detach_returns_to_the_interpreter_bit_identically() {
    if skip() {
        return;
    }
    // Attach for the first half of a run, detach for the second; the
    // trajectory must match a simulator that interpreted throughout.
    let design = rand_design(7, &RandDesignConfig::default());
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let mut interp = Simulator::new(&design).expect("valid");
    let mut mixed = Simulator::new(&design).expect("valid");
    compiler().attach(&mut mixed).expect("jit attach");
    for cycle in 0..CYCLES {
        if cycle == CYCLES / 2 {
            mixed.detach_jit();
            assert_eq!(mixed.active_engine_name(), "tape");
        }
        for (i, (name, mask)) in ports.iter().enumerate() {
            interp
                .poke_by_name(name, stim(5, i, cycle) & mask)
                .expect("port");
            mixed
                .poke_by_name(name, stim(5, i, cycle) & mask)
                .expect("port");
        }
        interp.step();
        mixed.step();
    }
    assert_eq!(interp.state(), mixed.state());
}

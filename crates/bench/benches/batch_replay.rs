//! Bit-parallel replay throughput (EXPERIMENTS.md "Replay throughput"):
//! the packed 64-lane engine against 64 sequential scalar replays of the
//! bundled Rok netlist, plus the 1-lane cases that isolate the tape
//! interpreter from the packing win. Throughput is reported in
//! lane-cycles per second — one element = one replay advancing one
//! cycle — so the scalar and packed numbers are directly comparable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use strober_cores::{build_core, CoreConfig};
use strober_gatesim::{BatchSim, GateSim, MAX_LANES};
use strober_synth::{synthesize, SynthOptions};

const CYCLES: u64 = 256;

fn bench_batch_replay(c: &mut Criterion) {
    let design = build_core(&CoreConfig::rok_tiny());
    let netlist = synthesize(&design, &SynthOptions::default())
        .expect("synth")
        .netlist;

    let mut group = c.benchmark_group("batch_replay");
    // The sequential-64 baseline costs ~0.7 s per iteration; keep the
    // sample count low so the bench finishes in seconds, not minutes.
    group.sample_size(10);

    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("scalar_1_lane", |b| {
        let mut sim = GateSim::new(&netlist).expect("netlist");
        b.iter(|| {
            sim.step_n(CYCLES);
            black_box(sim.cycle());
        });
    });
    group.bench_function("packed_1_lane", |b| {
        let mut sim = BatchSim::with_lanes(&netlist, 1).expect("netlist");
        b.iter(|| {
            sim.step_n(CYCLES);
            black_box(sim.cycle());
        });
    });

    group.throughput(Throughput::Elements(MAX_LANES as u64 * CYCLES));
    group.bench_function("sequential_64x1_lane", |b| {
        let mut sims: Vec<GateSim> = (0..MAX_LANES)
            .map(|_| GateSim::new(&netlist).expect("netlist"))
            .collect();
        b.iter(|| {
            for sim in &mut sims {
                sim.step_n(CYCLES);
            }
            black_box(sims[MAX_LANES - 1].cycle());
        });
    });
    group.bench_function("packed_64_lanes", |b| {
        let mut sim = BatchSim::new(&netlist).expect("netlist");
        b.iter(|| {
            sim.step_n(CYCLES);
            black_box(sim.cycle());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_batch_replay);
criterion_main!(benches);

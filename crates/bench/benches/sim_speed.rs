//! The simulator-speed ladder (DESIGN.md ablation): compiled-tape RTL
//! simulation vs the naive tree-walking interpreter vs gate-level
//! simulation, on the Rok core. This is the speed hierarchy the whole
//! methodology exploits — the tape simulator plays the FPGA, the gate
//! simulator plays VCS.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use strober_cores::{build_core, CoreConfig};
use strober_gatesim::GateSim;
use strober_sim::{NaiveInterpreter, Simulator};
use strober_synth::{synthesize, SynthOptions};

fn bench_engines(c: &mut Criterion) {
    let design = build_core(&CoreConfig::rok_tiny());
    let synth = synthesize(&design, &SynthOptions::default()).expect("synth");

    let mut group = c.benchmark_group("sim_speed");
    group.throughput(Throughput::Elements(256));

    group.bench_function("tape_rtl_256_cycles", |b| {
        let mut sim = Simulator::new(&design).expect("core");
        b.iter(|| {
            sim.step_n(256);
            black_box(sim.cycle());
        });
    });

    group.bench_function("naive_interp_256_cycles", |b| {
        let mut sim = NaiveInterpreter::new(&design).expect("core");
        b.iter(|| {
            sim.step_n(256);
            black_box(sim.cycle());
        });
    });

    group.bench_function("gate_level_256_cycles", |b| {
        let mut sim = GateSim::new(&synth.netlist).expect("netlist");
        b.iter(|| {
            sim.step_n(256);
            black_box(sim.cycle());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

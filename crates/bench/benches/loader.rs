//! The §IV-C2 snapshot-loading contrast: the script-driven console loader
//! vs the VPI-style bulk loader. Both load identical state; this bench
//! measures the real in-process apply cost, and the binary output of the
//! run also reports the *modelled* 400 vs 20 000 commands/second gap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use strober_cores::{build_core, CoreConfig};
use strober_gatesim::{GateSim, ScriptLoader, VpiLoader};
use strober_synth::{synthesize, SynthOptions};

fn bench_loaders(c: &mut Criterion) {
    let design = build_core(&CoreConfig::rok_tiny());
    let synth = synthesize(&design, &SynthOptions::default()).expect("synth");

    // A full register-state load: every DFF of the core.
    let dff_values: Vec<(String, bool)> = synth
        .netlist
        .dffs()
        .enumerate()
        .map(|(i, (_, name, _, _, _))| (name.to_owned(), i % 3 == 0))
        .collect();

    let mut group = c.benchmark_group("state_loading");
    group.throughput(Throughput::Elements(dff_values.len() as u64));

    group.bench_function("vpi_bulk_loader", |b| {
        let mut sim = GateSim::new(&synth.netlist).expect("netlist");
        b.iter(|| {
            let stats = VpiLoader::load(&mut sim, &dff_values, &[]).expect("load");
            black_box(stats.commands);
        });
    });

    group.bench_function("script_loader", |b| {
        let mut sim = GateSim::new(&synth.netlist).expect("netlist");
        b.iter(|| {
            let stats = ScriptLoader::load(&mut sim, &dff_values, &[]).expect("load");
            black_box(stats.commands);
        });
    });

    group.finish();

    // Report the modelled wall-clock contrast once (the paper's numbers).
    let mut sim = GateSim::new(&synth.netlist).expect("netlist");
    let script = ScriptLoader::load(&mut sim, &dff_values, &[]).expect("load");
    let vpi = VpiLoader::load(&mut sim, &dff_values, &[]).expect("load");
    eprintln!(
        "modelled load time for {} commands: script {:.1} s vs VPI {:.3} s ({}x)",
        script.commands,
        script.modeled_seconds,
        vpi.modeled_seconds,
        (script.modeled_seconds / vpi.modeled_seconds) as u64
    );
}

criterion_group!(benches, bench_loaders);
criterion_main!(benches);

//! Sampling machinery benches: the per-element cost of online reservoir
//! sampling (paid every replay window during fast simulation) and the
//! skip-based record-count simulation that makes Table III's
//! 73-billion-cycle row computable in microseconds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use strober_sampling::{RecordCountSim, Reservoir, SampleStats};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("reservoir_offer_10k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut res = Reservoir::new(30);
            for i in 0..10_000u64 {
                res.offer(i, &mut rng);
            }
            black_box(res.records());
        });
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("skip_record_count_73e9_cycles", |b| {
        let sim = RecordCountSim::new(100);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            // 73.39e9 cycles at L = 1000 → 73.39e6 windows.
            black_box(sim.simulate_records(73_390_000, &mut rng));
        });
    });

    group.bench_function("confidence_interval_n30", |b| {
        let values: Vec<f64> = (0..30).map(|i| 100.0 + ((i * 7) % 13) as f64).collect();
        b.iter(|| {
            let stats = SampleStats::from_measurements(&values).expect("n>=2");
            black_box(stats.confidence_interval(1_000_000, strober_sampling::Confidence::C99));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);

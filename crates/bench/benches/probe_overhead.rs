//! Cost of `strober-probe` instrumentation in each recorder state.
//!
//! `plain` is the uninstrumented baseline; `probed_disabled` adds one
//! span and one counter update per work chunk with the recorder off (the
//! shipping default — must be indistinguishable from `plain`);
//! `probed_enabled` is the same with the recorder on, showing what a
//! traced run pays. The asserting version of the disabled comparison
//! lives in `tests/probe_overhead.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use strober_bench::overhead::{run_plain, run_probed};

const ITERS: u64 = 2_000;

fn bench_overhead(c: &mut Criterion) {
    strober_probe::disable();

    let mut group = c.benchmark_group("probe_overhead");
    group.sample_size(20);

    group.bench_function("plain", |b| {
        b.iter(|| black_box(run_plain(ITERS)));
    });

    group.bench_function("probed_disabled", |b| {
        b.iter(|| black_box(run_probed(ITERS)));
    });

    group.bench_function("probed_enabled", |b| {
        strober_probe::reset();
        strober_probe::enable();
        b.iter(|| black_box(run_probed(ITERS)));
        strober_probe::disable();
        strober_probe::reset();
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);

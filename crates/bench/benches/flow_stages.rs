//! Per-stage cost of the Strober compile-time flow on the Rok core: the
//! FAME1 transform, synthesis (with and without optimisation — an
//! ablation of the DESIGN.md design choice), formal matching, and hub
//! compilation. These are the `T_FPGAsyn`/`T_ASIC` analogs of §IV-E on
//! our substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use strober_cores::{build_core, CoreConfig};
use strober_fame::{transform, FameConfig};
use strober_formal::{match_designs, MatchOptions};
use strober_sim::Simulator;
use strober_synth::{synthesize, SynthOptions};

fn bench_flow(c: &mut Criterion) {
    let design = build_core(&CoreConfig::rok_tiny());
    let synth = synthesize(&design, &SynthOptions::default()).expect("synth");
    let fame = transform(&design, &FameConfig::default()).expect("transform");

    let mut group = c.benchmark_group("flow_stages");
    group.sample_size(10);

    group.bench_function("elaborate_rok_tiny", |b| {
        b.iter(|| black_box(build_core(&CoreConfig::rok_tiny())));
    });

    group.bench_function("fame1_transform", |b| {
        b.iter(|| black_box(transform(&design, &FameConfig::default()).expect("transform")));
    });

    group.bench_function("synthesize_optimized", |b| {
        b.iter(|| black_box(synthesize(&design, &SynthOptions::default()).expect("synth")));
    });

    group.bench_function("synthesize_unoptimized", |b| {
        let opts = SynthOptions {
            optimize: false,
            ..SynthOptions::default()
        };
        b.iter(|| black_box(synthesize(&design, &opts).expect("synth")));
    });

    group.bench_function("formal_match", |b| {
        b.iter(|| {
            black_box(match_designs(&design, &synth, &MatchOptions::default()).expect("match"))
        });
    });

    group.bench_function("compile_hub_simulator", |b| {
        b.iter(|| black_box(Simulator::new(&fame.hub).expect("hub")));
    });

    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);

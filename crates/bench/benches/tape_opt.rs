//! Optimizing tape compiler throughput (EXPERIMENTS.md "Tape optimizer"):
//! the FAME1-transformed Rok hub — the exact workload `ZynqHost::run`
//! steps every target cycle — with the pass pipeline off, each pass
//! enabled alone, and the full pipeline. Throughput is reported in hub
//! cycles per second, so the criterion numbers line up with the
//! `strober.core.sim_cycles_per_sec` gauge.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use strober_cores::{build_core, CoreConfig};
use strober_fame::{transform, FameConfig};
use strober_sim::{Simulator, TapeOptions};

const CYCLES: u64 = 2048;

fn bench_tape_opt(c: &mut Criterion) {
    let design = build_core(&CoreConfig::rok_tiny());
    let fame = transform(&design, &FameConfig::default()).expect("transform");

    let off = TapeOptions {
        const_fold: false,
        copy_prop: false,
        dce: false,
        fuse: false,
    };
    let configs = [
        ("unoptimized", TapeOptions::none()),
        (
            "const_fold",
            TapeOptions {
                const_fold: true,
                ..off
            },
        ),
        (
            "copy_prop",
            TapeOptions {
                copy_prop: true,
                ..off
            },
        ),
        ("dce", TapeOptions { dce: true, ..off }),
        ("fuse", TapeOptions { fuse: true, ..off }),
        ("optimized", TapeOptions::all()),
    ];

    let mut group = c.benchmark_group("tape_opt");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CYCLES));
    for (name, options) in configs {
        group.bench_function(name, |b| {
            let mut sim = Simulator::with_options(&fame.hub, &options).expect("hub");
            sim.poke_by_name(&fame.meta.control.fire, 1).expect("fire");
            b.iter(|| {
                sim.step_n(CYCLES);
                black_box(sim.cycle());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tape_opt);
criterion_main!(benches);

//! Cold vs warm session preparation through the artifact store.
//!
//! "Cold" is a full miss: fingerprint the design, run the FAME1 transform,
//! synthesis and formal matching, then serialize the artifacts into the
//! store — exactly what the first `strober estimate` on a design pays.
//! "Warm" is a hit: fingerprint, read, verify and decode the cached
//! artifacts. The ratio between the two is the headline number of the
//! warm-start cache (recorded in EXPERIMENTS.md); the acceptance bar is
//! ≥ 10× on Rok.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_store::Store;

fn bench_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "strober-bench-store-{label}-{}",
        std::process::id()
    ))
}

fn bench_core(c: &mut Criterion, label: &str, core: &CoreConfig) {
    let design = build_core(core);
    let config = StroberConfig::default();

    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    // Miss path: the store exists but never holds the key.
    let cold_dir = bench_dir(&format!("{label}-cold"));
    let _ = std::fs::remove_dir_all(&cold_dir);
    let mut cold_store = Store::open(&cold_dir).expect("open store");
    group.bench_function(&format!("prepare_cold_{label}"), |b| {
        b.iter(|| {
            cold_store.clear().expect("clear store");
            let (flow, hit) = StroberFlow::prepare_cached(&design, config.clone(), &mut cold_store)
                .expect("prepare");
            assert!(!hit);
            black_box(flow)
        });
    });

    // Hit path: the store is primed once, every iteration reads it back.
    let warm_dir = bench_dir(&format!("{label}-warm"));
    let _ = std::fs::remove_dir_all(&warm_dir);
    let mut warm_store = Store::open(&warm_dir).expect("open store");
    StroberFlow::prepare_cached(&design, config.clone(), &mut warm_store).expect("prime");
    group.bench_function(&format!("prepare_warm_{label}"), |b| {
        b.iter(|| {
            let (flow, hit) = StroberFlow::prepare_cached(&design, config.clone(), &mut warm_store)
                .expect("prepare");
            assert!(hit);
            black_box(flow)
        });
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);
}

fn bench_store(c: &mut Criterion) {
    bench_core(c, "rok", &CoreConfig::rok());
    bench_core(c, "boum_2w", &CoreConfig::boum_2w());
}

criterion_group!(benches, bench_store);
criterion_main!(benches);

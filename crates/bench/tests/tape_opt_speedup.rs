//! The optimizing-tape-compiler acceptance gate, enforced: the optimized
//! tape must deliver at least 1.5x the unoptimized tape's throughput on
//! the FAME1-transformed Rok hub — the workload `ZynqHost::run` executes
//! every target cycle.
//!
//! Like the probe-overhead and batch-replay checks, the comparison uses
//! the minimum over several interleaved trials — the minimum is the run
//! least disturbed by the machine, so the ratio is stable enough to
//! assert on in CI.

use std::hint::black_box;
use std::time::Instant;
use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_fame::{transform, FameConfig};
use strober_platform::{HostModel, OutputView, PlatformConfig};
use strober_sim::{Simulator, TapeOptions};

const CYCLES: u64 = 2048;
const TRIALS: usize = 5;

fn min_nanos(mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the 1.5x floor is a property of optimized builds; CI runs \
              this test with --release."
)]
fn optimized_hub_tape_is_at_least_1_5x_unoptimized() {
    let design = build_core(&CoreConfig::rok_tiny());
    let fame = transform(&design, &FameConfig::default()).expect("transform");

    let mut raw = Simulator::with_options(&fame.hub, &TapeOptions::none()).expect("hub");
    let mut opt = Simulator::new(&fame.hub).expect("hub");
    let fire = raw
        .resolve_port(&fame.meta.control.fire)
        .expect("fire port");
    raw.poke(fire, 1);
    opt.poke(fire, 1);

    let stats = opt.pass_stats();
    println!(
        "hub tape: {} ops -> {} ops ({} folded, {} copies, {} dead, {} fused), \
         {} slots -> {} slots",
        stats.ops_initial,
        stats.ops_final,
        stats.const_folded,
        stats.copies_propagated,
        stats.dead_eliminated,
        stats.ops_fused,
        stats.slots_initial,
        stats.slots_final,
    );

    println!("optimized op mix: {:?}", opt.tape_histogram());

    // Warm both paths (page in code, settle the frequency governor).
    raw.step_n(CYCLES);
    opt.step_n(CYCLES);

    let unoptimized = min_nanos(|| {
        raw.step_n(CYCLES);
        black_box(raw.cycle());
    });
    let optimized = min_nanos(|| {
        opt.step_n(CYCLES);
        black_box(opt.cycle());
    });

    let speedup = unoptimized as f64 / optimized as f64;
    println!(
        "unoptimized hub tape: {unoptimized} ns; optimized: {optimized} ns; speedup {speedup:.2}x"
    );
    assert!(
        speedup >= 1.5,
        "optimized tape speedup {speedup:.2}x is below the 1.5x acceptance floor \
         (unoptimized {unoptimized} ns, optimized {optimized} ns)"
    );
}

struct NoIo;
impl HostModel for NoIo {
    fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing composition is only meaningful on optimized builds; \
              CI runs this test with --release."
)]
fn sim_cycles_per_sec_gauge_does_not_regress_without_the_optimizer() {
    // The flow-level floor behind the `strober.core.sim_cycles_per_sec`
    // gauge: a full sampled run with the optimizer enabled must not lose
    // to the same run with `--no-tape-opt`. The assertion is deliberately
    // loose (host-model and reservoir overhead dilute the ratio); the
    // hard 1.5x floor lives in the microbenchmark above.
    let design = build_core(&CoreConfig::rok_tiny());
    let rate = |tape_opt: bool| {
        let config = StroberConfig {
            sample_size: 16,
            platform: PlatformConfig {
                tape_opt,
                ..PlatformConfig::default()
            },
            ..StroberConfig::default()
        };
        let flow = StroberFlow::new(&design, config).expect("prepare");
        let mut best = 0.0f64;
        for _ in 0..3 {
            let t0 = Instant::now();
            let run = flow.run_sampled(&mut NoIo, 100_000).expect("sampled run");
            let secs = t0.elapsed().as_secs_f64();
            black_box(run.snapshots.len());
            best = best.max(100_000.0 / secs);
        }
        best
    };
    let raw = rate(false);
    let opt = rate(true);
    println!("flow-level simulated cycles/sec: unoptimized {raw:.0}, optimized {opt:.0}");
    assert!(
        opt >= raw,
        "optimized flow rate {opt:.0} cycles/s lost to the unoptimized tape ({raw:.0} cycles/s)"
    );
}

//! The cheap-when-disabled guarantee, enforced: instrumenting every work
//! chunk with a span and a counter must cost less than 2% when the
//! recorder is off.
//!
//! The comparison uses the minimum over several interleaved trials —
//! the minimum is the run least disturbed by the machine, so the ratio
//! is stable enough to assert on in CI where means are not.

use std::hint::black_box;
use std::time::Instant;
use strober_bench::overhead::{run_plain, run_probed};

const ITERS: u64 = 1_000;
const TRIALS: usize = 9;

fn min_nanos(mut f: impl FnMut() -> u64) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the overhead budget is a property of optimized builds; \
              without inlining the probe shims cost a few percent. \
              CI runs this test with --release."
)]
fn disabled_recorder_costs_less_than_two_percent() {
    strober_probe::disable();

    // Warm both paths (page in code, settle the frequency governor).
    black_box(run_plain(ITERS));
    black_box(run_probed(ITERS));

    let plain = min_nanos(|| run_plain(ITERS));
    let probed = min_nanos(|| run_probed(ITERS));

    let ratio = probed as f64 / plain as f64;
    assert!(
        ratio < 1.02,
        "disabled-recorder overhead {:.2}% exceeds the 2% budget \
         (plain {plain} ns, probed {probed} ns)",
        (ratio - 1.0) * 100.0
    );
}

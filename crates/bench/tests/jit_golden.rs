//! Golden equivalence of the JIT-compiled native settle engine on real
//! processor cores and their FAME1 hubs.
//!
//! The randomized sweep lives in `strober-sim`'s own test suite; this one
//! drives the actual workloads `--hub-engine jit` compiles — a bundled
//! core design and its FAME1-transformed hub (scan chains, trace buffers,
//! fire gating) — checking bit-identical step behavior against the
//! interpreted tape. A flow-level run proves the whole sampled pipeline
//! (reservoir draws, scanned snapshots, traced windows) is unchanged by
//! the engine choice, and a store round-trip proves the second session
//! for the same fingerprint never invokes `rustc`.
//!
//! Every case skips (with a printed reason) when no `rustc` is on
//! `PATH` — the same condition under which the production fallback
//! ladder reverts to the interpreter.

use strober::{HubEngine, StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_fame::{transform, FameConfig};
use strober_jit::{rustc_version, JitCompiler};
use strober_platform::{HostModel, OutputView, PlatformConfig};
use strober_rtl::Design;
use strober_sim::Simulator;
use strober_store::Store;

const CYCLES: u64 = 256;

/// Deterministic per-(port, cycle) stimulus (splitmix64 finalizer).
fn stim(port: usize, cycle: u64) -> u64 {
    let mut z = (port as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// True (with a printed reason) when the JIT cases cannot run here.
fn skip() -> bool {
    if rustc_version().is_none() {
        println!("skipping: no rustc on PATH (the production fallback case)");
        return true;
    }
    false
}

/// A scratch directory unique to this test binary invocation.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("strober-jit-golden")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Steps the design for [`CYCLES`] on the interpreted tape and with the
/// native engine attached, comparing every output every cycle plus the
/// final state.
fn assert_jit_transparent(label: &str, design: &Design) {
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    let mut golden = Simulator::new(design).expect("valid");
    let mut trace: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..CYCLES {
        for (i, (name, mask)) in ports.iter().enumerate() {
            golden
                .poke_by_name(name, stim(i, cycle) & mask)
                .expect("port");
        }
        trace.push(
            outputs
                .iter()
                .map(|o| golden.peek_output(o).expect("output"))
                .collect(),
        );
        golden.step();
    }
    let golden_state = golden.state();

    let mut sim = Simulator::new(design).expect("valid");
    JitCompiler::in_temp().attach(&mut sim).expect("jit attach");
    assert_eq!(sim.active_engine_name(), "tape-jit");
    for cycle in 0..CYCLES {
        for (i, (name, mask)) in ports.iter().enumerate() {
            sim.poke_by_name(name, stim(i, cycle) & mask).expect("port");
        }
        for (oi, o) in outputs.iter().enumerate() {
            assert_eq!(
                sim.peek_output(o).expect("output"),
                trace[cycle as usize][oi],
                "{label}, jit engine: output `{o}` diverged at cycle {cycle}"
            );
        }
        sim.step();
    }
    assert_eq!(
        sim.state(),
        golden_state,
        "{label}, jit engine: final state diverged"
    );
}

#[test]
fn jit_is_transparent_on_the_rok_core() {
    if skip() {
        return;
    }
    assert_jit_transparent("rok_tiny", &build_core(&CoreConfig::rok_tiny()));
}

#[test]
fn jit_is_transparent_on_the_boum_core() {
    if skip() {
        return;
    }
    assert_jit_transparent("boum_tiny", &build_core(&CoreConfig::boum_tiny(1)));
}

#[test]
fn jit_is_transparent_on_the_fame1_hub() {
    if skip() {
        return;
    }
    // The hub is the workload `--hub-engine jit` targets: scan-chain
    // padding cats, capture/shift mux cascades, fire gating.
    let design = build_core(&CoreConfig::rok_tiny());
    let fame = transform(&design, &FameConfig::default()).expect("transform");
    assert_jit_transparent("rok_tiny fame1 hub", &fame.hub);
}

struct NoIo;
impl HostModel for NoIo {
    fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
}

fn sampled_config(hub_engine: HubEngine) -> StroberConfig {
    StroberConfig {
        sample_size: 4,
        replay_length: 16,
        warmup: 0,
        platform: PlatformConfig {
            hub_engine,
            ..PlatformConfig::default()
        },
        ..StroberConfig::default()
    }
}

#[test]
fn sampled_flow_is_identical_across_hub_engines() {
    // End-to-end regression for `--hub-engine`: the full sampled run —
    // reservoir draws, scanned snapshots, traced windows — must not
    // change with the settle engine. (The `auto` baseline runs even
    // without rustc; the jit arm is the skippable part.)
    let design = build_core(&CoreConfig::rok_tiny());
    let run_with = |hub_engine: HubEngine| {
        let flow = StroberFlow::new(&design, sampled_config(hub_engine)).expect("prepare");
        flow.run_sampled(&mut NoIo, 20_000).expect("sampled run")
    };
    let interpreted = run_with(HubEngine::Auto);
    if skip() {
        return;
    }
    let jit = run_with(HubEngine::Jit);
    assert_eq!(
        interpreted.snapshots, jit.snapshots,
        "the jit settle engine changed the sampled snapshots"
    );
}

#[test]
fn second_flow_for_the_same_fingerprint_skips_rustc() {
    if skip() {
        return;
    }
    // Warm-start through the artifact store: the first session compiles
    // (provenance `cold`) and persists the dylib; a second session for
    // the same design fingerprint + tape options + rustc version attaches
    // from the stored bytes (`store`) without ever invoking rustc — even
    // with the compiler's own file cache wiped.
    let design = build_core(&CoreConfig::rok_tiny());
    let root = scratch("store");
    let mut store = Store::open(&root).expect("store");

    let first = StroberFlow::new(&design, sampled_config(HubEngine::Jit)).expect("prepare");
    let (provenance, cold_ms) = first
        .prepare_jit(Some(&mut store))
        .expect("jit prepare with rustc present");
    assert_eq!(provenance, "cold", "fresh store must compile");
    assert_eq!(first.hub_engine_name(), "tape-jit");
    drop(first);

    // Wipe the content-addressed file cache so only the store can
    // satisfy the second prepare without a compile.
    std::fs::remove_dir_all(root.join("jit")).expect("wipe file cache");

    let second = StroberFlow::new(&design, sampled_config(HubEngine::Jit)).expect("prepare");
    let (provenance, compile_ms) = second
        .prepare_jit(Some(&mut store))
        .expect("jit prepare from store");
    assert_eq!(
        provenance, "store",
        "second prepare for the same fingerprint must reuse the stored dylib"
    );
    // Store hits report the original compile's wall time as provenance
    // (nothing was compiled now — `rustc` never ran).
    assert_eq!(
        compile_ms, cold_ms,
        "store hits carry the cold compile's wall time"
    );
    assert_eq!(second.hub_engine_name(), "tape-jit");

    // And the restored engine actually runs the sampled flow.
    let outcome = second.run_sampled(&mut NoIo, 20_000).expect("sampled run");
    assert!(!outcome.snapshots.is_empty());
}

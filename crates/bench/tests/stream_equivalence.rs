//! Golden equivalence of the streaming capture→replay pipeline on real
//! processor cores.
//!
//! The flow-level unit tests cover small synthetic designs; this one
//! drives the bundled cores the CLI actually estimates — Rok and Boum —
//! and checks that `replay_streaming` with stopping disabled is
//! bit-identical to the sequential `run_sampled` + `replay_all_batched`
//! path at several worker/lane shapes. Identity must hold for the
//! sampled run itself (reservoir draws, scanned snapshots, traced
//! windows) *and* for every per-snapshot replay result, because the
//! streaming pipeline re-batches snapshots opportunistically and evicted
//! reservoir slots are replayed more than once.

use strober::{RunControl, StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_platform::{HostModel, OutputView};
use strober_rtl::Design;

struct NoIo;
impl HostModel for NoIo {
    fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
}

const MAX_CYCLES: u64 = 20_000;

/// Worker/lane shapes exercised for each core: degenerate (1 worker, 1
/// lane — pure pipelining, no batching), the CLI default-ish shape, and
/// an oversubscribed one where workers outnumber in-flight snapshots.
const SHAPES: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 8)];

fn assert_stream_equivalent(label: &str, design: &Design) {
    let config = StroberConfig {
        sample_size: 4,
        replay_length: 16,
        warmup: 0,
        ..StroberConfig::default()
    };
    let flow = StroberFlow::new(design, config).expect("prepare");

    let golden = flow
        .run_sampled(&mut NoIo, MAX_CYCLES)
        .expect("sampled run");
    let golden_results = flow
        .replay_all_batched(&golden.snapshots, 2, 2)
        .expect("replay");

    for (parallelism, lanes) in SHAPES {
        let (run, results) = flow
            .replay_streaming(
                &mut NoIo,
                MAX_CYCLES,
                parallelism,
                lanes,
                None,
                &RunControl::default(),
            )
            .expect("streaming run");
        assert_eq!(
            run.snapshots, golden.snapshots,
            "{label}, {parallelism}x{lanes}: streaming changed the reservoir"
        );
        assert_eq!(
            (run.windows, run.records, run.target_cycles),
            (golden.windows, golden.records, golden.target_cycles),
            "{label}, {parallelism}x{lanes}: streaming changed the sampled run"
        );
        assert_eq!(
            results, golden_results,
            "{label}, {parallelism}x{lanes}: streaming changed a replay result"
        );
        // Same inputs, same estimator: the final number is bit-identical.
        let a = flow.estimate(&golden, &golden_results).expect("estimate");
        let b = flow.estimate(&run, &results).expect("estimate");
        assert_eq!(
            a.mean_power_mw().to_bits(),
            b.mean_power_mw().to_bits(),
            "{label}, {parallelism}x{lanes}: estimate diverged"
        );
    }
}

#[test]
fn streaming_is_transparent_on_the_rok_core() {
    assert_stream_equivalent("rok_tiny", &build_core(&CoreConfig::rok_tiny()));
}

#[test]
fn streaming_is_transparent_on_the_boum_core() {
    assert_stream_equivalent("boum_tiny", &build_core(&CoreConfig::boum_tiny(1)));
}

//! The partitioned-engine acceptance gate, enforced: at 4 settle workers
//! the parallel engine must deliver at least 1.5x the sequential tape's
//! throughput on a FAME1 hub wide enough to feed 4 workers.
//!
//! Two hubs are measured. The Rok core hub — the workload the flow
//! actually runs — is reported for the BENCH trajectory but not gated:
//! its optimized tape is ~500 ops (~1.3 us per settle), so per-phase
//! barrier costs are the same order as the useful work and the speedup
//! is structurally noise-bound. The gated workload is the hub of a wide
//! 128-block datapath (~5000 ops, 3 barrier phases after min-cut
//! refinement), where the partitioned engine has real parallelism to
//! exploit; see DESIGN.md §14's "which engine when" table.
//!
//! Like the tape-optimizer and batch-replay floors, the comparison uses
//! the minimum over several interleaved trials — the minimum is the run
//! least disturbed by the machine, so the ratio is stable enough to
//! assert on in CI. Hosts with fewer than 4 hardware threads (where 4
//! workers just time-slice one core and every barrier costs context
//! switches) skip the floor assertion and only check completion.

use std::hint::black_box;
use std::time::Instant;
use strober_dsl::Ctx;
use strober_fame::{transform, FameConfig};
use strober_rtl::{Design, Width};
use strober_sim::Simulator;

const CYCLES: u64 = 1024;
const TRIALS: usize = 5;
const WORKERS: usize = 4;
const FLOOR: f64 = 1.5;

fn min_nanos(mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

/// A wide target: `blocks` independent 24-op mixing datapaths sharing
/// one stirred input. After the FAME1 transform (scan chain, trace
/// buffers, fire gating) the hub tape is ~40 ops per block and
/// partitions into ~3 phases at any worker count, because the blocks
/// only couple through the input broadcast and the scan chain's
/// register-to-register hops.
fn wide_design(blocks: u32) -> Design {
    let ctx = Ctx::new("wide");
    let w32 = Width::new(32).expect("static width");
    let stir = ctx.input("stir", w32);
    for b in 0..blocks {
        let a = ctx.reg(&format!("a{b}"), w32, u64::from(b) * 7 + 1);
        let c = ctx.reg(&format!("c{b}"), w32, u64::from(b) * 13 + 3);
        let mut x = &a.out() ^ &stir;
        for k in 0..24 {
            x = if k % 3 == 0 {
                &x + &c.out()
            } else if k % 3 == 1 {
                &x ^ &a.out()
            } else {
                &(&x & &c.out()) | &x
            };
        }
        a.set(&x);
        c.set(&(&c.out() + &a.out()));
        ctx.output(&format!("o{b}"), &x);
    }
    ctx.finish().expect("valid design")
}

/// Builds the design's FAME1 hub twice (sequential + `WORKERS` workers),
/// fires both, and returns `(sequential_ns, parallel_ns)` over [`CYCLES`]
/// steps, printing the partition plan.
fn measure(label: &str, design: &Design) -> (u128, u128) {
    let fame = transform(design, &FameConfig::default()).expect("transform");
    let mut seq = Simulator::new(&fame.hub).expect("hub");
    let mut par = Simulator::new(&fame.hub).expect("hub");
    par.set_threads(WORKERS);
    let fire = seq
        .resolve_port(&fame.meta.control.fire)
        .expect("fire port");
    seq.poke(fire, 1);
    par.poke(fire, 1);

    // Warm both paths (page in code, spawn the pool, settle the
    // frequency governor), then print the plan the numbers depend on.
    seq.step_n(CYCLES);
    par.step_n(CYCLES);
    let stats = par.partition_stats().expect("parallel engine");
    println!(
        "{label} partition plan: {} ops over {} workers, {} levels -> {} phases, \
         cut {} -> {} edges, partition sizes {}..{}",
        stats.ops,
        stats.workers,
        stats.levels,
        stats.phases,
        stats.cut_edges_initial,
        stats.cut_edges,
        stats.min_partition_ops,
        stats.max_partition_ops,
    );

    let sequential = min_nanos(|| {
        seq.step_n(CYCLES);
        black_box(seq.cycle());
    });
    let parallel = min_nanos(|| {
        par.step_n(CYCLES);
        black_box(par.cycle());
    });
    println!(
        "{label}: sequential {sequential} ns, {WORKERS} workers {parallel} ns, \
         speedup {:.2}x",
        sequential as f64 / parallel as f64
    );
    (sequential, parallel)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the 1.5x floor is a property of optimized builds; CI runs \
              this test with --release."
)]
fn partitioned_wide_hub_settle_is_at_least_1_5x_sequential_at_4_workers() {
    // Informational: the production core hub (too small to gate on).
    let rok = strober_cores::build_core(&strober_cores::CoreConfig::rok_tiny());
    measure("rok_tiny hub", &rok);

    let (sequential, parallel) = measure("wide-128 hub", &wide_design(128));
    let speedup = sequential as f64 / parallel as f64;

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < WORKERS {
        println!(
            "host has {cores} hardware thread(s) < {WORKERS} workers; \
             skipping the {FLOOR}x floor assertion (equivalence still ran)"
        );
        return;
    }
    assert!(
        speedup >= FLOOR,
        "partitioned settle speedup {speedup:.2}x is below the {FLOOR}x acceptance \
         floor at {WORKERS} workers (sequential {sequential} ns, parallel {parallel} ns)"
    );
}

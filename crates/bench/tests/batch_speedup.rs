//! The bit-parallel acceptance gate, enforced: 64-lane packed replay
//! must deliver at least 5x the single-thread gate-level throughput of
//! 64 sequential scalar replays on the bundled Rok netlist.
//!
//! Like the probe-overhead check, the comparison uses the minimum over
//! several interleaved trials — the minimum is the run least disturbed
//! by the machine, so the ratio is stable enough to assert on in CI.

use std::hint::black_box;
use std::time::Instant;
use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_gatesim::{BatchSim, GateSim, MAX_LANES};
use strober_platform::{HostModel, OutputView};
use strober_synth::{synthesize, SynthOptions};

const CYCLES: u64 = 512;
const TRIALS: usize = 5;

fn min_nanos(mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the 5x floor is a property of optimized builds; debug \
              builds don't vectorize the word-parallel inner loop. \
              CI runs this test with --release."
)]
fn packed_64_lane_replay_is_at_least_5x_sequential() {
    let design = build_core(&CoreConfig::rok_tiny());
    let netlist = synthesize(&design, &SynthOptions::default())
        .expect("synth")
        .netlist;

    let mut scalars: Vec<GateSim> = (0..MAX_LANES)
        .map(|_| GateSim::new(&netlist).expect("netlist"))
        .collect();
    let mut batch = BatchSim::new(&netlist).expect("netlist");

    // Warm both paths (page in code, settle the frequency governor).
    for s in &mut scalars {
        s.step_n(CYCLES);
    }
    batch.step_n(CYCLES);

    let sequential = min_nanos(|| {
        for s in &mut scalars {
            s.step_n(CYCLES);
        }
        black_box(scalars[MAX_LANES - 1].cycle());
    });
    let packed = min_nanos(|| {
        batch.step_n(CYCLES);
        black_box(batch.cycle());
    });

    let speedup = sequential as f64 / packed as f64;
    println!(
        "64 sequential 1-lane replays: {} ns; one 64-lane packed pass: {} ns; speedup {speedup:.1}x",
        sequential, packed
    );
    assert!(
        speedup >= 5.0,
        "packed replay speedup {speedup:.2}x is below the 5x acceptance floor \
         (sequential {sequential} ns, packed {packed} ns)"
    );
}

struct NoIo;
impl HostModel for NoIo {
    fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing composition is only meaningful on optimized builds; \
              CI runs this test with --release."
)]
fn lanes_compose_with_replay_worker_threads() {
    // The flow-level composition check behind EXPERIMENTS.md's replay
    // table: threads × lanes, measured on real sampled snapshots. The
    // assertion is deliberately loose (batching must not *lose* to the
    // scalar path); the hard 5x floor lives in the microbenchmark above,
    // where snapshot loading and power analysis don't dilute the ratio.
    let design = build_core(&CoreConfig::rok_tiny());
    let config = StroberConfig {
        replay_length: 64,
        sample_size: 32,
        ..StroberConfig::default()
    };
    let flow = StroberFlow::new(&design, config).expect("prepare");
    let run = flow.run_sampled(&mut NoIo, 40_000).expect("sampled run");
    let threads = StroberFlow::default_parallelism();

    let time = |parallelism: usize, lanes: usize| {
        min_nanos(|| {
            black_box(
                flow.replay_all_batched(&run.snapshots, parallelism, lanes)
                    .expect("replay"),
            );
        })
    };
    let t1_l1 = time(1, 1);
    let t1_l64 = time(1, 64);
    let tn_l1 = time(threads, 1);
    let tn_l64 = time(threads, 64);
    println!(
        "replay of {} snapshots: 1 thread x 1 lane {:.2} ms; 1 thread x 64 lanes {:.2} ms; \
         {threads} threads x 1 lane {:.2} ms; {threads} threads x 64 lanes {:.2} ms",
        run.snapshots.len(),
        t1_l1 as f64 / 1e6,
        t1_l64 as f64 / 1e6,
        tn_l1 as f64 / 1e6,
        tn_l64 as f64 / 1e6,
    );
    assert!(
        t1_l64 < t1_l1,
        "batched replay slower than scalar on one thread: {t1_l64} ns vs {t1_l1} ns"
    );
    assert!(
        tn_l64 <= t1_l1,
        "threads x lanes slower than the scalar single-thread baseline"
    );
}

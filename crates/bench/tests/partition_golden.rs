//! Golden equivalence of the partitioned multi-threaded engine on real
//! processor cores and their FAME1 hubs.
//!
//! The randomized sweep lives in `strober-sim`'s own test suite; this one
//! drives the actual workloads `--hub-threads` parallelizes — a bundled
//! core design and its FAME1-transformed hub (scan chains, trace buffers,
//! fire gating) — at 1/2/4/7 settle workers, checking bit-identical step
//! behavior against the sequential engine. A flow-level run proves the
//! whole sampled pipeline (reservoir draws, scanned snapshots, traced
//! windows) is unchanged by the worker count.

use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_fame::{transform, FameConfig};
use strober_platform::{HostModel, OutputView, PlatformConfig};
use strober_rtl::Design;
use strober_sim::Simulator;

const CYCLES: u64 = 256;
const WORKERS: [usize; 4] = [1, 2, 4, 7];

/// Deterministic per-(port, cycle) stimulus (splitmix64 finalizer).
fn stim(port: usize, cycle: u64) -> u64 {
    let mut z = (port as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Steps the design for [`CYCLES`] sequentially and at each worker
/// count, comparing every output every cycle plus the final state.
fn assert_workers_transparent(label: &str, design: &Design) {
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    let mut golden = Simulator::new(design).expect("valid");
    let mut trace: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..CYCLES {
        for (i, (name, mask)) in ports.iter().enumerate() {
            golden
                .poke_by_name(name, stim(i, cycle) & mask)
                .expect("port");
        }
        trace.push(
            outputs
                .iter()
                .map(|o| golden.peek_output(o).expect("output"))
                .collect(),
        );
        golden.step();
    }
    let golden_state = golden.state();

    for workers in WORKERS {
        let mut sim = Simulator::new(design).expect("valid");
        sim.set_threads(workers);
        for cycle in 0..CYCLES {
            for (i, (name, mask)) in ports.iter().enumerate() {
                sim.poke_by_name(name, stim(i, cycle) & mask).expect("port");
            }
            for (oi, o) in outputs.iter().enumerate() {
                assert_eq!(
                    sim.peek_output(o).expect("output"),
                    trace[cycle as usize][oi],
                    "{label}, {workers} workers: output `{o}` diverged at cycle {cycle}"
                );
            }
            sim.step();
        }
        assert_eq!(
            sim.state(),
            golden_state,
            "{label}, {workers} workers: final state diverged"
        );
    }
}

#[test]
fn workers_are_transparent_on_the_rok_core() {
    assert_workers_transparent("rok_tiny", &build_core(&CoreConfig::rok_tiny()));
}

#[test]
fn workers_are_transparent_on_the_boum_core() {
    assert_workers_transparent("boum_tiny", &build_core(&CoreConfig::boum_tiny(1)));
}

#[test]
fn workers_are_transparent_on_the_fame1_hub() {
    // The hub is the workload `--hub-threads` targets: scan-chain padding
    // cats, capture/shift mux cascades, fire gating. Drive it with
    // stimulus on the pass-through target ports and the control ports.
    let design = build_core(&CoreConfig::rok_tiny());
    let fame = transform(&design, &FameConfig::default()).expect("transform");
    assert_workers_transparent("rok_tiny fame1 hub", &fame.hub);
}

struct NoIo;
impl HostModel for NoIo {
    fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
}

#[test]
fn sampled_flow_is_identical_across_hub_thread_counts() {
    // End-to-end regression for `--hub-threads`: the full sampled run —
    // reservoir draws, scanned snapshots, traced windows — must not
    // change with the worker count.
    let design = build_core(&CoreConfig::rok_tiny());
    let run_with = |hub_threads: usize| {
        let config = StroberConfig {
            sample_size: 4,
            replay_length: 16,
            warmup: 0,
            platform: PlatformConfig {
                hub_threads,
                ..PlatformConfig::default()
            },
            ..StroberConfig::default()
        };
        let flow = StroberFlow::new(&design, config).expect("prepare");
        flow.run_sampled(&mut NoIo, 20_000).expect("sampled run")
    };
    let sequential = run_with(1);
    for workers in [2, 4] {
        let parallel = run_with(workers);
        assert_eq!(
            sequential.snapshots, parallel.snapshots,
            "{workers} hub threads changed the sampled snapshots"
        );
    }
}

//! The codegen acceptance gate, enforced: the JIT-compiled native settle
//! engine must deliver at least 3x the sequential interpreted tape's
//! throughput on a FAME1 hub, both single-threaded.
//!
//! Two hubs are measured. The Rok core hub — the workload the flow
//! actually runs — is reported for the BENCH trajectory; the gated
//! workload is the hub of a wide 128-block datapath (~5000 ops), where
//! per-op dispatch and bounds checks dominate the interpreter's time and
//! the straight-line native code has the most to win. Both comparisons
//! are engine-vs-engine on one thread, so the floor holds on any host —
//! including single-core CI runners where the partitioned engine cannot
//! help.
//!
//! Like the tape-optimizer and partition floors, the comparison uses the
//! minimum over several interleaved trials — the minimum is the run
//! least disturbed by the machine, so the ratio is stable enough to
//! assert on in CI. Hosts without `rustc` on `PATH` (where the
//! production ladder falls back to the interpreter anyway) skip with a
//! printed reason.

use std::hint::black_box;
use std::time::Instant;
use strober_dsl::Ctx;
use strober_fame::{transform, FameConfig};
use strober_jit::{rustc_version, JitCompiler};
use strober_rtl::{Design, Width};
use strober_sim::Simulator;

const CYCLES: u64 = 1024;
const TRIALS: usize = 5;
const FLOOR: f64 = 3.0;

fn min_nanos(mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

/// A wide target: `blocks` independent 24-op mixing datapaths sharing
/// one stirred input (the same design the partition floor gates on).
/// After the FAME1 transform the hub tape is ~40 ops per block — enough
/// straight-line work that the interpreter's per-op dispatch overhead
/// is the dominant cost the native code removes.
fn wide_design(blocks: u32) -> Design {
    let ctx = Ctx::new("wide");
    let w32 = Width::new(32).expect("static width");
    let stir = ctx.input("stir", w32);
    for b in 0..blocks {
        let a = ctx.reg(&format!("a{b}"), w32, u64::from(b) * 7 + 1);
        let c = ctx.reg(&format!("c{b}"), w32, u64::from(b) * 13 + 3);
        let mut x = &a.out() ^ &stir;
        for k in 0..24 {
            x = if k % 3 == 0 {
                &x + &c.out()
            } else if k % 3 == 1 {
                &x ^ &a.out()
            } else {
                &(&x & &c.out()) | &x
            };
        }
        a.set(&x);
        c.set(&(&c.out() + &a.out()));
        ctx.output(&format!("o{b}"), &x);
    }
    ctx.finish().expect("valid design")
}

/// Builds the design's FAME1 hub twice (interpreted + JIT-attached, both
/// on one thread), fires both, and returns `(interp_ns, jit_ns)` over
/// [`CYCLES`] steps, printing the compile provenance.
fn measure(label: &str, design: &Design) -> (u128, u128) {
    let fame = transform(design, &FameConfig::default()).expect("transform");
    let mut interp = Simulator::new(&fame.hub).expect("hub");
    let mut jit = Simulator::new(&fame.hub).expect("hub");
    let outcome = JitCompiler::in_temp().attach(&mut jit).expect("jit attach");
    println!(
        "{label}: native engine {} ({} ms compile), {} tape ops",
        outcome.provenance.as_str(),
        outcome.compile_ms,
        interp.pass_stats().ops_final,
    );
    let fire = interp
        .resolve_port(&fame.meta.control.fire)
        .expect("fire port");
    interp.poke(fire, 1);
    jit.poke(fire, 1);

    // Warm both paths (page in code, fault in the dylib, settle the
    // frequency governor).
    interp.step_n(CYCLES);
    jit.step_n(CYCLES);

    let interpreted = min_nanos(|| {
        interp.step_n(CYCLES);
        black_box(interp.cycle());
    });
    let native = min_nanos(|| {
        jit.step_n(CYCLES);
        black_box(jit.cycle());
    });
    println!(
        "{label}: interpreted {interpreted} ns, jit {native} ns, speedup {:.2}x",
        interpreted as f64 / native as f64
    );
    (interpreted, native)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the 3x floor is a property of optimized builds; CI runs \
              this test with --release."
)]
fn jit_hub_settle_is_at_least_3x_the_interpreter_on_one_thread() {
    if rustc_version().is_none() {
        println!("skipping: no rustc on PATH (the production fallback case)");
        return;
    }
    // Informational: the production core hub.
    let rok = strober_cores::build_core(&strober_cores::CoreConfig::rok_tiny());
    measure("rok_tiny hub", &rok);

    let (interpreted, native) = measure("wide-128 hub", &wide_design(128));
    let speedup = interpreted as f64 / native as f64;
    assert!(
        speedup >= FLOOR,
        "jit settle speedup {speedup:.2}x is below the {FLOOR}x acceptance floor \
         (interpreted {interpreted} ns, jit {native} ns)"
    );
}

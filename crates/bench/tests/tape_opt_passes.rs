//! Per-pass golden equivalence of the optimizing tape compiler on real
//! processor cores and their FAME1 hubs.
//!
//! The randomized sweep lives in `strober-sim`'s own test suite; this one
//! drives the actual workloads the flow runs — a bundled core design and
//! its FAME1-transformed hub (scan chains, trace buffers, fire gating) —
//! through every single-pass configuration, checking bit-identical step
//! behavior against the unoptimized identity lowering.

use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_fame::{transform, FameConfig};
use strober_platform::{HostModel, OutputView, PlatformConfig};
use strober_rtl::Design;
use strober_sim::{Simulator, TapeOptions};

const CYCLES: u64 = 256;

/// Deterministic per-(port, cycle) stimulus (splitmix64 finalizer).
fn stim(port: usize, cycle: u64) -> u64 {
    let mut z = (port as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pass_matrix() -> Vec<(&'static str, TapeOptions)> {
    let off = TapeOptions {
        const_fold: false,
        copy_prop: false,
        dce: false,
        fuse: false,
    };
    vec![
        (
            "const_fold",
            TapeOptions {
                const_fold: true,
                ..off
            },
        ),
        (
            "copy_prop",
            TapeOptions {
                copy_prop: true,
                ..off
            },
        ),
        ("dce", TapeOptions { dce: true, ..off }),
        ("fuse", TapeOptions { fuse: true, ..off }),
        ("all", TapeOptions::all()),
    ]
}

/// Steps the design for [`CYCLES`] under the identity lowering and under
/// each pass subset, comparing every output every cycle plus the final
/// architectural state.
fn assert_passes_transparent(label: &str, design: &Design) {
    let ports: Vec<(String, u64)> = design
        .ports()
        .iter()
        .map(|p| (p.name().to_owned(), p.width().mask()))
        .collect();
    let outputs: Vec<String> = design.outputs().iter().map(|(n, _)| n.clone()).collect();

    let mut golden = Simulator::with_options(design, &TapeOptions::none()).expect("valid");
    let mut trace: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..CYCLES {
        for (i, (name, mask)) in ports.iter().enumerate() {
            golden
                .poke_by_name(name, stim(i, cycle) & mask)
                .expect("port");
        }
        trace.push(
            outputs
                .iter()
                .map(|o| golden.peek_output(o).expect("output"))
                .collect(),
        );
        golden.step();
    }
    let golden_state = golden.state();

    for (pass, options) in pass_matrix() {
        let mut sim = Simulator::with_options(design, &options).expect("valid");
        for cycle in 0..CYCLES {
            for (i, (name, mask)) in ports.iter().enumerate() {
                sim.poke_by_name(name, stim(i, cycle) & mask).expect("port");
            }
            for (oi, o) in outputs.iter().enumerate() {
                assert_eq!(
                    sim.peek_output(o).expect("output"),
                    trace[cycle as usize][oi],
                    "{label}, pass `{pass}`: output `{o}` diverged at cycle {cycle}"
                );
            }
            sim.step();
        }
        assert_eq!(
            sim.state(),
            golden_state,
            "{label}, pass `{pass}`: final state diverged"
        );
    }
}

#[test]
fn passes_are_transparent_on_the_rok_core() {
    assert_passes_transparent("rok_tiny", &build_core(&CoreConfig::rok_tiny()));
}

#[test]
fn passes_are_transparent_on_the_fame1_hub() {
    // The hub is the workload the optimizer was built for: scan-chain
    // padding cats, capture/shift mux cascades, fire gating. Drive it
    // with fire held high plus stimulus on the pass-through target ports.
    let design = build_core(&CoreConfig::rok_tiny());
    let fame = transform(&design, &FameConfig::default()).expect("transform");
    assert_passes_transparent("rok_tiny fame1 hub", &fame.hub);
}

#[test]
fn passes_are_transparent_on_the_boum_core() {
    assert_passes_transparent("boum_tiny", &build_core(&CoreConfig::boum_tiny(1)));
}

struct NoIo;
impl HostModel for NoIo {
    fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
}

#[test]
fn sampled_flow_is_identical_with_and_without_the_optimizer() {
    // End-to-end regression for `--no-tape-opt`: the full sampled run —
    // reservoir draws, scanned snapshots, traced windows — must not
    // change when the optimizer is turned off.
    let design = build_core(&CoreConfig::rok_tiny());
    let run_with = |tape_opt: bool| {
        let config = StroberConfig {
            sample_size: 4,
            replay_length: 16,
            warmup: 0,
            platform: PlatformConfig {
                tape_opt,
                ..PlatformConfig::default()
            },
            ..StroberConfig::default()
        };
        let flow = StroberFlow::new(&design, config).expect("prepare");
        flow.run_sampled(&mut NoIo, 20_000).expect("sampled run")
    };
    let optimized = run_with(true);
    let raw = run_with(false);
    assert_eq!(optimized.snapshots, raw.snapshots);
}

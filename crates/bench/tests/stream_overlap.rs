//! The streaming-pipeline acceptance gate, enforced: overlapping
//! gate-level replay with the continuing RTL simulation must finish the
//! whole capture→replay flow in at most 0.9x the sequential wall clock
//! (sampled run, then batched replay of the same reservoir).
//!
//! The savings bound is `min(sim, replay)` — the pipeline can only hide
//! one phase behind the other — so the gated configuration balances the
//! two phases: a reservoir large enough that replay is a comparable
//! share of the run, on the Rok core hub the flow actually simulates.
//! Like the other enforced floors the comparison takes the minimum over
//! interleaved trials, the run least disturbed by the machine. Hosts
//! with fewer than 4 hardware threads (where replay workers time-slice
//! the producer core) skip the floor and only check completion.

use std::time::Instant;
use strober::{RunControl, StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_platform::{HostModel, OutputView};

struct NoIo;
impl HostModel for NoIo {
    fn tick(&mut self, _c: u64, _io: &mut OutputView<'_>) {}
}

const MAX_CYCLES: u64 = 40_000;
const TRIALS: usize = 5;
const WORKERS: usize = 3;
const LANES: usize = 4;
const CEILING: f64 = 0.9;

fn min_nanos(mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the 0.9x overlap ceiling is a property of optimized builds; \
              CI runs this test with --release."
)]
fn streaming_wall_clock_is_at_most_0_9x_the_sequential_pipeline() {
    let design = build_core(&CoreConfig::rok_tiny());
    let config = StroberConfig {
        sample_size: 24,
        replay_length: 96,
        warmup: 0,
        ..StroberConfig::default()
    };
    let flow = StroberFlow::new(&design, config).expect("prepare");

    // Warm every path once — lowering caches, thread spawn, page-in —
    // then measure the phases and the pipeline with the same shapes.
    let warm = flow
        .run_sampled(&mut NoIo, MAX_CYCLES)
        .expect("sampled run");
    flow.replay_all_batched(&warm.snapshots, WORKERS, LANES)
        .expect("replay");
    flow.replay_streaming(
        &mut NoIo,
        MAX_CYCLES,
        WORKERS,
        LANES,
        None,
        &RunControl::default(),
    )
    .expect("streaming run");

    let sim_ns = min_nanos(|| {
        flow.run_sampled(&mut NoIo, MAX_CYCLES)
            .expect("sampled run");
    });
    let replay_ns = min_nanos(|| {
        flow.replay_all_batched(&warm.snapshots, WORKERS, LANES)
            .expect("replay");
    });
    let stream_ns = min_nanos(|| {
        flow.replay_streaming(
            &mut NoIo,
            MAX_CYCLES,
            WORKERS,
            LANES,
            None,
            &RunControl::default(),
        )
        .expect("streaming run");
    });

    let sequential_ns = sim_ns + replay_ns;
    let ratio = stream_ns as f64 / sequential_ns as f64;
    println!(
        "sim {sim_ns} ns + replay {replay_ns} ns = sequential {sequential_ns} ns; \
         streaming {stream_ns} ns ({ratio:.2}x)"
    );

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 4 {
        println!(
            "host has {cores} hardware thread(s); skipping the {CEILING}x \
             ceiling assertion (the pipeline still completed)"
        );
        return;
    }
    assert!(
        ratio <= CEILING,
        "streaming wall clock is {ratio:.2}x the sequential pipeline, above the \
         {CEILING}x acceptance ceiling (sim {sim_ns} ns, replay {replay_ns} ns, \
         streaming {stream_ns} ns)"
    );
}

//! Quick probe: hub tape sizes and partition plans for candidate
//! floor-test workloads. Not part of the suite; run by hand with
//! `cargo run --release -p strober-bench --example hubsize`.

use std::time::Instant;
use strober_dsl::Ctx;
use strober_rtl::Width;

fn wide_design(blocks: u32) -> strober_rtl::Design {
    let ctx = Ctx::new("wide");
    let w32 = Width::new(32).unwrap();
    let stir = ctx.input("stir", w32);
    for b in 0..blocks {
        let a = ctx.reg(&format!("a{b}"), w32, u64::from(b) * 7 + 1);
        let c = ctx.reg(&format!("c{b}"), w32, u64::from(b) * 13 + 3);
        let mut x = &a.out() ^ &stir;
        for k in 0..24 {
            x = if k % 3 == 0 {
                &x + &c.out()
            } else if k % 3 == 1 {
                &x ^ &a.out()
            } else {
                &(&x & &c.out()) | &x
            };
        }
        a.set(&x);
        c.set(&(&c.out() + &a.out()));
        ctx.output(&format!("o{b}"), &x);
    }
    ctx.finish().unwrap()
}

fn main() {
    for blocks in [32u32, 64, 128] {
        let d = wide_design(blocks);
        let fame = strober_fame::transform(&d, &strober_fame::FameConfig::default()).unwrap();
        let mut sim = strober_sim::Simulator::new(&fame.hub).unwrap();
        let fire = sim.resolve_port(&fame.meta.control.fire).unwrap();
        sim.poke(fire, 1);
        sim.step_n(128);
        let t0 = Instant::now();
        sim.step_n(1024);
        let ns = t0.elapsed().as_nanos();
        let mut par = strober_sim::Simulator::new(&fame.hub).unwrap();
        par.set_threads(4);
        let stats = par.partition_stats().unwrap();
        println!(
            "wide-{blocks}: {} ops, seq {:.0} ns/settle ({:.1} ns/op), plan: {} levels -> {} phases, cut {} -> {}, sizes {}..{}",
            stats.ops,
            ns as f64 / 1024.0,
            ns as f64 / 1024.0 / stats.ops as f64,
            stats.levels,
            stats.phases,
            stats.cut_edges_initial,
            stats.cut_edges,
            stats.min_partition_ops,
            stats.max_partition_ops,
        );
    }
}

//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §3 for the index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2` | Table II — processor parameters |
//! | `table3` | Table III — simulation performance with/without sampling |
//! | `table4` | Table IV — simulated/replayed cycles and coverage |
//! | `fig7`   | Fig. 7 — DRAM timing model validation (pointer chase) |
//! | `fig8`   | Fig. 8 — theoretical error bounds vs. actual errors |
//! | `fig9`   | Fig. 9a/9b — power breakdown, CPI and EPI per core |
//! | `fig10`  | Fig. 10 — CPI over time with snapshot timestamps |
//! | `perf_model` | §IV-E worked example and speedup claims |
//! | `speedup` | measured simulator-speed ladder on this machine |
//!
//! Absolute numbers differ from the paper (our substrate is a software
//! simulation of the platform, not a zc706 + TSMC 45 nm flow); the
//! *shapes* — who wins, by what rough factor, where the crossovers sit —
//! are the reproduction targets. EXPERIMENTS.md records paper-vs-measured
//! for every row.

use std::time::Instant;
use strober_cores::CoreConfig;
use strober_dram::{DramConfig, DramModel};
use strober_isa::{assemble, programs};
use strober_rtl::Design;
use strober_sim::Simulator;

/// Memory size every workload assumes.
pub const MEM_BYTES: usize = programs::MEM_BYTES;

/// The scaled workload suite used across the experiment binaries.
///
/// The paper's benchmark lengths (Table III/IV) are scaled down so that
/// full gate-level reference runs finish in minutes; relative lengths
/// between benchmarks are kept roughly faithful to Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// vvadd (Table IV: 200 521 cycles).
    Vvadd,
    /// towers (Table IV: 410 752 cycles).
    Towers,
    /// dhrystone (Table IV: 396 790 cycles).
    Dhrystone,
    /// qsort (Table IV: 187 160 cycles).
    Qsort,
    /// spmv (Table IV: 927 144 cycles).
    Spmv,
    /// dgemm (Table IV: 1 833 075 cycles).
    Dgemm,
    /// CoreMark (case study).
    Coremark,
    /// Linux boot (case study).
    LinuxBoot,
    /// 403.gcc (case study).
    Gcc,
}

impl Workload {
    /// The six microbenchmarks of Table IV / Fig. 8.
    pub const MICRO: [Workload; 6] = [
        Workload::Vvadd,
        Workload::Towers,
        Workload::Dhrystone,
        Workload::Qsort,
        Workload::Spmv,
        Workload::Dgemm,
    ];

    /// The three case-study workloads of Table III / Fig. 9.
    pub const CASE_STUDY: [Workload; 3] = [Workload::Coremark, Workload::LinuxBoot, Workload::Gcc];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Vvadd => "vvadd",
            Workload::Towers => "towers",
            Workload::Dhrystone => "dhrystone",
            Workload::Qsort => "qsort",
            Workload::Spmv => "spmv",
            Workload::Dgemm => "dgemm",
            Workload::Coremark => "coremark",
            Workload::LinuxBoot => "linux-boot",
            Workload::Gcc => "gcc",
        }
    }

    /// The scaled assembly source.
    pub fn source(self) -> String {
        match self {
            Workload::Vvadd => programs::vvadd(640),
            Workload::Towers => programs::towers(14),
            Workload::Dhrystone => programs::dhrystone(2800),
            Workload::Qsort => programs::qsort(768),
            Workload::Spmv => programs::spmv(256, 12),
            Workload::Dgemm => programs::dgemm(36),
            Workload::Coremark => programs::coremark_like(60),
            Workload::LinuxBoot => programs::linux_boot_like(16, 1500),
            Workload::Gcc => programs::gcc_like(40_000, 2048),
        }
    }

    /// Assembled image.
    ///
    /// # Panics
    ///
    /// Panics if the bundled program fails to assemble (a library bug).
    pub fn image(self) -> Vec<u32> {
        assemble(&self.source())
            .expect("bundled workload assembles")
            .words
    }
}

/// The result of running a workload to completion on the fast RTL
/// simulator with the DRAM model.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Cycles to completion.
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Program exit code.
    pub exit_code: u32,
    /// Host wall-clock seconds.
    pub wall_seconds: f64,
}

/// Runs a workload to completion on the bare RTL simulator (no FAME hub),
/// returning timing and the DRAM model used (for its counters).
///
/// # Panics
///
/// Panics if the workload does not halt within `max_cycles`.
pub fn run_on_rtl(
    design: &Design,
    image: &[u32],
    dram_cfg: DramConfig,
    max_cycles: u64,
) -> (RunOutcome, DramModel) {
    let mut sim = Simulator::new(design).expect("core design");
    let mut dram = DramModel::new(dram_cfg, MEM_BYTES);
    dram.load(image, 0);
    let t0 = Instant::now();
    let mut cycles = 0u64;
    while cycles < max_cycles {
        dram.tick_raw(&mut sim);
        cycles += 1;
        if cycles.is_multiple_of(256) && dram.exit_code().is_some() {
            break;
        }
    }
    let exit_code = dram
        .exit_code()
        .unwrap_or_else(|| panic!("workload did not halt in {max_cycles} cycles"));
    (
        RunOutcome {
            cycles,
            instret: dram.instret(),
            exit_code,
            wall_seconds: t0.elapsed().as_secs_f64(),
        },
        dram,
    )
}

/// Builds the three Table II cores.
pub fn table2_cores() -> Vec<(CoreConfig, Design)> {
    CoreConfig::table2()
        .into_iter()
        .map(|c| {
            let d = strober_cores::build_core(&c);
            (c, d)
        })
        .collect()
}

/// Synthetic workloads for measuring the disabled-recorder overhead of
/// `strober-probe` instrumentation (see `benches/probe_overhead.rs` and
/// the asserting smoke check in `tests/probe_overhead.rs`).
pub mod overhead {
    /// One unit of deterministic CPU work (~a few hundred nanoseconds of
    /// integer mixing), sized so a single disabled probe call per unit is
    /// well under the 2% overhead budget while still being fine-grained
    /// enough to notice a recorder that stopped being cheap.
    #[inline(never)]
    pub fn work_chunk(seed: u64) -> u64 {
        let mut x = seed | 1;
        for _ in 0..1_000 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            x ^= x >> 29;
        }
        x
    }

    /// The bare workload: `iters` chunks, no instrumentation.
    pub fn run_plain(iters: u64) -> u64 {
        (0..iters).map(work_chunk).fold(0u64, u64::wrapping_add)
    }

    /// The same workload with one span, one counter update and one
    /// *labeled* counter update per chunk — the densest instrumentation
    /// anywhere in the flow, dimensional series included. With the
    /// recorder disabled each probe call is a single relaxed atomic
    /// load; the labeled call in particular must not render or allocate
    /// its series key when disabled.
    pub fn run_probed(iters: u64) -> u64 {
        let labels = strober_probe::Labels::new().phase("bench");
        (0..iters)
            .map(|i| {
                let _span = strober_probe::span("strober.bench.overhead");
                strober_probe::counter_add("strober.bench.overhead_chunks", 1);
                strober_probe::counter_add_labeled("strober.bench.overhead_labeled", &labels, 1);
                work_chunk(i)
            })
            .fold(0u64, u64::wrapping_add)
    }
}

/// Formats a number with thousands separators for table output.
pub fn fmt_u64(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_assemble() {
        for w in Workload::MICRO.iter().chain(&Workload::CASE_STUDY) {
            let img = w.image();
            assert!(!img.is_empty(), "{}", w.name());
        }
    }

    #[test]
    fn fmt_u64_groups_digits() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1000), "1,000");
        assert_eq!(fmt_u64(1234567), "1,234,567");
    }

    #[test]
    fn a_microbenchmark_runs_to_completion() {
        let design = strober_cores::build_core(&CoreConfig::rok_tiny());
        let (outcome, _) = run_on_rtl(
            &design,
            &Workload::Vvadd.image(),
            DramConfig::default(),
            10_000_000,
        );
        assert!(outcome.cycles > 1000);
        assert!(outcome.instret > 0);
    }
}

//! Fig. 10 — time-resolved CPI of the gcc workload on Rok, sampled at a
//! fixed interval, with the cycles at which Strober captured snapshots
//! marked. Demonstrates that each snapshot carries a timestamp, so power
//! and performance can be correlated at specific execution points.

use strober::{StroberConfig, StroberFlow};
use strober_bench::{Workload, MEM_BYTES};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_platform::{HostModel, OutputView};

/// Wraps the DRAM model and records a CPI sample every `interval` cycles
/// (the paper samples every 100M cycles of a 73.39G-cycle run; we sample
/// every 1/80th of our scaled run).
struct CpiProbe {
    dram: DramModel,
    interval: u64,
    last_cycle: u64,
    last_instret: u64,
    series: Vec<(u64, f64)>,
}

impl HostModel for CpiProbe {
    fn tick(&mut self, cycle: u64, io: &mut OutputView<'_>) {
        self.dram.tick(cycle, io);
        if cycle > 0 && cycle.is_multiple_of(self.interval) {
            let instret = self.dram.instret();
            let di = instret.saturating_sub(self.last_instret);
            if di > 0 {
                let cpi = (cycle - self.last_cycle) as f64 / di as f64;
                self.series.push((cycle, cpi));
            }
            self.last_cycle = cycle;
            self.last_instret = instret;
        }
    }

    fn is_done(&self) -> bool {
        self.dram.exit_code().is_some()
    }
}

fn main() {
    let design = build_core(&CoreConfig::rok());
    let flow = StroberFlow::new(
        &design,
        StroberConfig {
            replay_length: 128,
            sample_size: 30,
            ..StroberConfig::default()
        },
    )
    .expect("flow");

    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(&Workload::Gcc.image(), 0);
    let mut probe = CpiProbe {
        dram,
        interval: 25_000,
        last_cycle: 0,
        last_instret: 0,
        series: Vec::new(),
    };
    let run = flow.run_sampled(&mut probe, 200_000_000).expect("run");
    assert!(probe.dram.exit_code().is_some(), "gcc must halt");

    let mut snaps: Vec<u64> = run.snapshots.iter().map(|s| s.cycle).collect();
    snaps.sort_unstable();

    println!(
        "Fig. 10: CPI of gcc on Rok, sampled every {} cycles ({} cycles total)",
        probe.interval, run.target_cycles
    );
    println!("('*' marks intervals containing a Strober snapshot timestamp)");
    println!("{:>12} {:>8}  profile", "cycle", "CPI");
    let max_cpi = probe.series.iter().map(|&(_, c)| c).fold(0.0f64, f64::max);
    for &(cycle, cpi) in &probe.series {
        let lo = cycle - probe.interval;
        let has_snap = snaps.iter().any(|&s| s >= lo && s < cycle);
        let bar_len = (cpi / max_cpi * 50.0).round() as usize;
        println!(
            "{:>12} {:>8.3} {}{}",
            cycle,
            cpi,
            if has_snap { "*" } else { " " },
            "#".repeat(bar_len)
        );
    }
    println!();
    println!("snapshot timestamps: {snaps:?}");
}

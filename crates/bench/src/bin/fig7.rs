//! Fig. 7 — DRAM timing model validation: a pointer chase through
//! increasing array sizes exposes the L1 load-to-load latency and the
//! off-chip latency; sweeping the simulated DRAM latency moves only the
//! off-chip plateau, exactly as in the paper.

use strober_bench::MEM_BYTES;
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_isa::{assemble, programs};
use strober_sim::Simulator;

fn chase(design: &strober_rtl::Design, list_bytes: u32, dram_latency: u64) -> f64 {
    let hops = 2048;
    // Stride of one cache block so every hop leaves the current line.
    let src = programs::pointer_chase(list_bytes / 4, 4, hops);
    let image = assemble(&src).expect("chase assembles");
    let mut sim = Simulator::new(design).expect("core");
    let mut dram = DramModel::new(
        DramConfig {
            cas_latency_cycles: dram_latency,
            ..DramConfig::default()
        },
        MEM_BYTES,
    );
    dram.load(&image.words, 0);
    let mut guard = 0u64;
    while dram.exit_code().is_none() {
        dram.tick_raw(&mut sim);
        guard += 1;
        assert!(guard < 200_000_000, "chase did not finish");
    }
    f64::from(dram.exit_code().unwrap()) / f64::from(hops)
}

fn main() {
    let design = build_core(&CoreConfig::rok());
    let latencies = [50u64, 100, 200];
    let sizes_kib = [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

    println!("Fig. 7: pointer-chase load-to-load latency (cycles/load) on Rok");
    println!("(16 KiB D$; the off-chip plateau tracks the simulated DRAM latency)");
    print!("{:>10}", "size KiB");
    for l in latencies {
        print!("  lat={l:>4}");
    }
    println!();
    for s in sizes_kib {
        let bytes = (s * 1024.0) as u32;
        print!("{s:>10.2}");
        for l in latencies {
            let cyc = chase(&design, bytes, l);
            print!("  {cyc:>8.1}");
        }
        println!();
    }
    println!();
    println!("Expected shape: flat L1-hit latency while the list fits in the");
    println!("16 KiB D$, then a plateau at roughly the DRAM latency beyond it.");
}

//! Fig. 9 — the case study: average-power breakdown with error bounds
//! (9a) and CPI/EPI (9b) for the three cores running CoreMark-like,
//! Linux-boot-like and gcc-like workloads, using 30 random snapshots per
//! run plus the counter-based DRAM power model.

use std::collections::BTreeMap;
use strober::{StroberConfig, StroberFlow};
use strober_bench::{Workload, MEM_BYTES};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel, LpddrPowerParams};

/// Maps a hierarchical region to its Fig. 9a display component.
fn component(region: &str) -> &'static str {
    let head = region.split('/').next().unwrap_or(region);
    match head {
        "fetch" | "btb" => "Fetch Unit",
        "decode" => "Decode Logic",
        "regfile" => "Register File",
        "issue" => "Issue Logic",
        "alu" | "wb" => "Integer Unit",
        "mul" => "Multiplier (FPU analog)",
        "lsu" => "LSU",
        "rob" => "ROB",
        "icache" => "L1 I-cache",
        "dcache" => "L1 D-cache",
        "uncore" => "Uncore",
        _ => "Misc",
    }
}

const COMPONENTS: [&str; 13] = [
    "Fetch Unit",
    "Decode Logic",
    "Register File",
    "Issue Logic",
    "Integer Unit",
    "Multiplier (FPU analog)",
    "LSU",
    "ROB",
    "L1 I-cache",
    "L1 D-cache",
    "Uncore",
    "Misc",
    "DRAM",
];

struct Cell {
    breakdown: BTreeMap<&'static str, f64>,
    total_mw: f64,
    bound_mw: f64,
    cpi: f64,
    epi_nj: f64,
}

fn main() {
    let configs = [
        CoreConfig::rok(),
        CoreConfig::boum_1w(),
        CoreConfig::boum_2w(),
    ];
    let dram_params = LpddrPowerParams::lpddr2_s4();

    let mut cells: BTreeMap<(String, String), Cell> = BTreeMap::new();

    for cfg in &configs {
        let design = build_core(cfg);
        let flow = StroberFlow::new(
            &design,
            StroberConfig {
                replay_length: 128,
                sample_size: 30,
                ..StroberConfig::default()
            },
        )
        .expect("flow");
        for w in Workload::CASE_STUDY {
            let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
            dram.load(&w.image(), 0);
            let run = flow.run_sampled(&mut dram, 100_000_000).expect("run");
            assert!(
                dram.exit_code().is_some(),
                "{} on {} must halt",
                w.name(),
                cfg.name
            );
            let results = flow.replay_all(&run.snapshots, 8).expect("replay");
            let estimate = flow.estimate(&run, &results).expect("estimate");

            let mut breakdown: BTreeMap<&'static str, f64> = BTreeMap::new();
            for (region, mw) in estimate.per_region_mw() {
                *breakdown.entry(component(region)).or_insert(0.0) += mw;
            }
            let dram_power = dram_params
                .average_power_mw(dram.counters(), run.target_cycles, 1.0e9)
                .total_mw();
            breakdown.insert("DRAM", dram_power);

            let instret = dram.instret();
            let cpi = run.target_cycles as f64 / instret as f64;
            let total_mw = estimate.mean_power_mw() + dram_power;
            // EPI: total (core + DRAM) energy over retired instructions.
            let epi_nj =
                total_mw * 1e-3 * (run.target_cycles as f64 / 1.0e9) / instret as f64 * 1e9;

            eprintln!(
                "[{} / {}: {} cycles, {} instret, {} records]",
                cfg.name,
                w.name(),
                run.target_cycles,
                instret,
                run.records
            );
            cells.insert(
                (w.name().to_owned(), cfg.name.clone()),
                Cell {
                    breakdown,
                    total_mw,
                    bound_mw: estimate.interval().half_width(),
                    cpi,
                    epi_nj,
                },
            );
        }
    }

    println!("Fig. 9a: power breakdown (mW), 30 random snapshots per run");
    for w in Workload::CASE_STUDY {
        println!("\n== {} ==", w.name());
        print!("{:<26}", "component");
        for cfg in &configs {
            print!(" {:>10}", cfg.name);
        }
        println!();
        for comp in COMPONENTS {
            print!("{comp:<26}");
            for cfg in &configs {
                let c = &cells[&(w.name().to_owned(), cfg.name.clone())];
                print!(" {:>10.2}", c.breakdown.get(comp).copied().unwrap_or(0.0));
            }
            println!();
        }
        print!("{:<26}", "TOTAL (±99% bound)");
        for cfg in &configs {
            let c = &cells[&(w.name().to_owned(), cfg.name.clone())];
            print!(" {:>6.1}±{:<3.1}", c.total_mw, c.bound_mw);
        }
        println!();
    }

    println!("\nFig. 9b: CPI and EPI (nJ/instruction)");
    print!("{:<12}", "");
    for cfg in &configs {
        print!(" {:>9}-CPI {:>9}-EPI", cfg.name, cfg.name);
    }
    println!();
    for w in Workload::CASE_STUDY {
        print!("{:<12}", w.name());
        for cfg in &configs {
            let c = &cells[&(w.name().to_owned(), cfg.name.clone())];
            print!(" {:>13.2} {:>13.2}", c.cpi, c.epi_nj);
        }
        println!();
    }
    println!();
    println!("Expected shapes (paper): the wide core draws the most power; on");
    println!("compute-heavy code it has the best CPI; the in-order core is the");
    println!("most energy-efficient (lowest EPI); DRAM power grows with memory");
    println!("footprint (linux-boot, gcc).");
}

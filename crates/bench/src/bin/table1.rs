//! Table I — the statistical parameters of §III-A, demonstrated live on a
//! worked example: a known population is sampled and every Table I
//! quantity is computed with the `strober-sampling` implementations of
//! eqs. 1–8.

use rand::rngs::StdRng;
use rand::SeedableRng;
use strober_sampling::{Confidence, PopulationStats, Reservoir, SampleStats};

fn main() {
    // A synthetic population: per-window power of a two-phase workload.
    let population: Vec<f64> = (0..10_000)
        .map(|i| {
            let base = if (i / 500) % 2 == 0 { 80.0 } else { 110.0 };
            base + ((i * 37) % 17) as f64 * 0.6
        })
        .collect();
    let pop = PopulationStats::from_measurements(&population).expect("nonempty");

    // Draw a sample of n = 30 by reservoir sampling (as the flow does).
    let mut rng = StdRng::seed_from_u64(1);
    let mut reservoir = Reservoir::new(30);
    for &x in &population {
        reservoir.offer(x, &mut rng);
    }
    let sample_values = reservoir.into_sample();
    let sample = SampleStats::from_measurements(&sample_values).expect("n >= 2");
    let ci = sample.confidence_interval(population.len(), Confidence::C99);

    println!("Table I: statistical parameters (live on a worked example)");
    println!("{:<34} {:>14} {:>14}", "", "population", "sample");
    println!(
        "{:<34} {:>14} {:>14}",
        "size (N / n)",
        pop.size(),
        sample.size()
    );
    println!(
        "{:<34} {:>14.3} {:>14.3}",
        "mean (X / x)  [eq. 1 / eq. 3]",
        pop.mean(),
        sample.mean()
    );
    println!(
        "{:<34} {:>14.3} {:>14.3}",
        "variance (s2 / s2_x)  [eq. 2 / 4]",
        pop.variance(),
        sample.variance()
    );
    println!(
        "{:<34} {:>14} {:>14.3}",
        "population variance est.  [eq. 5]",
        "-",
        sample.population_variance_estimate(pop.size())
    );
    println!(
        "{:<34} {:>14} {:>14.4}",
        "sampling variance Var(x)  [eq. 6]",
        "-",
        sample.sampling_variance(pop.size())
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "confidence level (1 - a)", "-", "99%"
    );
    println!(
        "{:<34} {:>14} {:>9.3}±{:.3}",
        "confidence interval  [eq. 7]",
        "-",
        ci.mean(),
        ci.half_width()
    );
    println!();
    println!(
        "interval covers the true mean: {} (|x - X| = {:.3}, half width = {:.3})",
        if ci.contains(pop.mean()) { "yes" } else { "NO" },
        (sample.mean() - pop.mean()).abs(),
        ci.half_width()
    );
    let n_min = sample
        .minimum_sample_size(0.05, Confidence::C999)
        .expect("nonzero mean");
    println!(
        "minimum n for 5% error at 99.9% confidence [eq. 8]: {n_min} \
(the abstract's guarantee)"
    );
}

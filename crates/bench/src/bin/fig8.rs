//! Fig. 8 — power validation: for each microbenchmark on Rok, the *true*
//! average power is computed by running the entire benchmark on gate-level
//! simulation; the sample-based estimate (30 random 128-cycle snapshots)
//! is repeated five times, and the actual error is compared against the
//! theoretical 99%-confidence error bound.

use std::time::Instant;
use strober::{StroberConfig, StroberFlow};
use strober_bench::{Workload, MEM_BYTES};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_gatesim::GateSim;
use strober_power::PowerAnalyzer;

fn main() {
    let design = build_core(&CoreConfig::rok());
    let base_config = StroberConfig {
        replay_length: 128,
        sample_size: 30,
        ..StroberConfig::default()
    };
    let flow = StroberFlow::new(&design, base_config.clone()).expect("flow");
    let analyzer = PowerAnalyzer::new(&flow.synth().netlist, flow.library(), 1.0e9);

    println!("Fig. 8: theoretical 99% error bound vs actual error (Rok, n=30, L=128)");
    println!(
        "{:<11} {:>4} {:>12} {:>12} {:>9} {:>9} {:>7}",
        "benchmark", "rep", "true mW", "est mW", "bound%", "actual%", "within"
    );

    let mut within = 0usize;
    let mut total = 0usize;
    for w in Workload::MICRO {
        let image = w.image();

        // Ground truth: the entire benchmark at gate level.
        let t0 = Instant::now();
        let mut gsim = GateSim::new(&flow.synth().netlist).expect("netlist");
        let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
        dram.load(&image, 0);
        let mut cycles = 0u64;
        while dram.exit_code().is_none() {
            dram.tick_gate(&mut gsim);
            cycles += 1;
            assert!(cycles < 60_000_000, "{} did not halt", w.name());
        }
        let true_power = analyzer.analyze(&gsim.activity()).total_mw();
        let truth_secs = t0.elapsed().as_secs_f64();

        for rep in 1..=5 {
            let config = StroberConfig {
                seed: 0xF1_68 + rep,
                ..base_config.clone()
            };
            let flow_rep = StroberFlow::new(&design, config).expect("flow");
            let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
            dram.load(&image, 0);
            let run = flow_rep
                .run_sampled(&mut dram, 100_000_000)
                .expect("sampled run");
            assert!(dram.exit_code().is_some(), "{} hub run must halt", w.name());
            let results = flow_rep
                .replay_all(&run.snapshots, 8)
                .expect("replays verify");
            let est = flow_rep.estimate(&run, &results).expect("estimate");

            let bound = est.interval().relative_error_bound() * 100.0;
            let actual = (est.mean_power_mw() - true_power).abs() / true_power * 100.0;
            let ok = actual <= bound;
            within += usize::from(ok);
            total += 1;
            println!(
                "{:<11} {:>4} {:>12.3} {:>12.3} {:>8.2}% {:>8.2}% {:>7}",
                w.name(),
                rep,
                true_power,
                est.mean_power_mw(),
                bound,
                actual,
                if ok { "yes" } else { "NO" }
            );
        }
        eprintln!(
            "[{}: ground truth {:.1}s for {} cycles]",
            w.name(),
            truth_secs,
            cycles
        );
    }
    println!();
    println!(
        "{within}/{total} repetitions within the 99% bound (occasional excursions are \
expected, as in the paper's towers/qsort cases; all errors should stay small)"
    );
}

//! Exports the Verilog artifacts of the replay flow (Fig. 5): behavioural
//! Verilog for the Rok RTL and structural Verilog for its synthesized
//! gate-level netlist, plus the FAME metadata JSON, into
//! `target/strober-export/`.

use std::fs;
use std::path::Path;
use strober_cores::{build_core, CoreConfig};
use strober_fame::{transform, FameConfig};
use strober_gates::verilog::to_structural_verilog;
use strober_rtl::verilog::to_verilog;
use strober_synth::{synthesize, SynthOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("target/strober-export");
    fs::create_dir_all(out)?;

    let design = build_core(&CoreConfig::rok());
    let rtl_v = to_verilog(&design)?;
    fs::write(out.join("rok.v"), &rtl_v)?;

    let synth = synthesize(&design, &SynthOptions::default())?;
    let gate_v = to_structural_verilog(&synth.netlist)?;
    fs::write(out.join("rok_netlist.v"), &gate_v)?;

    let fame = transform(&design, &FameConfig::default())?;
    fs::write(out.join("rok_fame_meta.json"), fame.meta.to_json())?;
    let hub_v = to_verilog(&fame.hub)?;
    fs::write(out.join("rok_hub.v"), &hub_v)?;

    println!("wrote:");
    for (name, text) in [
        ("rok.v (behavioural RTL)", &rtl_v),
        ("rok_netlist.v (structural gate-level)", &gate_v),
        ("rok_hub.v (FAME1-instrumented hub)", &hub_v),
    ] {
        println!(
            "  target/strober-export/{:<42} {:>8} lines",
            name,
            text.lines().count()
        );
    }
    println!("  target/strober-export/rok_fame_meta.json (host-driver metadata)");
    Ok(())
}

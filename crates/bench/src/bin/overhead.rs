//! Instrumentation overhead of the Strober transform — the paper's FPGA
//! resource-overhead concern (§II: Strober "minimizes FPGA resource
//! overhead" relative to approaches that build power models into the
//! fabric). Reports target-vs-hub sizes for several designs and the
//! snapshot capture cost implied by the scan chains.

use strober_bench::fmt_u64;
use strober_cores::{build_core, CoreConfig};
use strober_dsl::Ctx;
use strober_fame::{transform, FameConfig};
use strober_rtl::{Design, Width};

fn gcd() -> Design {
    let ctx = Ctx::new("gcd");
    let w16 = Width::new(16).unwrap();
    let a_in = ctx.input("a", w16);
    let b_in = ctx.input("b", w16);
    let start = ctx.input("start", Width::BIT);
    let x = ctx.reg("x", w16, 0);
    let y = ctx.reg("y", w16, 0);
    let gt = y.out().ltu(&x.out());
    x.set(&start.mux(&a_in, &gt.mux(&(&x.out() - &y.out()), &x.out())));
    y.set(&start.mux(&b_in, &gt.mux(&y.out(), &(&y.out() - &x.out()))));
    ctx.output("result", &x.out());
    ctx.output("done", &y.out().eq_lit(0));
    ctx.finish().unwrap()
}

fn main() {
    let designs: Vec<(String, Design)> = vec![
        ("gcd".to_owned(), gcd()),
        ("rok".to_owned(), build_core(&CoreConfig::rok())),
        ("boum-1w".to_owned(), build_core(&CoreConfig::boum_1w())),
        ("boum-2w".to_owned(), build_core(&CoreConfig::boum_2w())),
    ];

    println!("FAME1 + scan-chain instrumentation overhead (L = 128):");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>12} {:>12} {:>12}",
        "design", "tgt nodes", "hub nodes", "node x", "tgt state", "hub state", "capture cyc"
    );
    for (name, design) in &designs {
        let fame = transform(design, &FameConfig::default()).expect("transform");
        let node_ratio = fame.hub.node_count() as f64 / design.node_count() as f64;
        println!(
            "{:<10} {:>12} {:>12} {:>8.2}x {:>12} {:>12} {:>12}",
            name,
            fmt_u64(design.node_count() as u64),
            fmt_u64(fame.hub.node_count() as u64),
            node_ratio,
            fmt_u64(design.state_bits()),
            fmt_u64(fame.hub.state_bits()),
            fmt_u64(fame.meta.snapshot_capture_cycles()),
        );
    }
    println!();
    println!("Hub state grows by the shadow scan chain (64 bits per register),");
    println!("the I/O trace rings (width x 128 per port) and counters; capture");
    println!("cost is dominated by streaming the SRAM contents (the caches).");
    println!("No power model lives on the 'FPGA' side at all, which is the");
    println!("paper's point versus on-fabric power-model approaches.");
}

//! §IV-E — the analytic simulation-performance model's worked example:
//! 100 billion cycles of a two-way BOOM, 100 snapshots, 10 parallel
//! gate-level instances.

use strober::PerfModel;

fn main() {
    let m = PerfModel::paper_example();
    let n: u64 = 100_000_000_000;

    println!(
        "Section IV-E worked example (N = 100e9 cycles, n = {}, L = {}, P = {}):",
        m.n, m.replay_length, m.parallelism
    );
    println!("  T_FPGAsyn          = {:>10.0} s", m.t_fpga_syn_s);
    println!(
        "  T_run    = N/K_f   = {:>10.0} s   (paper: 27778 s)",
        m.t_run_s(n)
    );
    println!(
        "  records  ~ 2n ln((N/L)/n) = {:>6.0}   (paper: ~2763)",
        m.expected_records(n)
    );
    println!(
        "  T_sample           = {:>10.0} s   (paper: 3592 s)",
        m.t_sample_s(n)
    );
    println!(
        "  T_replay           = {:>10.0} s   (paper: 2333 s, omitting T_load)",
        m.t_replay_s()
    );
    let paper_sum = m.t_run_s(n) + m.t_sample_s(n) + m.t_replay_s();
    println!(
        "  T_run+T_sample+T_replay = {:>7.0} s = {:.1} h  (paper: 33703 s = 9.4 h)",
        paper_sum,
        paper_sum / 3600.0
    );
    println!(
        "  T_overall (formula, incl. FPGA synthesis) = {:.0} s = {:.1} h",
        m.t_overall_s(n),
        m.t_overall_s(n) / 3600.0
    );
    println!();
    println!("Comparison points:");
    println!(
        "  microarchitectural software simulator (300 kHz): {:>8.2} days (paper: 3.86 days)",
        m.t_uarch_sim_s(n) / 86_400.0
    );
    println!(
        "  commercial gate-level simulation (12 Hz):        {:>8.1} years (paper: 264 years)",
        m.t_gate_level_s(n) / (365.0 * 86_400.0)
    );
    println!();
    println!("Speedups of the Strober flow:");
    println!(
        "  vs gate-level simulation: {:>10.0}x  (abstract: >= 4 orders of magnitude)",
        m.speedup_vs_gate_level(n)
    );
    println!(
        "  vs fast (300 kHz) microarchitectural simulator: {:>6.1}x",
        m.speedup_vs_uarch(n)
    );
    let slow = PerfModel {
        uarch_sim_hz: 20.0e3,
        ..PerfModel::paper_example()
    };
    println!(
        "  vs detailed (20 kHz) microarchitectural simulator: {:>5.0}x  (abstract: >= 2 orders)",
        slow.speedup_vs_uarch(n)
    );
}

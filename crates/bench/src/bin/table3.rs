//! Table III — simulation performance with and without sampling on the
//! two-way Boum processor.
//!
//! Two sections:
//! 1. **Paper scale (modelled)** — the paper's own cycle counts (0.5, 3.92
//!    and 73.39 billion cycles) with record counts drawn from the *exact*
//!    reservoir process (skip-based simulation) and times from the
//!    platform cost model with the paper's constants.
//! 2. **Scaled (measured)** — the bundled workloads run end-to-end on this
//!    machine, with and without sampling, reporting both measured host
//!    wall-clock and modelled platform time.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use strober::{StroberConfig, StroberFlow};
use strober_bench::{fmt_u64, Workload, MEM_BYTES};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_fame::{transform, FameConfig};
use strober_platform::{PlatformConfig, ZynqHost};
use strober_sampling::RecordCountSim;

fn main() {
    let cfg = PlatformConfig::default();

    // ---- paper scale, modelled -----------------------------------------------
    println!("Table III (paper scale, modelled): Boum-2w, n = 100, L = 1000");
    println!(
        "{:<12} {:>14} {:>9} {:>15} {:>15}",
        "benchmark", "cycles (1e9)", "records", "with sampling", "w/o sampling"
    );
    let paper_rows: &[(&str, f64, u64, f64, f64)] = &[
        // name, cycles 1e9, paper records, paper with (min), paper without (min)
        ("LinuxBoot", 0.5, 980, 12.88, 3.68),
        ("Coremark", 3.92, 1116, 32.80, 11.00),
        ("gcc", 73.39, 1497, 344.00, 312.25),
    ];
    // Snapshot capture cost on the real Boum-2w hub.
    let design = build_core(&CoreConfig::boum_2w());
    let fame = transform(
        &design,
        &FameConfig {
            replay_length: 1000,
            warmup: 0,
        },
    )
    .expect("transform");
    let capture_cycles = fame.meta.snapshot_capture_cycles() + 1000;
    let mut rng = StdRng::seed_from_u64(3);
    let sim = RecordCountSim::new(100);
    for &(name, giga, paper_records, paper_with, paper_without) in paper_rows {
        let cycles = (giga * 1e9) as u64;
        let windows = cycles / 1000;
        let records = sim.simulate_records(windows, &mut rng);
        let syncs = cycles / cfg.sync_period;
        let base_s = (cycles + syncs * cfg.sync_penalty_cycles) as f64 / cfg.raw_clock_hz;
        let with_s = base_s
            + records as f64
                * (cfg.record_fixed_seconds + capture_cycles as f64 / cfg.raw_clock_hz);
        println!(
            "{:<12} {:>14.2} {:>9} {:>9.2} min {:>9.2} min   (paper: {} rec, {:.2}/{:.2} min)",
            name,
            giga,
            records,
            with_s / 60.0,
            base_s / 60.0,
            paper_records,
            paper_with,
            paper_without
        );
    }

    // ---- scaled, measured --------------------------------------------------------
    println!();
    println!("Table III (scaled workloads, measured on this machine): Boum-2w, n = 30, L = 128");
    println!(
        "{:<12} {:>12} {:>9} {:>12} {:>12} {:>11} {:>11}",
        "benchmark", "cycles", "records", "with (wall)", "w/o (wall)", "with (mod)", "w/o (mod)"
    );
    let flow = StroberFlow::new(
        &design,
        StroberConfig {
            replay_length: 128,
            sample_size: 30,
            ..StroberConfig::default()
        },
    )
    .expect("flow");
    for w in Workload::CASE_STUDY {
        let image = w.image();

        // With sampling.
        let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
        dram.load(&image, 0);
        let t0 = Instant::now();
        let run = flow.run_sampled(&mut dram, 200_000_000).expect("run");
        let with_wall = t0.elapsed().as_secs_f64();
        assert!(dram.exit_code().is_some(), "{} must halt", w.name());

        // Without sampling: plain host run of the same hub.
        let mut host = ZynqHost::new(&fame, cfg.clone()).expect("host");
        let mut dram2 = DramModel::new(DramConfig::default(), MEM_BYTES);
        dram2.load(&image, 0);
        let t0 = Instant::now();
        host.run(&mut dram2, 200_000_000).expect("run");
        let without_wall = t0.elapsed().as_secs_f64();

        println!(
            "{:<12} {:>12} {:>9} {:>10.2}s {:>10.2}s {:>10.3}s {:>10.3}s",
            w.name(),
            fmt_u64(run.target_cycles),
            run.records,
            with_wall,
            without_wall,
            run.stats.modeled_seconds,
            host.stats().modeled_seconds,
        );
    }
    println!();
    println!("Shape checks: record counts grow only logarithmically with length;");
    println!("the sampling overhead shrinks relatively as runs get longer.");
}

//! Table II — processor parameters of the three evaluated cores, printed
//! from the live configurations (plus the synthesized size of each, the
//! "accurate timing and area" the paper gets from its CAD tools).

use strober_bench::table2_cores;
use strober_gates::CellLibrary;
use strober_synth::{synthesize, SynthOptions};

fn main() {
    let lib = CellLibrary::generic_45nm();
    println!("Table II: Processor Parameters");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "", "Rok", "Boum-1w", "Boum-2w"
    );
    let cores = table2_cores();
    let row = |label: &str, f: &dyn Fn(usize) -> String| {
        println!("{:<22} {:>10} {:>10} {:>10}", label, f(0), f(1), f(2));
    };
    row("Fetch-width", &|i| cores[i].0.width.to_string());
    row("Issue-width", &|i| cores[i].0.width.to_string());
    row("Issue slots", &|i| {
        if cores[i].0.issue_slots == 0 {
            "-".to_owned()
        } else {
            cores[i].0.issue_slots.to_string()
        }
    });
    row("ROB size", &|i| {
        if cores[i].0.rob_entries == 0 {
            "-".to_owned()
        } else {
            cores[i].0.rob_entries.to_string()
        }
    });
    row("Physical registers", &|i| {
        cores[i].0.physical_regs.to_string()
    });
    row("L1 I$ / D$", &|i| {
        format!(
            "{}K/{}K",
            cores[i].0.icache_bytes / 1024,
            cores[i].0.dcache_bytes / 1024
        )
    });
    row("BTB entries", &|i| {
        if cores[i].0.btb_entries == 0 {
            "-".to_owned()
        } else {
            cores[i].0.btb_entries.to_string()
        }
    });
    println!();
    println!("Synthesized implementation (generic 45nm library):");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "", "Rok", "Boum-1w", "Boum-2w"
    );
    let synths: Vec<_> = cores
        .iter()
        .map(|(_, d)| synthesize(d, &SynthOptions::default()).expect("synthesis"))
        .collect();
    row("Gates", &|i| {
        synths[i].netlist.comb_gate_count().to_string()
    });
    row("Flip-flops", &|i| synths[i].netlist.dff_count().to_string());
    row("SRAM macros", &|i| {
        synths[i].netlist.srams().len().to_string()
    });
    row("State bits", &|i| cores[i].1.state_bits().to_string());
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0}",
        "Area (um^2)",
        synths[0].netlist.area_um2(&lib),
        synths[1].netlist.area_um2(&lib),
        synths[2].netlist.area_um2(&lib)
    );
}

//! Ablation of the sampling parameters (the §III-A design choices):
//! how the theoretical error bound and the actual error respond to the
//! sample size `n` (eq. 8 predicts bound ∝ 1/√n) and to the replay
//! length `L` (longer windows average out within-window variance but
//! cover fewer distinct points for the same replay budget).

use strober::{StroberConfig, StroberFlow};
use strober_bench::{Workload, MEM_BYTES};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_gatesim::GateSim;
use strober_power::PowerAnalyzer;

fn main() {
    let design = build_core(&CoreConfig::rok());
    let image = Workload::Dhrystone.image();

    // Ground truth once.
    let base_flow = StroberFlow::new(&design, StroberConfig::default()).expect("flow");
    let analyzer = PowerAnalyzer::new(&base_flow.synth().netlist, base_flow.library(), 1.0e9);
    let mut gsim = GateSim::new(&base_flow.synth().netlist).expect("netlist");
    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(&image, 0);
    while dram.exit_code().is_none() {
        dram.tick_gate(&mut gsim);
    }
    let truth = analyzer.analyze(&gsim.activity()).total_mw();
    println!("ground truth (dhrystone on Rok): {truth:.3} mW\n");

    let run_once = |n: usize, l: u32, seed: u64| -> (f64, f64) {
        let flow = StroberFlow::new(
            &design,
            StroberConfig {
                replay_length: l,
                sample_size: n,
                seed,
                ..StroberConfig::default()
            },
        )
        .expect("flow");
        let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
        dram.load(&image, 0);
        let run = flow.run_sampled(&mut dram, 100_000_000).expect("run");
        let results = flow.replay_all(&run.snapshots, 8).expect("replay");
        let est = flow.estimate(&run, &results).expect("estimate");
        (
            est.interval().relative_error_bound() * 100.0,
            (est.mean_power_mw() - truth).abs() / truth * 100.0,
        )
    };

    println!("Sample-size sweep (L = 128; eq. 8 predicts bound ~ 1/sqrt(n)):");
    println!(
        "{:>6} {:>10} {:>10} {:>14}",
        "n", "bound%", "actual%", "bound*sqrt(n)"
    );
    for n in [5usize, 10, 20, 40, 80] {
        let (bound, actual) = run_once(n, 128, 42);
        println!(
            "{n:>6} {bound:>9.2}% {actual:>9.2}% {:>14.1}",
            bound * (n as f64).sqrt()
        );
    }

    println!();
    println!("Replay-length sweep (n = 30; fixed snapshot count):");
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "L", "bound%", "actual%", "coverage"
    );
    for l in [32u32, 64, 128, 256, 512] {
        let (bound, actual) = run_once(30, l, 77);
        let coverage = 30.0 * f64::from(l) / 371_000.0 * 100.0;
        println!("{l:>6} {bound:>9.2}% {actual:>9.2}% {coverage:>11.2}%");
    }
    println!();
    println!("Expected shapes: bound*sqrt(n) roughly constant across the n sweep");
    println!("(the CLT scaling of eq. 8); longer windows damp within-window");
    println!("variance so the bound tightens as L grows at fixed n.");
}

//! The simulator-speed ladder measured on this machine, next to the
//! paper's platform constants — the speed hierarchy the methodology
//! exploits (abstract: two orders of magnitude over microarchitectural
//! simulators, four over commercial gate-level simulation).

use std::time::Instant;
use strober::PerfModel;
use strober_bench::{Workload, MEM_BYTES};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_fame::{transform, FameConfig};
use strober_gatesim::GateSim;
use strober_isa::Iss;
use strober_platform::{PlatformConfig, ZynqHost};
use strober_sim::{NaiveInterpreter, Simulator};
use strober_synth::{synthesize, SynthOptions};

fn main() {
    let design = build_core(&CoreConfig::rok());
    let image = Workload::Dhrystone.image();

    // ISS (functional golden model).
    let mut iss = Iss::new(MEM_BYTES);
    iss.load(&image, 0);
    let t0 = Instant::now();
    iss.run(50_000_000).expect("no faults");
    let iss_rate = iss.instret() as f64 / t0.elapsed().as_secs_f64();

    // Compiled-tape RTL simulation (the FPGA stand-in).
    let mut sim = Simulator::new(&design).expect("core");
    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(&image, 0);
    let t0 = Instant::now();
    let mut rtl_cycles = 0u64;
    while dram.exit_code().is_none() {
        dram.tick_raw(&mut sim);
        rtl_cycles += 1;
    }
    let rtl_rate = rtl_cycles as f64 / t0.elapsed().as_secs_f64();

    // Naive tree-walking RTL interpreter (ablation baseline).
    let mut naive = NaiveInterpreter::new(&design).expect("core");
    let t0 = Instant::now();
    let naive_cycles = 2_000u64;
    for _ in 0..naive_cycles {
        naive.step();
    }
    let naive_rate = naive_cycles as f64 / t0.elapsed().as_secs_f64();

    // FAME1 hub on the host platform.
    let fame = transform(&design, &FameConfig::default()).expect("transform");
    let mut host = ZynqHost::new(&fame, PlatformConfig::default()).expect("host");
    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(&image, 0);
    let t0 = Instant::now();
    host.run(&mut dram, 100_000_000).expect("run");
    let hub_cycles = host.target_cycles();
    let hub_rate = hub_cycles as f64 / t0.elapsed().as_secs_f64();

    // Gate-level simulation.
    let synth = synthesize(&design, &SynthOptions::default()).expect("synth");
    let mut gsim = GateSim::new(&synth.netlist).expect("netlist");
    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(&image, 0);
    let t0 = Instant::now();
    let gate_cycles = 30_000u64;
    for _ in 0..gate_cycles {
        dram.tick_gate(&mut gsim);
    }
    let gate_rate = gate_cycles as f64 / t0.elapsed().as_secs_f64();

    println!("Measured simulator ladder on this machine (Rok, dhrystone):");
    println!("  ISS (functional)            {:>12.0} instr/s", iss_rate);
    println!("  RTL tape simulator          {:>12.0} cycles/s", rtl_rate);
    println!("  FAME1 hub on host platform  {:>12.0} cycles/s", hub_rate);
    println!(
        "  naive RTL interpreter       {:>12.0} cycles/s",
        naive_rate
    );
    println!("  gate-level simulator        {:>12.0} cycles/s", gate_rate);
    println!();
    println!("Measured ratios:");
    println!(
        "  tape vs naive interpreter:  {:>8.1}x",
        rtl_rate / naive_rate
    );
    println!(
        "  tape vs gate-level:         {:>8.1}x",
        rtl_rate / gate_rate
    );
    println!(
        "  hub  vs gate-level:         {:>8.1}x",
        hub_rate / gate_rate
    );
    println!();
    let m = PerfModel::paper_example();
    let n = 100_000_000_000u64;
    println!("Paper-platform model (§IV-E constants, 100e9 cycles):");
    println!(
        "  FPGA (3.6 MHz) vs gate-level (12 Hz): {:>10.0}x",
        3.6e6 / 12.0
    );
    println!(
        "  full flow vs gate-level:              {:>10.0}x  (abstract: >= 1e4)",
        m.speedup_vs_gate_level(n)
    );
    println!(
        "  full flow vs 20 kHz uarch simulator:  {:>10.0}x  (abstract: >= 1e2)",
        PerfModel {
            uarch_sim_hz: 20.0e3,
            ..m
        }
        .speedup_vs_uarch(n)
    );
}

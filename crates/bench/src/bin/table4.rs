//! Table IV — simulated and replayed cycles for each microbenchmark on
//! the Rok processor: 30 random snapshots of 128 cycles cover only a few
//! percent of each run, yet (Fig. 8) predict average power accurately.

use strober_bench::{fmt_u64, run_on_rtl, Workload};
use strober_cores::{build_core, CoreConfig};
use strober_dram::DramConfig;

fn main() {
    let design = build_core(&CoreConfig::rok());
    let (n, l) = (30u64, 128u64);

    println!("Table IV: simulated and replayed cycles on Rok (n = {n}, L = {l})");
    println!(
        "{:<12} {:>16} {:>16} {:>10} {:>12}",
        "Benchmark", "Simulated Cycles", "Replayed Cycles", "Coverage", "paper cycles"
    );
    let paper: &[(&str, u64)] = &[
        ("vvadd", 200_521),
        ("towers", 410_752),
        ("dhrystone", 396_790),
        ("qsort", 187_160),
        ("spmv", 927_144),
        ("dgemm", 1_833_075),
    ];
    for (w, &(pname, pcycles)) in Workload::MICRO.iter().zip(paper) {
        assert_eq!(w.name(), pname);
        let (outcome, _) = run_on_rtl(&design, &w.image(), DramConfig::default(), 50_000_000);
        let replayed = n * l;
        let coverage = replayed as f64 / outcome.cycles as f64 * 100.0;
        println!(
            "{:<12} {:>16} {:>13}x{:<2} {:>9.2}% {:>12}",
            w.name(),
            fmt_u64(outcome.cycles),
            n,
            l,
            coverage,
            fmt_u64(pcycles),
        );
    }
    println!();
    println!("(Workload sizes are scaled so full gate-level reference runs are");
    println!("feasible; relative lengths follow the paper's Table IV.)");
}

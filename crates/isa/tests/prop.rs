//! Property tests: instruction encode/decode round trips and assembler ↔
//! encoder agreement.

use proptest::prelude::*;
use strober_isa::{assemble, decode, encode, Instr, Iss, Op, Reg};

fn arb_op() -> impl Strategy<Value = Op> {
    proptest::sample::select(Op::ALL.to_vec())
}

proptest! {
    #[test]
    fn encode_decode_round_trip(
        op in arb_op(),
        rd in 0u8..32,
        rs1 in 0u8..32,
        rs2 in 0u8..32,
        imm in -32768i32..32768,
    ) {
        let instr = Instr { op, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(rs2), imm };
        let decoded = decode(encode(instr)).expect("valid opcode must decode");
        prop_assert_eq!(decoded.op, op);
        // Register-register forms preserve all three registers; immediate
        // forms preserve rd/rs1/imm; stores and branches preserve
        // rs1/rs2/imm.
        if op.is_alu_reg() {
            prop_assert_eq!(decoded.rd, Reg(rd));
            prop_assert_eq!(decoded.rs1, Reg(rs1));
            prop_assert_eq!(decoded.rs2, Reg(rs2));
        } else if op == Op::Sw || op.is_branch() {
            prop_assert_eq!(decoded.rs1, Reg(rs1));
            prop_assert_eq!(decoded.rs2, Reg(rs2));
            prop_assert_eq!(decoded.imm, imm);
        } else {
            prop_assert_eq!(decoded.rd, Reg(rd));
            prop_assert_eq!(decoded.rs1, Reg(rs1));
            prop_assert_eq!(decoded.imm, imm);
        }
    }

    #[test]
    fn random_words_never_panic_the_decoder(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn assembler_matches_manual_encoding(
        rd in 1u8..32,
        rs1 in 0u8..32,
        rs2 in 0u8..32,
        imm in -2048i32..2048,
    ) {
        let src = format!(
            "add x{rd}, x{rs1}, x{rs2}\naddi x{rd}, x{rs1}, {imm}\nlw x{rd}, {imm4}(x{rs1})\nsw x{rs2}, {imm4}(x{rs1})\n",
            imm4 = imm * 4,
        );
        let image = assemble(&src).unwrap();
        prop_assert_eq!(image.words.len(), 4);
        prop_assert_eq!(
            image.words[0],
            encode(Instr { op: Op::Add, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(rs2), imm: 0 })
        );
        prop_assert_eq!(
            image.words[1],
            encode(Instr { op: Op::Addi, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(0), imm })
        );
        prop_assert_eq!(
            image.words[2],
            encode(Instr { op: Op::Lw, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(0), imm: imm * 4 })
        );
        prop_assert_eq!(
            image.words[3],
            encode(Instr { op: Op::Sw, rd: Reg(0), rs1: Reg(rs1), rs2: Reg(rs2), imm: imm * 4 })
        );
    }

    #[test]
    fn iss_alu_matches_host_arithmetic(a in any::<u32>(), b in any::<u32>()) {
        let src = format!(
            "li a0, {a}\nli a1, {b}\nadd a2, a0, a1\nsub a3, a0, a1\nxor a4, a2, a3\nhalt a4\n",
            a = a as i64,
            b = b as i64,
        );
        let image = assemble(&src).unwrap();
        let mut iss = Iss::new(4096);
        iss.load(&image.words, 0);
        let exit = iss.run(100).unwrap().unwrap();
        let expect = a.wrapping_add(b) ^ a.wrapping_sub(b);
        prop_assert_eq!(exit, expect);
    }
}

proptest! {
    #[test]
    fn disassemble_reassembles_to_the_same_word(
        op in arb_op(),
        rd in 0u8..32,
        rs1 in 0u8..32,
        rs2 in 0u8..32,
        imm in -2048i32..2048,
    ) {
        use strober_isa::disassemble;
        // Fixpoint property: disassembling, re-assembling and
        // disassembling again is stable (fields the instruction ignores,
        // like lui's rs1, may legitimately canonicalise to zero).
        let word = encode(Instr { op, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(rs2), imm });
        let text = disassemble(decode(word).unwrap());
        let image = assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        prop_assert_eq!(image.words.len(), 1, "`{}` expanded", text);
        let text2 = disassemble(decode(image.words[0]).unwrap());
        prop_assert_eq!(&text2, &text, "fixpoint broken");
    }
}

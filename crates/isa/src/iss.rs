//! The golden-model instruction-set simulator.

use crate::encoding::{decode, Instr, Op};
use std::error::Error;
use std::fmt;

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IssError {
    /// The PC or a data access left the memory.
    OutOfBounds {
        /// The faulting byte address.
        addr: u32,
        /// What kind of access faulted.
        access: &'static str,
    },
    /// A data access was not word-aligned (SRV32 is word-only).
    Misaligned {
        /// The faulting byte address.
        addr: u32,
    },
    /// An undecodable instruction was fetched.
    IllegalInstruction {
        /// The PC of the illegal instruction.
        pc: u32,
        /// The raw word.
        word: u32,
    },
}

impl fmt::Display for IssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssError::OutOfBounds { addr, access } => {
                write!(f, "{access} access out of bounds at {addr:#010x}")
            }
            IssError::Misaligned { addr } => write!(f, "misaligned access at {addr:#010x}"),
            IssError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
        }
    }
}

impl Error for IssError {}

/// The SRV32 golden model: architectural state plus instruction/cycle
/// counters (`rdcyc` reads the same count as `rdinst` here — the ISS is
/// not a timing model, every instruction takes one "cycle").
#[derive(Debug, Clone)]
pub struct Iss {
    regs: [u32; 32],
    mem: Vec<u32>,
    pc: u32,
    instret: u64,
    halted: Option<u32>,
    console: Vec<u8>,
}

impl Iss {
    /// Creates a simulator with `mem_bytes` of zeroed memory.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is not a positive multiple of 4.
    pub fn new(mem_bytes: usize) -> Self {
        assert!(
            mem_bytes > 0 && mem_bytes.is_multiple_of(4),
            "memory must be whole words"
        );
        Iss {
            regs: [0; 32],
            mem: vec![0; mem_bytes / 4],
            pc: 0,
            instret: 0,
            halted: None,
            console: Vec::new(),
        }
    }

    /// Loads words at a byte address.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load(&mut self, words: &[u32], byte_addr: u32) {
        let base = (byte_addr / 4) as usize;
        self.mem[base..base + words.len()].copy_from_slice(words);
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Retired instruction count.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// The exit code, once halted.
    pub fn exit_code(&self) -> Option<u32> {
        self.halted
    }

    /// A register's value.
    pub fn reg(&self, index: usize) -> u32 {
        self.regs[index]
    }

    /// Reads a memory word by byte address.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (inspection helper for tests).
    pub fn mem_word(&self, byte_addr: u32) -> u32 {
        self.mem[(byte_addr / 4) as usize]
    }

    /// Bytes written with `out`.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// The memory size in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.mem.len() * 4
    }

    fn read_word(&self, addr: u32, access: &'static str) -> Result<u32, IssError> {
        if !addr.is_multiple_of(4) {
            return Err(IssError::Misaligned { addr });
        }
        self.mem
            .get((addr / 4) as usize)
            .copied()
            .ok_or(IssError::OutOfBounds { addr, access })
    }

    fn write_word(&mut self, addr: u32, value: u32) -> Result<(), IssError> {
        if !addr.is_multiple_of(4) {
            return Err(IssError::Misaligned { addr });
        }
        match self.mem.get_mut((addr / 4) as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(IssError::OutOfBounds {
                addr,
                access: "store",
            }),
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an [`IssError`] on faults; the machine state is left at the
    /// fault point.
    pub fn step(&mut self) -> Result<(), IssError> {
        if self.halted.is_some() {
            return Ok(());
        }
        let word = self.read_word(self.pc, "fetch")?;
        let instr = decode(word).ok_or(IssError::IllegalInstruction { pc: self.pc, word })?;
        self.execute(instr)
    }

    fn execute(&mut self, i: Instr) -> Result<(), IssError> {
        let rs1 = self.regs[i.rs1.index()];
        let rs2 = self.regs[i.rs2.index()];
        let imm_s = i.imm as u32; // sign-extended
        let imm_z = (i.imm as u32) & 0xFFFF; // zero-extended (logical ops)
        let mut next_pc = self.pc.wrapping_add(4);
        let mut wb: Option<u32> = None;

        match i.op {
            Op::Halt => {
                self.halted = Some(rs1);
                self.instret += 1;
                return Ok(());
            }
            Op::Add => wb = Some(rs1.wrapping_add(rs2)),
            Op::Sub => wb = Some(rs1.wrapping_sub(rs2)),
            Op::And => wb = Some(rs1 & rs2),
            Op::Or => wb = Some(rs1 | rs2),
            Op::Xor => wb = Some(rs1 ^ rs2),
            Op::Slt => wb = Some(u32::from((rs1 as i32) < (rs2 as i32))),
            Op::Sltu => wb = Some(u32::from(rs1 < rs2)),
            Op::Sll => wb = Some(rs1.wrapping_shl(rs2 & 31)),
            Op::Srl => wb = Some(rs1.wrapping_shr(rs2 & 31)),
            Op::Sra => wb = Some(((rs1 as i32).wrapping_shr(rs2 & 31)) as u32),
            Op::Mul => wb = Some(rs1.wrapping_mul(rs2)),
            Op::Addi => wb = Some(rs1.wrapping_add(imm_s)),
            Op::Andi => wb = Some(rs1 & imm_z),
            Op::Ori => wb = Some(rs1 | imm_z),
            Op::Xori => wb = Some(rs1 ^ imm_z),
            Op::Slti => wb = Some(u32::from((rs1 as i32) < (imm_s as i32))),
            Op::Sltiu => wb = Some(u32::from(rs1 < imm_s)),
            Op::Slli => wb = Some(rs1.wrapping_shl(imm_z & 31)),
            Op::Srli => wb = Some(rs1.wrapping_shr(imm_z & 31)),
            Op::Srai => wb = Some(((rs1 as i32).wrapping_shr(imm_z & 31)) as u32),
            Op::Lui => wb = Some(imm_z << 16),
            Op::Lw => wb = Some(self.read_word(rs1.wrapping_add(imm_s), "load")?),
            Op::Sw => self.write_word(rs1.wrapping_add(imm_s), rs2)?,
            Op::Beq => {
                if rs1 == rs2 {
                    next_pc = self.branch_target(i.imm);
                }
            }
            Op::Bne => {
                if rs1 != rs2 {
                    next_pc = self.branch_target(i.imm);
                }
            }
            Op::Blt => {
                if (rs1 as i32) < (rs2 as i32) {
                    next_pc = self.branch_target(i.imm);
                }
            }
            Op::Bltu => {
                if rs1 < rs2 {
                    next_pc = self.branch_target(i.imm);
                }
            }
            Op::Bge => {
                if (rs1 as i32) >= (rs2 as i32) {
                    next_pc = self.branch_target(i.imm);
                }
            }
            Op::Bgeu => {
                if rs1 >= rs2 {
                    next_pc = self.branch_target(i.imm);
                }
            }
            Op::Jal => {
                wb = Some(self.pc.wrapping_add(4));
                next_pc = self.branch_target(i.imm);
            }
            Op::Jalr => {
                wb = Some(self.pc.wrapping_add(4));
                next_pc = rs1.wrapping_add(imm_s) & !3;
            }
            Op::Rdcyc | Op::Rdinst => wb = Some(self.instret as u32),
            Op::Out => self.console.push((rs1 & 0xFF) as u8),
        }

        if let Some(v) = wb {
            if i.rd.index() != 0 {
                self.regs[i.rd.index()] = v;
            }
        }
        self.pc = next_pc;
        self.instret += 1;
        Ok(())
    }

    fn branch_target(&self, imm_words: i32) -> u32 {
        self.pc.wrapping_add((imm_words as u32).wrapping_mul(4))
    }

    /// Runs until halt or `max_instructions`; returns the exit code if the
    /// program halted.
    ///
    /// # Errors
    ///
    /// Returns an [`IssError`] on faults.
    pub fn run(&mut self, max_instructions: u64) -> Result<Option<u32>, IssError> {
        for _ in 0..max_instructions {
            if self.halted.is_some() {
                break;
            }
            self.step()?;
        }
        Ok(self.halted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> Iss {
        let image = assemble(src).unwrap();
        let mut iss = Iss::new(64 * 1024);
        iss.load(&image.words, 0);
        iss.run(1_000_000).unwrap();
        iss
    }

    #[test]
    fn arithmetic_and_halt() {
        let iss = run("li a0, 6\nli a1, 7\nmul a2, a0, a1\nhalt a2\n");
        assert_eq!(iss.exit_code(), Some(42));
    }

    #[test]
    fn x0_is_hardwired() {
        let iss = run("addi x0, x0, 5\nhalt x0\n");
        assert_eq!(iss.exit_code(), Some(0));
    }

    #[test]
    fn loads_and_stores() {
        let iss = run(
            "la t0, data\nlw a0, 0(t0)\nlw a1, 4(t0)\nadd a2, a0, a1\nsw a2, 8(t0)\nlw a3, 8(t0)\nhalt a3\ndata: .word 30, 12, 0\n",
        );
        assert_eq!(iss.exit_code(), Some(42));
    }

    #[test]
    fn signed_and_unsigned_compares() {
        let iss = run(
            "li t0, -1\nli t1, 1\nslt a0, t0, t1\nsltu a1, t0, t1\nslli a0, a0, 1\nor a0, a0, a1\nhalt a0\n",
        );
        // slt(-1,1)=1, sltu(0xFFFFFFFF,1)=0 → (1<<1)|0 = 2.
        assert_eq!(iss.exit_code(), Some(2));
    }

    #[test]
    fn shifts() {
        let iss = run("li t0, -16\nsrai a0, t0, 2\nsrli a1, t0, 28\nadd a2, a0, a1\nhalt a2\n");
        // srai(-16,2) = -4; srli(0xFFFFFFF0,28) = 15; sum = 11.
        assert_eq!(iss.exit_code(), Some(11));
    }

    #[test]
    fn function_calls() {
        let iss = run("li a0, 5\ncall square\nhalt a0\nsquare: mul a0, a0, a0\nret\n");
        assert_eq!(iss.exit_code(), Some(25));
    }

    #[test]
    fn counters_advance() {
        let iss = run("nop\nnop\nrdinst a0\nhalt a0\n");
        // rdinst executes as the 3rd instruction; 2 retired before it.
        assert_eq!(iss.exit_code(), Some(2));
        assert_eq!(iss.instret(), 4);
    }

    #[test]
    fn console_output() {
        let iss = run("li a0, 72\nout a0\nli a0, 105\nout a0\nhalt\n");
        assert_eq!(iss.console(), b"Hi");
    }

    #[test]
    fn faults_reported() {
        let image = assemble("lw a0, 2(zero)\n").unwrap();
        let mut iss = Iss::new(1024);
        iss.load(&image.words, 0);
        assert!(matches!(iss.step(), Err(IssError::Misaligned { .. })));

        let image = assemble("li t0, 0x100000\nlw a0, 0(t0)\n").unwrap();
        let mut iss = Iss::new(1024);
        iss.load(&image.words, 0);
        iss.step().unwrap();
        assert!(matches!(iss.step(), Err(IssError::OutOfBounds { .. })));

        let mut iss = Iss::new(1024);
        iss.load(&[63 << 26], 0);
        assert!(matches!(
            iss.step(),
            Err(IssError::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn lui_ori_build_constants() {
        let iss = run("li a0, 0xDEADBEEF\nhalt a0\n");
        assert_eq!(iss.exit_code(), Some(0xDEADBEEF));
    }
}

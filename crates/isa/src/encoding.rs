//! SRV32 instruction encoding.
//!
//! Fixed 32-bit instructions:
//!
//! ```text
//! [31:26] opcode
//! [25:21] first register field  (rd, or rs1 for stores/branches)
//! [20:16] second register field (rs1, or rs2 for stores/branches)
//! [15:11] third register field  (rs2, R-type only)
//! [15:0]  imm16                 (I/S/B/J-type; sign-extended unless noted)
//! ```
//!
//! Branch and jump immediates are PC-relative *word* offsets
//! (`target = pc + 4·sext(imm)`).

use std::fmt;

/// A register index `x0`–`x31`; `x0` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);

    /// The register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// SRV32 opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Op {
    Halt = 0,
    Add = 1,
    Sub = 2,
    And = 3,
    Or = 4,
    Xor = 5,
    Slt = 6,
    Sltu = 7,
    Sll = 8,
    Srl = 9,
    Sra = 10,
    Mul = 11,
    Addi = 12,
    Andi = 13,
    Ori = 14,
    Xori = 15,
    Slti = 16,
    Sltiu = 17,
    Slli = 18,
    Srli = 19,
    Srai = 20,
    Lui = 21,
    Lw = 22,
    Sw = 23,
    Beq = 24,
    Bne = 25,
    Blt = 26,
    Bltu = 27,
    Bge = 28,
    Bgeu = 29,
    Jal = 30,
    Jalr = 31,
    Rdcyc = 32,
    Rdinst = 33,
    Out = 34,
}

impl Op {
    /// All opcodes.
    pub const ALL: [Op; 35] = [
        Op::Halt,
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Slt,
        Op::Sltu,
        Op::Sll,
        Op::Srl,
        Op::Sra,
        Op::Mul,
        Op::Addi,
        Op::Andi,
        Op::Ori,
        Op::Xori,
        Op::Slti,
        Op::Sltiu,
        Op::Slli,
        Op::Srli,
        Op::Srai,
        Op::Lui,
        Op::Lw,
        Op::Sw,
        Op::Beq,
        Op::Bne,
        Op::Blt,
        Op::Bltu,
        Op::Bge,
        Op::Bgeu,
        Op::Jal,
        Op::Jalr,
        Op::Rdcyc,
        Op::Rdinst,
        Op::Out,
    ];

    /// Decodes an opcode field.
    pub fn from_code(code: u8) -> Option<Op> {
        Op::ALL.get(code as usize).copied()
    }

    /// Whether this is a register-register ALU operation.
    pub fn is_alu_reg(self) -> bool {
        matches!(
            self,
            Op::Add
                | Op::Sub
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Slt
                | Op::Sltu
                | Op::Sll
                | Op::Srl
                | Op::Sra
                | Op::Mul
        )
    }

    /// Whether this is a register-immediate ALU operation.
    pub fn is_alu_imm(self) -> bool {
        matches!(
            self,
            Op::Addi
                | Op::Andi
                | Op::Ori
                | Op::Xori
                | Op::Slti
                | Op::Sltiu
                | Op::Slli
                | Op::Srli
                | Op::Srai
                | Op::Lui
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Op::Beq | Op::Bne | Op::Blt | Op::Bltu | Op::Bge | Op::Bgeu
        )
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// Destination register (R/I-type) — `x0` when unused.
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Sign-extended 16-bit immediate.
    pub imm: i32,
}

impl Instr {
    /// A canonical NOP (`addi x0, x0, 0`).
    pub const NOP: Instr = Instr {
        op: Op::Addi,
        rd: Reg(0),
        rs1: Reg(0),
        rs2: Reg(0),
        imm: 0,
    };
}

/// Encodes an instruction to its 32-bit form.
///
/// # Panics
///
/// Panics if the immediate does not fit in 16 bits signed (assembler and
/// generators guarantee this).
pub fn encode(i: Instr) -> u32 {
    assert!(
        (-(1 << 15)..(1 << 15)).contains(&i.imm),
        "immediate {} out of i16 range for {:?}",
        i.imm,
        i.op
    );
    let imm = (i.imm as u32) & 0xFFFF;
    let (f1, f2, f3) = match i.op {
        // Stores and branches carry rs1 in the first field, rs2 in the
        // second.
        Op::Sw => (i.rs2.0, i.rs1.0, 0),
        op if op.is_branch() => (i.rs1.0, i.rs2.0, 0),
        _ => (i.rd.0, i.rs1.0, i.rs2.0),
    };
    let mut word = (i.op as u32) << 26;
    word |= u32::from(f1 & 31) << 21;
    word |= u32::from(f2 & 31) << 16;
    if i.op.is_alu_reg() {
        word |= u32::from(f3 & 31) << 11;
    } else {
        word |= imm;
    }
    word
}

/// Decodes a 32-bit word; returns `None` for an invalid opcode.
pub fn decode(word: u32) -> Option<Instr> {
    let op = Op::from_code((word >> 26) as u8)?;
    let f1 = Reg(((word >> 21) & 31) as u8);
    let f2 = Reg(((word >> 16) & 31) as u8);
    let f3 = Reg(((word >> 11) & 31) as u8);
    let imm = ((word & 0xFFFF) as u16) as i16 as i32;
    Some(match op {
        Op::Sw => Instr {
            op,
            rd: Reg::ZERO,
            rs1: f2,
            rs2: f1,
            imm,
        },
        _ if op.is_branch() => Instr {
            op,
            rd: Reg::ZERO,
            rs1: f1,
            rs2: f2,
            imm,
        },
        _ if op.is_alu_reg() => Instr {
            op,
            rd: f1,
            rs1: f2,
            rs2: f3,
            imm: 0,
        },
        _ => Instr {
            op,
            rd: f1,
            rs1: f2,
            rs2: Reg::ZERO,
            imm,
        },
    })
}

/// Renders an instruction in the assembler's input syntax.
///
/// The output re-assembles to the same word (branch/jump targets are
/// printed as numeric byte offsets).
pub fn disassemble(i: Instr) -> String {
    let r = |reg: Reg| format!("x{}", reg.0);
    match i.op {
        Op::Halt => format!("halt {}", r(i.rs1)),
        Op::Add
        | Op::Sub
        | Op::And
        | Op::Or
        | Op::Xor
        | Op::Slt
        | Op::Sltu
        | Op::Sll
        | Op::Srl
        | Op::Sra
        | Op::Mul => {
            let m = match i.op {
                Op::Add => "add",
                Op::Sub => "sub",
                Op::And => "and",
                Op::Or => "or",
                Op::Xor => "xor",
                Op::Slt => "slt",
                Op::Sltu => "sltu",
                Op::Sll => "sll",
                Op::Srl => "srl",
                Op::Sra => "sra",
                _ => "mul",
            };
            format!("{m} {}, {}, {}", r(i.rd), r(i.rs1), r(i.rs2))
        }
        Op::Addi
        | Op::Andi
        | Op::Ori
        | Op::Xori
        | Op::Slti
        | Op::Sltiu
        | Op::Slli
        | Op::Srli
        | Op::Srai => {
            let m = match i.op {
                Op::Addi => "addi",
                Op::Andi => "andi",
                Op::Ori => "ori",
                Op::Xori => "xori",
                Op::Slti => "slti",
                Op::Sltiu => "sltiu",
                Op::Slli => "slli",
                Op::Srli => "srli",
                _ => "srai",
            };
            format!("{m} {}, {}, {}", r(i.rd), r(i.rs1), i.imm)
        }
        Op::Lui => format!("lui {}, {}", r(i.rd), (i.imm as u32) & 0xFFFF),
        Op::Lw => format!("lw {}, {}({})", r(i.rd), i.imm, r(i.rs1)),
        Op::Sw => format!("sw {}, {}({})", r(i.rs2), i.imm, r(i.rs1)),
        Op::Beq | Op::Bne | Op::Blt | Op::Bltu | Op::Bge | Op::Bgeu => {
            let m = match i.op {
                Op::Beq => "beq",
                Op::Bne => "bne",
                Op::Blt => "blt",
                Op::Bltu => "bltu",
                Op::Bge => "bge",
                _ => "bgeu",
            };
            format!("{m} {}, {}, {}", r(i.rs1), r(i.rs2), i.imm * 4)
        }
        Op::Jal => format!("jal {}, {}", r(i.rd), i.imm * 4),
        Op::Jalr => format!("jalr {}, {}, {}", r(i.rd), r(i.rs1), i.imm),
        Op::Rdcyc => format!("rdcyc {}", r(i.rd)),
        Op::Rdinst => format!("rdinst {}", r(i.rd)),
        Op::Out => format!("out {}", r(i.rs1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_formats() {
        let cases = [
            Instr {
                op: Op::Add,
                rd: Reg(3),
                rs1: Reg(4),
                rs2: Reg(5),
                imm: 0,
            },
            Instr {
                op: Op::Addi,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(0),
                imm: -42,
            },
            Instr {
                op: Op::Lw,
                rd: Reg(7),
                rs1: Reg(8),
                rs2: Reg(0),
                imm: 100,
            },
            Instr {
                op: Op::Sw,
                rd: Reg(0),
                rs1: Reg(9),
                rs2: Reg(10),
                imm: -4,
            },
            Instr {
                op: Op::Beq,
                rd: Reg(0),
                rs1: Reg(11),
                rs2: Reg(12),
                imm: -7,
            },
            Instr {
                op: Op::Jal,
                rd: Reg(1),
                rs1: Reg(0),
                rs2: Reg(0),
                imm: 200,
            },
            Instr {
                op: Op::Jalr,
                rd: Reg(0),
                rs1: Reg(1),
                rs2: Reg(0),
                imm: 0,
            },
            Instr {
                op: Op::Lui,
                rd: Reg(5),
                rs1: Reg(0),
                rs2: Reg(0),
                imm: 0x1234,
            },
            Instr {
                op: Op::Halt,
                rd: Reg(10),
                rs1: Reg(10),
                rs2: Reg(0),
                imm: 0,
            },
            Instr {
                op: Op::Rdcyc,
                rd: Reg(6),
                rs1: Reg(0),
                rs2: Reg(0),
                imm: 0,
            },
        ];
        for c in cases {
            let got = decode(encode(c)).unwrap();
            assert_eq!(got.op, c.op, "{c:?}");
            assert_eq!(
                got.rd.0,
                if matches!(c.op, Op::Sw) || c.op.is_branch() {
                    0
                } else {
                    c.rd.0
                }
            );
            assert_eq!(got.rs1, c.rs1, "{c:?}");
            if c.op.is_alu_reg() || c.op.is_branch() || c.op == Op::Sw {
                assert_eq!(got.rs2, c.rs2, "{c:?}");
            }
            if !c.op.is_alu_reg() {
                assert_eq!(got.imm, c.imm, "{c:?}");
            }
        }
    }

    #[test]
    fn invalid_opcode_rejected() {
        assert!(decode(63 << 26).is_none());
    }

    #[test]
    fn nop_is_addi_zero() {
        let w = encode(Instr::NOP);
        let i = decode(w).unwrap();
        assert_eq!(i.op, Op::Addi);
        assert_eq!(i.rd, Reg::ZERO);
        assert_eq!(i.imm, 0);
    }

    #[test]
    #[should_panic(expected = "out of i16 range")]
    fn oversized_immediate_panics() {
        let _ = encode(Instr {
            op: Op::Addi,
            rd: Reg(1),
            rs1: Reg(0),
            rs2: Reg(0),
            imm: 40000,
        });
    }
}

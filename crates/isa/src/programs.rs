//! The workload library: every benchmark in the paper's evaluation,
//! expressed as parameterised SRV32 assembly.
//!
//! | Paper workload | Here | Notes |
//! |---|---|---|
//! | vvadd          | [`vvadd`] | vector-vector add with LCG-initialised operands |
//! | towers         | [`towers`] | recursive Towers of Hanoi |
//! | dhrystone      | [`dhrystone`] | record copy/compare/branch/call mix |
//! | qsort          | [`qsort`] | iterative quicksort with explicit range stack |
//! | spmv           | [`spmv`] | CSR sparse matrix × vector |
//! | dgemm          | [`dgemm`] | dense n×n integer matrix multiply |
//! | CoreMark       | [`coremark_like`] | list traversal + small matmul + state machine |
//! | Linux boot     | [`linux_boot_like`] | bss clearing, task list, context-switch loop |
//! | 403.gcc        | [`gcc_like`] | pointer-heavy graph walking + hash table + dispatch |
//! | ccbench chase  | [`pointer_chase`] | load-to-load latency probe (Fig. 7) |
//!
//! Sizes are scaled relative to the paper so that *full gate-level
//! reference runs* (needed for the Fig. 8 ground truth) complete in
//! minutes; EXPERIMENTS.md records the exact parameters used per
//! experiment. Every program ends with `halt <checksum>` so results are
//! checkable on any of the three execution engines (ISS, RTL simulation,
//! gate-level simulation).
//!
//! All data regions live at fixed high addresses (`0x1_0000`–`0xF_0000`),
//! so the programs need a memory of at least 1 MiB.

/// Minimum memory size (bytes) the workloads assume.
pub const MEM_BYTES: usize = 1 << 20;

/// Shared LCG data-initialisation preamble: fills `count` words at `base`
/// with pseudo-random values derived from `seed`, using temporaries
/// `t0..t4`.
fn lcg_fill(base: u32, count: u32, seed: u32) -> String {
    format!(
        r#"
    li   t0, {base}
    li   t1, {count}
    li   t2, {seed}
    li   t3, 1664525
    li   t4, 1013904223
fill_{base:x}:
    mul  t2, t2, t3
    add  t2, t2, t4
    sw   t2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, fill_{base:x}
"#
    )
}

/// Vector-vector add: `c[i] = a[i] + b[i]` over `n` words; exits with the
/// checksum of `c`.
pub fn vvadd(n: u32) -> String {
    let mut s = String::new();
    s.push_str(&lcg_fill(0x1_0000, n, 12345));
    s.push_str(&lcg_fill(0x2_0000, n, 67890));
    s.push_str(&format!(
        r#"
    li   t0, 0x10000       # a
    li   t1, 0x20000       # b
    li   t5, 0x30000       # c
    li   s1, {n}
    mv   s2, zero          # checksum
vv_loop:
    lw   a0, 0(t0)
    lw   a1, 0(t1)
    add  a2, a0, a1
    sw   a2, 0(t5)
    add  s2, s2, a2
    addi t0, t0, 4
    addi t1, t1, 4
    addi t5, t5, 4
    addi s1, s1, -1
    bnez s1, vv_loop
    halt s2
"#
    ));
    s
}

/// Recursive Towers of Hanoi with `n` disks; exits with the move count
/// `2^n − 1`.
pub fn towers(n: u32) -> String {
    format!(
        r#"
    li   sp, 0xF0000
    li   a0, {n}
    li   a1, 0
    li   a2, 1
    li   a3, 2
    mv   s2, zero          # move counter
    call hanoi
    halt s2

hanoi:                      # a0=n a1=from a2=to a3=via
    li   t0, 1
    beq  a0, t0, hbase
    addi sp, sp, -20
    sw   ra, 0(sp)
    sw   a0, 4(sp)
    sw   a1, 8(sp)
    sw   a2, 12(sp)
    sw   a3, 16(sp)
    addi a0, a0, -1
    mv   t1, a2             # hanoi(n-1, from, via, to)
    mv   a2, a3
    mv   a3, t1
    call hanoi
    lw   a0, 4(sp)
    lw   a1, 8(sp)
    lw   a2, 12(sp)
    lw   a3, 16(sp)
    addi s2, s2, 1          # move the big disk
    addi a0, a0, -1
    mv   t1, a1             # hanoi(n-1, via, to, from)
    mv   a1, a3
    mv   a3, t1
    call hanoi
    lw   ra, 0(sp)
    addi sp, sp, 20
    ret
hbase:
    addi s2, s2, 1
    ret
"#
    )
}

/// A dhrystone-like mix: per iteration, copy an 8-word record, compare
/// fields, update conditionally, and make two calls. Exits with a
/// checksum.
pub fn dhrystone(iters: u32) -> String {
    let mut s = String::new();
    s.push_str(&lcg_fill(0x1_0000, 64, 777));
    s.push_str(&format!(
        r#"
    li   sp, 0xF0000
    li   s1, {iters}
    mv   s2, zero           # checksum
    li   s3, 0x10000        # source records
    li   s4, 0x20000        # destination records
dhry_loop:
    # Select a record (iteration mod 8) and copy 8 words.
    andi t0, s1, 7
    slli t0, t0, 5          # × 32 bytes
    add  t1, s3, t0         # src
    add  t2, s4, t0         # dst
    li   t3, 8
copy8:
    lw   a0, 0(t1)
    sw   a0, 0(t2)
    addi t1, t1, 4
    addi t2, t2, 4
    addi t3, t3, -1
    bnez t3, copy8
    # Compare first fields of two records, branchy update.
    lw   a0, 0(s4)
    lw   a1, 4(s4)
    blt  a0, a1, dhry_less
    sub  a2, a0, a1
    j    dhry_join
dhry_less:
    add  a2, a0, a1
dhry_join:
    add  s2, s2, a2
    # Two leaf calls.
    mv   a0, a2
    call dhry_f1
    add  s2, s2, a0
    mv   a0, s1
    call dhry_f2
    add  s2, s2, a0
    addi s1, s1, -1
    bnez s1, dhry_loop
    halt s2

dhry_f1:                    # a0 = (a0 << 1) ^ a0
    slli t0, a0, 1
    xor  a0, t0, a0
    ret
dhry_f2:                    # a0 = a0 * 13 + 7
    li   t0, 13
    mul  a0, a0, t0
    addi a0, a0, 7
    ret
"#
    ));
    s
}

/// Iterative quicksort of `n` pseudo-random words. Exits with
/// `1_000_000 + number of sorted-order violations` (so a correct run exits
/// with exactly `1_000_000`).
pub fn qsort(n: u32) -> String {
    let mut s = String::new();
    s.push_str(&lcg_fill(0x1_0000, n, 424242));
    s.push_str(&format!(
        r#"
    li   s3, 0x10000        # array base
    li   s4, 0x80000        # range stack pointer
    # push (0, n-1)
    sw   zero, 0(s4)
    li   t0, {last}
    sw   t0, 4(s4)
    addi s4, s4, 8
qs_loop:
    li   t0, 0x80000
    beq  s4, t0, qs_done
    addi s4, s4, -8
    lw   s5, 0(s4)          # lo
    lw   s6, 4(s4)          # hi
    bge  s5, s6, qs_loop
    # partition: pivot = a[hi]
    slli t0, s6, 2
    add  t0, s3, t0
    lw   s7, 0(t0)          # pivot
    addi s8, s5, -1         # i
    mv   s9, s5             # j
qs_part:
    bge  s9, s6, qs_part_done
    slli t1, s9, 2
    add  t1, s3, t1
    lw   a0, 0(t1)          # a[j]
    bgtu a0, s7, qs_noswap
    addi s8, s8, 1
    slli t2, s8, 2
    add  t2, s3, t2
    lw   a1, 0(t2)          # a[i]
    sw   a0, 0(t2)
    sw   a1, 0(t1)
qs_noswap:
    addi s9, s9, 1
    j    qs_part
qs_part_done:
    addi s8, s8, 1          # p = i+1
    slli t1, s8, 2
    add  t1, s3, t1
    lw   a0, 0(t1)          # a[p]
    slli t2, s6, 2
    add  t2, s3, t2
    lw   a1, 0(t2)          # a[hi]
    sw   a1, 0(t1)
    sw   a0, 0(t2)
    # push (lo, p-1)
    sw   s5, 0(s4)
    addi t0, s8, -1
    sw   t0, 4(s4)
    addi s4, s4, 8
    # push (p+1, hi)
    addi t0, s8, 1
    sw   t0, 0(s4)
    sw   s6, 4(s4)
    addi s4, s4, 8
    j    qs_loop
qs_done:
    # verify: count order violations
    mv   s2, zero
    li   t0, {verify_n}
    mv   t1, s3
qs_verify:
    lw   a0, 0(t1)
    lw   a1, 4(t1)
    bleu a0, a1, qs_ok
    addi s2, s2, 1
qs_ok:
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, qs_verify
    li   t0, 1000000
    add  s2, s2, t0
    halt s2
"#,
        last = n - 1,
        verify_n = n - 1,
    ));
    s
}

/// CSR sparse matrix-vector product: `rows` rows with `nnz` nonzeros each,
/// pseudo-random column indices. Exits with the checksum of `y`.
pub fn spmv(rows: u32, nnz: u32) -> String {
    let total = rows * nnz;
    let mut s = String::new();
    // vals at 0x10000, col_idx at 0x30000, x at 0x50000, y at 0x60000.
    s.push_str(&lcg_fill(0x1_0000, total, 31337));
    s.push_str(&lcg_fill(0x5_0000, rows, 999));
    s.push_str(&format!(
        r#"
    # Build col_idx[i] = lcg(i) mod rows.
    li   t0, 0x30000
    li   t1, {total}
    li   t2, 555
    li   t3, 1664525
    li   t4, 1013904223
    li   t5, {rows}
col_fill:
    mul  t2, t2, t3
    add  t2, t2, t4
    srli a0, t2, 8
    remu_inline:            # a0 = a0 % rows via repeated masking
    # rows is a power of two in our configurations: mask instead.
    andi a0, a0, {row_mask}
    sw   a0, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, col_fill

    li   s3, 0x10000        # vals
    li   s4, 0x30000        # col_idx
    li   s5, 0x50000        # x
    li   s6, 0x60000        # y
    li   s7, {rows}
    mv   s2, zero           # checksum
spmv_row:
    mv   s8, zero           # row accumulator
    li   s9, {nnz}
spmv_elem:
    lw   a0, 0(s3)          # val
    lw   a1, 0(s4)          # col
    slli a1, a1, 2
    add  a1, s5, a1
    lw   a2, 0(a1)          # x[col]
    mul  a3, a0, a2
    add  s8, s8, a3
    addi s3, s3, 4
    addi s4, s4, 4
    addi s9, s9, -1
    bnez s9, spmv_elem
    sw   s8, 0(s6)
    add  s2, s2, s8
    addi s6, s6, 4
    addi s7, s7, -1
    bnez s7, spmv_row
    halt s2
"#,
        row_mask = rows - 1,
    ));
    s
}

/// Dense n×n integer matrix multiply (`n` up to 64); exits with the
/// checksum of `C`.
pub fn dgemm(n: u32) -> String {
    let words = n * n;
    let mut s = String::new();
    s.push_str(&lcg_fill(0x1_0000, words, 1111));
    s.push_str(&lcg_fill(0x3_0000, words, 2222));
    s.push_str(&format!(
        r#"
    li   s3, 0x10000        # A
    li   s4, 0x30000        # B
    li   s5, 0x50000        # C
    li   s6, {n}            # n
    mv   s2, zero           # checksum
    mv   s7, zero           # i
gemm_i:
    mv   s8, zero           # j
gemm_j:
    mv   s9, zero           # k
    mv   s10, zero          # acc
gemm_k:
    # A[i*n + k]
    mul  t0, s7, s6
    add  t0, t0, s9
    slli t0, t0, 2
    add  t0, s3, t0
    lw   a0, 0(t0)
    # B[k*n + j]
    mul  t1, s9, s6
    add  t1, t1, s8
    slli t1, t1, 2
    add  t1, s4, t1
    lw   a1, 0(t1)
    mul  a2, a0, a1
    add  s10, s10, a2
    addi s9, s9, 1
    blt  s9, s6, gemm_k
    # C[i*n + j] = acc
    mul  t0, s7, s6
    add  t0, t0, s8
    slli t0, t0, 2
    add  t0, s5, t0
    sw   s10, 0(t0)
    add  s2, s2, s10
    addi s8, s8, 1
    blt  s8, s6, gemm_j
    addi s7, s7, 1
    blt  s7, s6, gemm_i
    halt s2
"#
    ));
    s
}

/// A CoreMark-like mix: array-backed linked-list traversal, a 4×4 integer
/// matrix multiply, and a small state machine, repeated `iters` times.
/// Exits with a CRC-ish checksum.
pub fn coremark_like(iters: u32) -> String {
    let mut s = String::new();
    s.push_str(&lcg_fill(0x1_0000, 64, 3333)); // list payloads
    s.push_str(&lcg_fill(0x1_0400, 32, 4444)); // matrices (distinct D$ lines)
    s.push_str(&format!(
        r#"
    # Build a 64-node ring list: next[i] = (i * 17 + 1) mod 64 at 0x10800
    # (kept off the payload and matrix cache lines).
    li   t0, 0x10800
    mv   t1, zero
    li   t2, 64
cm_build:
    li   t3, 17
    mul  t4, t1, t3
    addi t4, t4, 1
    andi t4, t4, 63
    slli t5, t1, 2
    add  t5, t0, t5
    sw   t4, 0(t5)
    addi t1, t1, 1
    blt  t1, t2, cm_build

    li   s1, {iters}
    mv   s2, zero           # crc
cm_iter:
    # --- list traversal: walk 64 hops, accumulate payloads
    mv   t1, zero           # node
    li   t2, 64
    li   s3, 0x10800
    li   s4, 0x10000
cm_walk:
    slli t3, t1, 2
    add  t4, s4, t3
    lw   a0, 0(t4)          # payload
    add  s2, s2, a0
    add  t4, s3, t3
    lw   t1, 0(t4)          # next
    addi t2, t2, -1
    bnez t2, cm_walk
    # --- 4x4 matmul
    li   s5, 0x10400        # A (16 words), B at +64
    mv   t1, zero           # i
cm_mi:
    mv   t2, zero           # j
cm_mj:
    mv   t3, zero           # k
    mv   t5, zero           # acc
cm_mk:
    slli t4, t1, 2
    add  t4, t4, t3
    slli t4, t4, 2
    add  t4, s5, t4
    lw   a0, 0(t4)          # A[i][k]
    slli t4, t3, 2
    add  t4, t4, t2
    slli t4, t4, 2
    add  t4, s5, t4
    lw   a1, 64(t4)         # B[k][j]
    mul  a2, a0, a1
    add  t5, t5, a2
    addi t3, t3, 1
    li   t6, 4
    blt  t3, t6, cm_mk
    add  s2, s2, t5
    addi t2, t2, 1
    li   t6, 4
    blt  t2, t6, cm_mj
    addi t1, t1, 1
    li   t6, 4
    blt  t1, t6, cm_mi
    # --- state machine over the crc value
    mv   a0, s2
    li   t1, 8
cm_sm:
    andi t2, a0, 3
    beqz t2, cm_s0
    li   t3, 1
    beq  t2, t3, cm_s1
    li   t3, 2
    beq  t2, t3, cm_s2
    srli a0, a0, 2
    xori a0, a0, 0x35
    j    cm_snext
cm_s0:
    srli a0, a0, 1
    j    cm_snext
cm_s1:
    srli a0, a0, 3
    addi a0, a0, 77
    j    cm_snext
cm_s2:
    srli a0, a0, 2
    xori a0, a0, 0x5A
cm_snext:
    addi t1, t1, -1
    bnez t1, cm_sm
    add  s2, s2, a0
    addi s1, s1, -1
    bnez s1, cm_iter
    halt s2
"#
    ));
    s
}

/// A Linux-boot-like phase mix: clear a large "bss", build a task list,
/// then run a context-switch loop that saves/restores register frames and
/// touches scattered "pages". Exits with a checksum.
pub fn linux_boot_like(tasks: u32, switches: u32) -> String {
    format!(
        r#"
    # --- phase 1: clear 16 KiB of bss at 0x40000
    li   t0, 0x40000
    li   t1, 4096
lb_clear:
    sw   zero, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, lb_clear

    # --- phase 2: build {tasks} task frames (16 words each) at 0x50000
    li   t0, 0x50000
    mv   t1, zero
lb_mktask:
    li   t2, 16
    mv   t3, t0
lb_fill_frame:
    add  t4, t1, t2
    mul  t4, t4, t4
    sw   t4, 0(t3)
    addi t3, t3, 4
    addi t2, t2, -1
    bnez t2, lb_fill_frame
    addi t0, t0, 64
    addi t1, t1, 1
    li   t2, {tasks}
    blt  t1, t2, lb_mktask

    # --- phase 3: round-robin context switching
    li   s1, {switches}
    mv   s2, zero           # checksum
    mv   s3, zero           # current task
lb_switch:
    # save "registers" (8 words) into current frame
    slli t0, s3, 6
    li   t1, 0x50000
    add  t1, t1, t0
    sw   s1, 0(t1)
    sw   s2, 4(t1)
    sw   s3, 8(t1)
    sw   ra, 12(t1)
    sw   sp, 16(t1)
    sw   t0, 20(t1)
    sw   s1, 24(t1)
    sw   s2, 28(t1)
    # pick next task
    addi s3, s3, 1
    li   t2, {tasks}
    blt  s3, t2, lb_noswrap
    mv   s3, zero
lb_noswrap:
    # restore from next frame and fold into checksum
    slli t0, s3, 6
    li   t1, 0x50000
    add  t1, t1, t0
    lw   a0, 0(t1)
    lw   a1, 4(t1)
    lw   a2, 8(t1)
    add  s2, s2, a0
    xor  s2, s2, a1
    add  s2, s2, a2
    # touch a scattered "page" in bss
    mul  t3, s1, s3
    andi t3, t3, 4095
    slli t3, t3, 2
    li   t4, 0x40000
    add  t4, t4, t3
    lw   a3, 0(t4)
    addi a3, a3, 1
    sw   a3, 0(t4)
    # a short "kernel work" call
    mv   a0, s2
    call lb_work
    mv   s2, a0
    addi s1, s1, -1
    bnez s1, lb_switch
    halt s2

lb_work:
    slli t0, a0, 3
    srli t1, a0, 5
    xor  a0, t0, t1
    addi a0, a0, 12345
    ret
"#
    )
}

/// A gcc-like phase: walk a pseudo-random graph (pointer-heavy), insert
/// into an open-addressed hash table, and dispatch on "token" kinds.
/// Exits with a checksum.
pub fn gcc_like(iters: u32, nodes: u32) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        r#"
    # Build {nodes} graph nodes (4 words: next, val, kind, pad) at 0x10000.
    li   t0, 0x10000
    mv   t1, zero
    li   t2, 90210
    li   t3, 1664525
    li   t4, 1013904223
gcc_build:
    mul  t2, t2, t3
    add  t2, t2, t4
    # next = (i + 321) mod nodes: a permutation with a single full-length
    # cycle, so the walk really visits the whole footprint (a purely
    # random successor function collapses into a tiny attractor cycle).
    addi a0, t1, 321
    andi a0, a0, {node_mask}
    slli a1, a0, 4          # next node byte offset
    li   a2, 0x10000
    add  a1, a2, a1
    slli t5, t1, 4
    add  t5, a2, t5
    sw   a1, 0(t5)          # next pointer
    sw   t2, 4(t5)          # val
    andi a3, t2, 7
    sw   a3, 8(t5)          # kind
    sw   zero, 12(t5)
    addi t1, t1, 1
    li   t6, {nodes}
    blt  t1, t6, gcc_build

    # Clear the 256-slot hash table at 0x70000.
    li   t0, 0x70000
    li   t1, 256
gcc_ht_clear:
    sw   zero, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, gcc_ht_clear

    li   s1, {iters}
    mv   s2, zero           # checksum
    li   s3, 0x10000        # walker
gcc_iter:
    # Phases alternate every 4096 iterations (the paper's gcc shows
    # visible CPI phases): phase A is a compact, cache-resident pass over
    # a 1 KiB region; phase B walks the full pointer graph and hits the
    # hash table.
    srli t6, s1, 12
    andi t6, t6, 1
    beqz t6, gcc_phase_b
    andi t0, s1, 255
    slli t0, t0, 4
    li   t1, 0x10000
    add  t1, t1, t0
    lw   a1, 4(t1)          # val from the small region
    lw   a2, 8(t1)          # kind
    j    gcc_dispatch
gcc_phase_b:
    # follow pointer
    lw   a0, 0(s3)          # next
    lw   a1, 4(s3)          # val
    lw   a2, 8(s3)          # kind
    mv   s3, a0
    # hash-table insert: slot = (val >> 3) & 255
    srli t0, a1, 3
    andi t0, t0, 255
    slli t0, t0, 2
    li   t1, 0x70000
    add  t1, t1, t0
    lw   t2, 0(t1)          # probe
    beqz t2, gcc_insert
    add  s2, s2, t2         # collision: fold old value
gcc_insert:
    sw   a1, 0(t1)
gcc_dispatch:
    # token dispatch on kind
    beqz a2, gcc_k0
    li   t3, 1
    beq  a2, t3, gcc_k1
    li   t3, 2
    beq  a2, t3, gcc_k2
    li   t3, 3
    beq  a2, t3, gcc_k3
    # kinds 4..7: arithmetic fold
    mul  t4, a1, a2
    add  s2, s2, t4
    j    gcc_next
gcc_k0:
    xor  s2, s2, a1
    j    gcc_next
gcc_k1:
    add  s2, s2, a1
    j    gcc_next
gcc_k2:
    sub  s2, s2, a1
    j    gcc_next
gcc_k3:
    srli t4, a1, 4
    add  s2, s2, t4
gcc_next:
    addi s1, s1, -1
    bnez s1, gcc_iter
    halt s2
"#,
        node_mask = nodes - 1,
    ));
    s
}

/// The ccbench-style pointer chase (Fig. 7): builds a stride-permuted ring
/// list covering `list_words` words at `0x1_0000`, chases it for `hops`
/// hops, and exits with the cycle count of the timed chase (read with
/// `rdcyc`).
pub fn pointer_chase(list_words: u32, stride_words: u32, hops: u32) -> String {
    format!(
        r#"
    # next[i] = (i + stride) mod list_words, stored in the slots
    # themselves so each hop is one dependent load.
    li   t0, 0x10000
    mv   t1, zero           # i
lc_build:
    addi t2, t1, {stride_words}
    li   t3, {list_words}
    blt  t2, t3, lc_nowrap
    sub  t2, t2, t3
lc_nowrap:
    slli t4, t2, 2
    li   t5, 0x10000
    add  t4, t5, t4         # address of next slot
    slli t6, t1, 2
    add  t6, t5, t6
    sw   t4, 0(t6)
    addi t1, t1, 1
    li   t3, {list_words}
    blt  t1, t3, lc_build

    # warm-up chase (one full lap)
    li   a0, 0x10000
    li   t1, {list_words}
lc_warm:
    lw   a0, 0(a0)
    addi t1, t1, -1
    bnez t1, lc_warm

    # timed chase
    rdcyc s3
    li   a0, 0x10000
    li   t1, {hops}
lc_chase:
    lw   a0, 0(a0)
    addi t1, t1, -1
    bnez t1, lc_chase
    rdcyc s4
    sub  s2, s4, s3
    halt s2
"#
    )
}

#[cfg(test)]
mod tests {
    use crate::asm::assemble;
    use crate::iss::Iss;

    fn run(src: &str, max: u64) -> u32 {
        let image = assemble(src).unwrap();
        let mut iss = Iss::new(super::MEM_BYTES);
        iss.load(&image.words, 0);
        iss.run(max)
            .unwrap()
            .expect("program should halt within budget")
    }

    #[test]
    fn towers_move_count_is_exact() {
        assert_eq!(run(&super::towers(5), 100_000), 31);
        assert_eq!(run(&super::towers(8), 1_000_000), 255);
    }

    #[test]
    fn qsort_sorts() {
        // Exit code 1_000_000 means zero order violations.
        assert_eq!(run(&super::qsort(64), 5_000_000), 1_000_000);
        assert_eq!(run(&super::qsort(256), 50_000_000), 1_000_000);
    }

    #[test]
    fn vvadd_checksum_is_deterministic() {
        let a = run(&super::vvadd(128), 1_000_000);
        let b = run(&super::vvadd(128), 1_000_000);
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn dgemm_completes() {
        let c = run(&super::dgemm(8), 10_000_000);
        assert_ne!(c, 0);
    }

    #[test]
    fn spmv_completes() {
        let c = run(&super::spmv(64, 8), 10_000_000);
        assert_ne!(c, 0);
    }

    #[test]
    fn dhrystone_completes() {
        let c = run(&super::dhrystone(100), 10_000_000);
        assert_ne!(c, 0);
    }

    #[test]
    fn coremark_like_completes() {
        let c = run(&super::coremark_like(10), 10_000_000);
        assert_ne!(c, 0);
    }

    #[test]
    fn linux_boot_like_completes() {
        let c = run(&super::linux_boot_like(8, 200), 10_000_000);
        assert_ne!(c, 0);
    }

    #[test]
    fn gcc_like_completes() {
        let c = run(&super::gcc_like(2000, 256), 10_000_000);
        assert_ne!(c, 0);
    }

    #[test]
    fn pointer_chase_reports_cycles() {
        // On the ISS every instruction is one cycle, so the timed section
        // is 3 instructions per hop plus the 3 setup instructions between
        // the two rdcyc reads.
        let hops = 500;
        let c = run(&super::pointer_chase(64, 1, hops), 10_000_000);
        assert_eq!(c, 3 * hops + 3);
    }

    #[test]
    fn workloads_have_distinct_profiles() {
        // Different workloads must not collapse to the same trivial
        // behaviour — distinct checksums across the board.
        let sums: Vec<u32> = vec![
            run(&super::vvadd(64), 1_000_000),
            run(&super::towers(6), 1_000_000),
            run(&super::dhrystone(50), 1_000_000),
            run(&super::qsort(32), 1_000_000),
            run(&super::spmv(32, 4), 1_000_000),
            run(&super::dgemm(6), 1_000_000),
        ];
        let mut dedup = sums.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sums.len(), "checksum collision: {sums:?}");
    }
}

//! A two-pass assembler for SRV32.
//!
//! Syntax:
//!
//! * `label:` — define a label (may share a line with an instruction).
//! * `op args` — instructions, comma- or space-separated operands.
//! * `#`, `//`, `;` — comments to end of line.
//! * `.word v, v, …` — literal data words (numbers or label addresses).
//! * `.space n` — `n` zero words.
//! * Registers: `x0`–`x31` or ABI names (`zero ra sp gp tp t0-t6 s0-s11
//!   a0-a7 fp`).
//! * Pseudo-instructions: `nop`, `li rd, imm32`, `la rd, label`,
//!   `mv rd, rs`, `not`, `neg`, `j label`, `jr rs`, `call label`, `ret`,
//!   `bgt`, `ble`, `bgtu`, `bleu`, `beqz`, `bnez`, `halt reg|imm`.
//!
//! Loads/stores use `op reg, imm(base)` syntax. Branch/jump targets may be
//! labels or numeric byte offsets.

use crate::encoding::{encode, Instr, Op, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembled program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// The program words, loaded from address 0.
    pub words: Vec<u32>,
    /// Label addresses in bytes.
    pub symbols: HashMap<String, u32>,
}

impl Image {
    /// The image size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

/// Assembly errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// The offending line number (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    const ABI: [(&str, u8); 33] = [
        ("zero", 0),
        ("ra", 1),
        ("sp", 2),
        ("gp", 3),
        ("tp", 4),
        ("t0", 5),
        ("t1", 6),
        ("t2", 7),
        ("s0", 8),
        ("fp", 8),
        ("s1", 9),
        ("a0", 10),
        ("a1", 11),
        ("a2", 12),
        ("a3", 13),
        ("a4", 14),
        ("a5", 15),
        ("a6", 16),
        ("a7", 17),
        ("s2", 18),
        ("s3", 19),
        ("s4", 20),
        ("s5", 21),
        ("s6", 22),
        ("s7", 23),
        ("s8", 24),
        ("s9", 25),
        ("s10", 26),
        ("s11", 27),
        ("t3", 28),
        ("t4", 29),
        ("t5", 30),
        ("t6", 31),
    ];
    if let Some(n) = s.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(Reg(i));
            }
        }
    }
    ABI.iter()
        .find(|(name, _)| *name == s)
        .map(|&(_, i)| Reg(i))
        .ok_or_else(|| err(line, format!("unknown register `{s}`")))
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad number `{s}`")))?;
    Ok(if neg { -v } else { v })
}

/// One operand: a register, number, label, or `imm(base)` memory operand.
#[derive(Debug, Clone)]
enum Operand {
    Reg(Reg),
    Num(i64),
    Label(String),
    Mem { offset: i64, base: Reg },
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    let s = s.trim();
    if let Some(open) = s.find('(') {
        let close = s
            .rfind(')')
            .ok_or_else(|| err(line, format!("unclosed memory operand `{s}`")))?;
        let off_str = s[..open].trim();
        let offset = if off_str.is_empty() {
            0
        } else {
            parse_int(off_str, line)?
        };
        let base = parse_reg(s[open + 1..close].trim(), line)?;
        return Ok(Operand::Mem { offset, base });
    }
    if let Ok(r) = parse_reg(s, line) {
        return Ok(Operand::Reg(r));
    }
    if s.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
        return Ok(Operand::Num(parse_int(s, line)?));
    }
    Ok(Operand::Label(s.to_owned()))
}

/// An intermediate item placed at a word address.
#[derive(Debug, Clone)]
enum Item {
    /// A machine instruction, possibly with an unresolved label.
    Instr {
        op: Op,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        imm: i64,
        /// Label whose resolution becomes the immediate: PC-relative word
        /// offset for branches/jumps, absolute address otherwise.
        label: Option<String>,
        line: usize,
    },
    /// A literal word (or a label address).
    Word { value: i64, label: Option<String> },
}

struct Assembler {
    items: Vec<Item>,
    symbols: HashMap<String, u32>,
}

impl Assembler {
    fn here(&self) -> u32 {
        (self.items.len() * 4) as u32
    }

    fn push_instr(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg, imm: i64, line: usize) {
        self.items.push(Item::Instr {
            op,
            rd,
            rs1,
            rs2,
            imm,
            label: None,
            line,
        });
    }

    fn push_branchish(
        &mut self,
        op: Op,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        target: Operand,
        line: usize,
    ) -> Result<(), AsmError> {
        match target {
            Operand::Label(l) => self.items.push(Item::Instr {
                op,
                rd,
                rs1,
                rs2,
                imm: 0,
                label: Some(l),
                line,
            }),
            Operand::Num(n) => {
                if n % 4 != 0 {
                    return Err(err(line, "branch offset must be a multiple of 4"));
                }
                self.push_instr(op, rd, rs1, rs2, n / 4, line);
            }
            _ => return Err(err(line, "branch target must be a label or offset")),
        }
        Ok(())
    }
}

/// Assembles SRV32 source into an image loaded at address 0.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics/registers/labels, and out-of-range immediates.
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    let mut asm = Assembler {
        items: Vec::new(),
        symbols: HashMap::new(),
    };

    for (idx, raw_line) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw_line;
        for marker in ["#", "//", ";"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();

        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            let addr = asm.here();
            if asm.symbols.insert(label.to_owned(), addr).is_some() {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        let ops: Vec<Operand> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|s| parse_operand(s, line))
                .collect::<Result<_, _>>()?
        };

        emit(&mut asm, &mnemonic, &ops, line)?;
    }

    // Second pass: resolve labels and encode.
    let mut words = Vec::with_capacity(asm.items.len());
    for (word_idx, item) in asm.items.iter().enumerate() {
        match item {
            Item::Word { value, label } => {
                let v = match label {
                    Some(l) => i64::from(
                        *asm.symbols
                            .get(l)
                            .ok_or_else(|| err(0, format!("undefined label `{l}` in .word")))?,
                    ),
                    None => *value,
                };
                words.push(v as u32);
            }
            Item::Instr {
                op,
                rd,
                rs1,
                rs2,
                imm,
                label,
                line,
            } => {
                let imm = match label {
                    Some(l) => {
                        if let Some(v) = resolve_la_marker(&asm.symbols, l) {
                            v
                        } else {
                            let addr = *asm
                                .symbols
                                .get(l)
                                .ok_or_else(|| err(*line, format!("undefined label `{l}`")))?;
                            if op.is_branch() || *op == Op::Jal {
                                // PC-relative word offset.
                                (i64::from(addr) - (word_idx as i64 * 4)) / 4
                            } else {
                                i64::from(addr)
                            }
                        }
                    }
                    None => *imm,
                };
                if !(-(1 << 15)..(1 << 15)).contains(&imm) {
                    return Err(err(
                        *line,
                        format!("immediate {imm} out of 16-bit range for {op:?}"),
                    ));
                }
                words.push(encode(Instr {
                    op: *op,
                    rd: *rd,
                    rs1: *rs1,
                    rs2: *rs2,
                    imm: imm as i32,
                }));
            }
        }
    }

    Ok(Image {
        words,
        symbols: asm.symbols,
    })
}

fn want(ops: &[Operand], n: usize, line: usize, what: &str) -> Result<(), AsmError> {
    if ops.len() != n {
        return Err(err(
            line,
            format!("{what} expects {n} operands, got {}", ops.len()),
        ));
    }
    Ok(())
}

fn reg_of(op: &Operand, line: usize) -> Result<Reg, AsmError> {
    match op {
        Operand::Reg(r) => Ok(*r),
        _ => Err(err(line, "expected a register")),
    }
}

fn num_of(op: &Operand, line: usize) -> Result<i64, AsmError> {
    match op {
        Operand::Num(n) => Ok(*n),
        _ => Err(err(line, "expected a number")),
    }
}

#[allow(clippy::too_many_lines)]
fn emit(asm: &mut Assembler, mnemonic: &str, ops: &[Operand], line: usize) -> Result<(), AsmError> {
    let z = Reg::ZERO;
    match mnemonic {
        ".word" => {
            for op in ops {
                match op {
                    Operand::Num(n) => asm.items.push(Item::Word {
                        value: *n,
                        label: None,
                    }),
                    Operand::Label(l) => asm.items.push(Item::Word {
                        value: 0,
                        label: Some(l.clone()),
                    }),
                    _ => return Err(err(line, ".word takes numbers or labels")),
                }
            }
        }
        ".space" => {
            want(ops, 1, line, ".space")?;
            let n = num_of(&ops[0], line)?;
            for _ in 0..n {
                asm.items.push(Item::Word {
                    value: 0,
                    label: None,
                });
            }
        }
        "add" | "sub" | "and" | "or" | "xor" | "slt" | "sltu" | "sll" | "srl" | "sra" | "mul" => {
            want(ops, 3, line, mnemonic)?;
            let op = match mnemonic {
                "add" => Op::Add,
                "sub" => Op::Sub,
                "and" => Op::And,
                "or" => Op::Or,
                "xor" => Op::Xor,
                "slt" => Op::Slt,
                "sltu" => Op::Sltu,
                "sll" => Op::Sll,
                "srl" => Op::Srl,
                "sra" => Op::Sra,
                _ => Op::Mul,
            };
            let (rd, rs1, rs2) = (
                reg_of(&ops[0], line)?,
                reg_of(&ops[1], line)?,
                reg_of(&ops[2], line)?,
            );
            asm.push_instr(op, rd, rs1, rs2, 0, line);
        }
        "addi" | "andi" | "ori" | "xori" | "slti" | "sltiu" | "slli" | "srli" | "srai" => {
            want(ops, 3, line, mnemonic)?;
            let op = match mnemonic {
                "addi" => Op::Addi,
                "andi" => Op::Andi,
                "ori" => Op::Ori,
                "xori" => Op::Xori,
                "slti" => Op::Slti,
                "sltiu" => Op::Sltiu,
                "slli" => Op::Slli,
                "srli" => Op::Srli,
                _ => Op::Srai,
            };
            let (rd, rs1) = (reg_of(&ops[0], line)?, reg_of(&ops[1], line)?);
            let imm = num_of(&ops[2], line)?;
            asm.push_instr(op, rd, rs1, z, imm, line);
        }
        "lui" => {
            want(ops, 2, line, "lui")?;
            let rd = reg_of(&ops[0], line)?;
            let imm = num_of(&ops[1], line)?;
            if !(0..=0xFFFF).contains(&imm) {
                return Err(err(line, "lui immediate must be 0..=0xFFFF"));
            }
            // Reinterpret as i16 so encode's range check passes.
            asm.push_instr(Op::Lui, rd, z, z, i64::from(imm as u16 as i16), line);
        }
        "lw" => {
            want(ops, 2, line, "lw")?;
            let rd = reg_of(&ops[0], line)?;
            let Operand::Mem { offset, base } = ops[1] else {
                return Err(err(line, "lw expects `rd, imm(base)`"));
            };
            asm.push_instr(Op::Lw, rd, base, z, offset, line);
        }
        "sw" => {
            want(ops, 2, line, "sw")?;
            let rs2 = reg_of(&ops[0], line)?;
            let Operand::Mem { offset, base } = ops[1] else {
                return Err(err(line, "sw expects `rs, imm(base)`"));
            };
            asm.push_instr(Op::Sw, z, base, rs2, offset, line);
        }
        "beq" | "bne" | "blt" | "bltu" | "bge" | "bgeu" => {
            want(ops, 3, line, mnemonic)?;
            let op = match mnemonic {
                "beq" => Op::Beq,
                "bne" => Op::Bne,
                "blt" => Op::Blt,
                "bltu" => Op::Bltu,
                "bge" => Op::Bge,
                _ => Op::Bgeu,
            };
            let (rs1, rs2) = (reg_of(&ops[0], line)?, reg_of(&ops[1], line)?);
            asm.push_branchish(op, z, rs1, rs2, ops[2].clone(), line)?;
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            // Swapped-operand aliases.
            want(ops, 3, line, mnemonic)?;
            let op = match mnemonic {
                "bgt" => Op::Blt,
                "ble" => Op::Bge,
                "bgtu" => Op::Bltu,
                _ => Op::Bgeu,
            };
            let (rs1, rs2) = (reg_of(&ops[0], line)?, reg_of(&ops[1], line)?);
            asm.push_branchish(op, z, rs2, rs1, ops[2].clone(), line)?;
        }
        "beqz" | "bnez" => {
            want(ops, 2, line, mnemonic)?;
            let op = if mnemonic == "beqz" { Op::Beq } else { Op::Bne };
            let rs1 = reg_of(&ops[0], line)?;
            asm.push_branchish(op, z, rs1, z, ops[1].clone(), line)?;
        }
        "jal" => match ops.len() {
            1 => asm.push_branchish(Op::Jal, Reg(1), z, z, ops[0].clone(), line)?,
            2 => {
                let rd = reg_of(&ops[0], line)?;
                asm.push_branchish(Op::Jal, rd, z, z, ops[1].clone(), line)?;
            }
            n => return Err(err(line, format!("jal expects 1 or 2 operands, got {n}"))),
        },
        "jalr" => match ops.len() {
            1 => {
                let rs1 = reg_of(&ops[0], line)?;
                asm.push_instr(Op::Jalr, Reg(1), rs1, z, 0, line);
            }
            3 => {
                let rd = reg_of(&ops[0], line)?;
                let rs1 = reg_of(&ops[1], line)?;
                let imm = num_of(&ops[2], line)?;
                asm.push_instr(Op::Jalr, rd, rs1, z, imm, line);
            }
            n => return Err(err(line, format!("jalr expects 1 or 3 operands, got {n}"))),
        },
        "j" => {
            want(ops, 1, line, "j")?;
            asm.push_branchish(Op::Jal, z, z, z, ops[0].clone(), line)?;
        }
        "jr" => {
            want(ops, 1, line, "jr")?;
            let rs1 = reg_of(&ops[0], line)?;
            asm.push_instr(Op::Jalr, z, rs1, z, 0, line);
        }
        "call" => {
            want(ops, 1, line, "call")?;
            asm.push_branchish(Op::Jal, Reg(1), z, z, ops[0].clone(), line)?;
        }
        "ret" => {
            want(ops, 0, line, "ret")?;
            asm.push_instr(Op::Jalr, z, Reg(1), z, 0, line);
        }
        "nop" => {
            want(ops, 0, line, "nop")?;
            asm.push_instr(Op::Addi, z, z, z, 0, line);
        }
        "mv" => {
            want(ops, 2, line, "mv")?;
            let (rd, rs) = (reg_of(&ops[0], line)?, reg_of(&ops[1], line)?);
            asm.push_instr(Op::Addi, rd, rs, z, 0, line);
        }
        "not" => {
            want(ops, 2, line, "not")?;
            let (rd, rs) = (reg_of(&ops[0], line)?, reg_of(&ops[1], line)?);
            asm.push_instr(Op::Xori, rd, rs, z, -1, line);
        }
        "neg" => {
            want(ops, 2, line, "neg")?;
            let (rd, rs) = (reg_of(&ops[0], line)?, reg_of(&ops[1], line)?);
            asm.push_instr(Op::Sub, rd, z, rs, 0, line);
        }
        "li" => {
            want(ops, 2, line, "li")?;
            let rd = reg_of(&ops[0], line)?;
            let v = num_of(&ops[1], line)? as i32 as u32;
            emit_li(asm, rd, v, line);
        }
        "la" => {
            want(ops, 2, line, "la")?;
            let rd = reg_of(&ops[0], line)?;
            let Operand::Label(l) = &ops[1] else {
                return Err(err(line, "la expects a label"));
            };
            // `la` always expands to lui+ori so its size is known in pass 1;
            // the label is resolved in pass 2 by splitting the address.
            asm.items.push(Item::Instr {
                op: Op::Lui,
                rd,
                rs1: z,
                rs2: z,
                imm: 0,
                label: Some(format!("\u{1}hi\u{1}{l}")),
                line,
            });
            asm.items.push(Item::Instr {
                op: Op::Ori,
                rd,
                rs1: rd,
                rs2: z,
                imm: 0,
                label: Some(format!("\u{1}lo\u{1}{l}")),
                line,
            });
        }
        "halt" => match ops.len() {
            0 => asm.push_instr(Op::Halt, z, z, z, 0, line),
            1 => {
                let rs1 = reg_of(&ops[0], line)?;
                asm.push_instr(Op::Halt, z, rs1, z, 0, line);
            }
            n => return Err(err(line, format!("halt expects 0 or 1 operands, got {n}"))),
        },
        "rdcyc" | "rdinst" => {
            want(ops, 1, line, mnemonic)?;
            let rd = reg_of(&ops[0], line)?;
            let op = if mnemonic == "rdcyc" {
                Op::Rdcyc
            } else {
                Op::Rdinst
            };
            asm.push_instr(op, rd, z, z, 0, line);
        }
        "out" => {
            want(ops, 1, line, "out")?;
            let rs1 = reg_of(&ops[0], line)?;
            asm.push_instr(Op::Out, z, rs1, z, 0, line);
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

/// Expands `li rd, v` as `lui rd, hi16; ori rd, rd, lo16` (or a single
/// instruction when one half is zero and the value fits).
fn emit_li(asm: &mut Assembler, rd: Reg, v: u32, line: usize) {
    let hi = (v >> 16) as u16;
    let lo = (v & 0xFFFF) as u16;
    if hi == 0 && lo < 0x8000 {
        asm.push_instr(Op::Addi, rd, Reg::ZERO, Reg::ZERO, i64::from(lo), line);
        return;
    }
    if hi == 0xFFFF && lo >= 0x8000 {
        // Small negative constant.
        asm.push_instr(
            Op::Addi,
            rd,
            Reg::ZERO,
            Reg::ZERO,
            i64::from(v as i32 as i16),
            line,
        );
        return;
    }
    asm.push_instr(
        Op::Lui,
        rd,
        Reg::ZERO,
        Reg::ZERO,
        i64::from(hi as i16),
        line,
    );
    if lo != 0 {
        asm.push_instr(Op::Ori, rd, rd, Reg::ZERO, i64::from(lo as i16), line);
    }
}

// Hook for `la` pseudo resolution: intercept the hi/lo marker labels.
pub(crate) fn resolve_la_marker(symbols: &HashMap<String, u32>, label: &str) -> Option<i64> {
    let mut parts = label.split('\u{1}');
    let _empty = parts.next()?;
    let kind = parts.next()?;
    let target = parts.next()?;
    let addr = *symbols.get(target)?;
    match kind {
        "hi" => Some(i64::from(((addr >> 16) as u16) as i16)),
        "lo" => Some(i64::from((addr & 0xFFFF) as u16 as i16)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::decode;

    #[test]
    fn basic_program_assembles() {
        let image = assemble(
            "start:  addi a0, zero, 5\n        addi a1, zero, 7\n        add  a2, a0, a1\n        halt a2\n",
        )
        .unwrap();
        assert_eq!(image.words.len(), 4);
        let i0 = decode(image.words[0]).unwrap();
        assert_eq!(i0.op, Op::Addi);
        assert_eq!(i0.imm, 5);
        assert_eq!(image.symbols["start"], 0);
    }

    #[test]
    fn branch_targets_resolve_backwards_and_forwards() {
        let image = assemble(
            "        addi t0, zero, 3\nloop:   addi t0, t0, -1\n        bne  t0, zero, loop\n        beq  zero, zero, end\n        nop\nend:    halt\n",
        )
        .unwrap();
        let bne = decode(image.words[2]).unwrap();
        assert_eq!(bne.imm, -1); // back one word
        let beq = decode(image.words[3]).unwrap();
        assert_eq!(beq.imm, 2); // forward over the nop
    }

    #[test]
    fn memory_operands() {
        let image = assemble("lw a0, 8(sp)\nsw a1, -4(s0)\nlw a2, (t0)\n").unwrap();
        let lw = decode(image.words[0]).unwrap();
        assert_eq!(lw.op, Op::Lw);
        assert_eq!(lw.imm, 8);
        assert_eq!(lw.rs1, Reg(2));
        let sw = decode(image.words[1]).unwrap();
        assert_eq!(sw.op, Op::Sw);
        assert_eq!(sw.imm, -4);
        assert_eq!(sw.rs1, Reg(8));
        assert_eq!(sw.rs2, Reg(11));
    }

    #[test]
    fn li_expansion() {
        // Small constant: one addi.
        assert_eq!(assemble("li a0, 42\n").unwrap().words.len(), 1);
        // Negative small: one addi.
        assert_eq!(assemble("li a0, -3\n").unwrap().words.len(), 1);
        // Full 32-bit: lui + ori.
        let img = assemble("li a0, 0x12345678\n").unwrap();
        assert_eq!(img.words.len(), 2);
        let lui = decode(img.words[0]).unwrap();
        assert_eq!(lui.op, Op::Lui);
        assert_eq!(lui.imm & 0xFFFF, 0x1234);
        // Upper-only: single lui.
        assert_eq!(assemble("li a0, 0x40000\n").unwrap().words.len(), 1);
        assert_eq!(assemble("li a0, 0x10000\n").unwrap().words.len(), 1);
        // Both halves: lui + ori.
        assert_eq!(assemble("li a0, 0x40001\n").unwrap().words.len(), 2);
    }

    #[test]
    fn data_directives() {
        let image = assemble(".word 1, 2, 0xFF\n.space 3\ndata: .word data\n").unwrap();
        assert_eq!(image.words[0..3], [1, 2, 0xFF]);
        assert_eq!(image.words[3..6], [0, 0, 0]);
        assert_eq!(image.words[6], 24); // address of `data`
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("addi a0, a1\n").unwrap_err();
        assert!(e.message.contains("expects 3"));
        let e = assemble("bne t0, t1, nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
        let e = assemble("l: nop\nl: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn pseudo_instructions() {
        let image = assemble(
            "f: mv a0, a1\n   not a2, a3\n   neg a4, a5\n   call f\n   ret\n   j f\n   jr ra\n   beqz a0, f\n   bgt a0, a1, f\n",
        )
        .unwrap();
        assert_eq!(image.words.len(), 9);
        let bgt = decode(image.words[8]).unwrap();
        assert_eq!(bgt.op, Op::Blt);
        // Operands swapped: blt a1, a0.
        assert_eq!(bgt.rs1, Reg(11));
        assert_eq!(bgt.rs2, Reg(10));
    }
}

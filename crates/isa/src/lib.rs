//! The SRV32 instruction set: encoding, assembler, golden-model simulator
//! and workload library.
//!
//! The paper evaluates Strober on RISC-V processors running microbenchmarks
//! (vvadd, towers, dhrystone, qsort, spmv, dgemm), CoreMark, a Linux boot
//! and SPECint's 403.gcc. This crate provides the equivalent substrate:
//!
//! * **SRV32** — a 32-bit scalar RISC ISA in the RV32I mould (32 registers
//!   with a hardwired zero, word-addressed loads/stores, compare-and-branch,
//!   `jal`/`jalr`, hardware `mul`, and cycle/instret counter reads). Byte
//!   memory accesses and floating point are omitted; workloads are adapted
//!   accordingly (see DESIGN.md).
//! * [`assemble`] — a two-pass assembler with labels, ABI register names,
//!   common pseudo-instructions (`li`, `la`, `mv`, `j`, `call`, `ret`) and
//!   data directives.
//! * [`Iss`] — an instruction-set simulator used as the golden model for
//!   differential testing of the RTL cores and as the "fast functional
//!   simulator" baseline in speed comparisons.
//! * [`programs`] — parameterised sources for every workload in the
//!   paper's evaluation, sized so full gate-level reference runs finish on
//!   a workstation.
//!
//! # Examples
//!
//! ```
//! use strober_isa::{assemble, Iss};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(r#"
//!     li   a0, 0          # sum
//!     li   a1, 10         # n
//! loop:
//!     add  a0, a0, a1
//!     addi a1, a1, -1
//!     bne  a1, zero, loop
//!     halt a0
//! "#)?;
//! let mut iss = Iss::new(64 * 1024);
//! iss.load(&image.words, 0);
//! let exit = iss.run(10_000)?;
//! assert_eq!(exit, Some(55));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod asm;
mod encoding;
mod iss;
pub mod programs;

pub use asm::{assemble, AsmError, Image};
pub use encoding::{decode, disassemble, encode, Instr, Op, Reg};
pub use iss::{Iss, IssError};

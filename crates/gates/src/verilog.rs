//! Structural Verilog emission for gate-level netlists — the "gate-level
//! netlist" artifact of the paper's replay flow (Fig. 5), self-contained
//! with behavioural primitive-cell and SRAM-macro definitions so it can be
//! consumed by an external Verilog simulator.

use crate::cell::CellKind;
use crate::netlist::{Gate, NetId, Netlist, NetlistError};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.starts_with(|c: char| c.is_ascii_digit()) {
        format!("_{s}")
    } else {
        s
    }
}

fn primitive_module(kind: CellKind) -> &'static str {
    match kind {
        CellKind::Inv => "module INV (input A, output Y); assign Y = ~A; endmodule",
        CellKind::Buf => "module BUF (input A, output Y); assign Y = A; endmodule",
        CellKind::Nand2 => {
            "module NAND2 (input A, input B, output Y); assign Y = ~(A & B); endmodule"
        }
        CellKind::Nor2 => {
            "module NOR2 (input A, input B, output Y); assign Y = ~(A | B); endmodule"
        }
        CellKind::And2 => {
            "module AND2 (input A, input B, output Y); assign Y = A & B; endmodule"
        }
        CellKind::Or2 => {
            "module OR2 (input A, input B, output Y); assign Y = A | B; endmodule"
        }
        CellKind::Xor2 => {
            "module XOR2 (input A, input B, output Y); assign Y = A ^ B; endmodule"
        }
        CellKind::Xnor2 => {
            "module XNOR2 (input A, input B, output Y); assign Y = ~(A ^ B); endmodule"
        }
        CellKind::Mux2 => {
            "module MUX2 (input A0, input A1, input S, output Y); assign Y = S ? A1 : A0; endmodule"
        }
        CellKind::Dff => {
            "module DFF #(parameter INIT = 1'b0) (input CK, input D, output reg Q); initial Q = INIT; always @(posedge CK) Q <= D; endmodule"
        }
        CellKind::Tie0 => "module TIE0 (output Y); assign Y = 1'b0; endmodule",
        CellKind::Tie1 => "module TIE1 (output Y); assign Y = 1'b1; endmodule",
    }
}

fn instance_name(kind: CellKind) -> &'static str {
    match kind {
        CellKind::Inv => "INV",
        CellKind::Buf => "BUF",
        CellKind::Nand2 => "NAND2",
        CellKind::Nor2 => "NOR2",
        CellKind::And2 => "AND2",
        CellKind::Or2 => "OR2",
        CellKind::Xor2 => "XOR2",
        CellKind::Xnor2 => "XNOR2",
        CellKind::Mux2 => "MUX2",
        CellKind::Dff => "DFF",
        CellKind::Tie0 => "TIE0",
        CellKind::Tie1 => "TIE1",
    }
}

/// Emits the netlist as self-contained structural Verilog.
///
/// # Errors
///
/// Returns [`NetlistError`] if the netlist fails validation.
pub fn to_structural_verilog(netlist: &Netlist) -> Result<String, NetlistError> {
    netlist.validate()?;
    let mut v = String::new();

    // Primitive definitions actually used.
    let used: BTreeSet<CellKind> = netlist.gates().iter().map(Gate::kind).collect();
    writeln!(v, "// primitive cells").unwrap();
    for kind in &used {
        writeln!(v, "{}", primitive_module(*kind)).unwrap();
    }
    writeln!(v).unwrap();

    // One behavioural module per SRAM macro geometry/port shape.
    for (i, s) in netlist.srams().iter().enumerate() {
        writeln!(
            v,
            "module SRAM_{i} (input CK{rp}{wp});",
            rp = (0..s.read_ports.len())
                .map(|p| format!(
                    ", input [{aw}:0] RA{p}, output [{dw}:0] RD{p}",
                    aw = s.read_ports[p].addr.len() - 1,
                    dw = s.read_ports[p].data.len() - 1
                ))
                .collect::<String>(),
            wp = (0..s.write_ports.len())
                .map(|p| format!(
                    ", input [{aw}:0] WA{p}, input [{dw}:0] WD{p}, input WE{p}",
                    aw = s.write_ports[p].addr.len() - 1,
                    dw = s.write_ports[p].data.len() - 1
                ))
                .collect::<String>(),
        )
        .unwrap();
        writeln!(
            v,
            "  reg [{w}:0] mem [0:{d}];",
            w = s.width - 1,
            d = s.depth - 1
        )
        .unwrap();
        writeln!(v, "  integer i;").unwrap();
        writeln!(
            v,
            "  initial for (i = 0; i <= {}; i = i + 1) mem[i] = 0;",
            s.depth - 1
        )
        .unwrap();
        for (p, _) in s.read_ports.iter().enumerate() {
            writeln!(v, "  assign RD{p} = mem[RA{p}];").unwrap();
        }
        if !s.write_ports.is_empty() {
            writeln!(v, "  always @(posedge CK) begin").unwrap();
            for (p, _) in s.write_ports.iter().enumerate() {
                writeln!(v, "    if (WE{p}) mem[WA{p}] <= WD{p};").unwrap();
            }
            writeln!(v, "  end").unwrap();
        }
        writeln!(v, "endmodule").unwrap();
        writeln!(v).unwrap();
    }

    // Top module.
    let net = |n: NetId| sanitize(netlist.net_name(n));
    let top = sanitize(netlist.name());
    let mut ports: Vec<String> = vec!["clock".to_owned()];
    ports.extend(netlist.inputs().iter().map(|(n, _)| sanitize(n)));
    ports.extend(netlist.outputs().iter().map(|(n, _)| sanitize(n)));
    writeln!(v, "module {top} (").unwrap();
    writeln!(v, "  {}", ports.join(",\n  ")).unwrap();
    writeln!(v, ");").unwrap();
    writeln!(v, "  input clock;").unwrap();
    for (name, _) in netlist.inputs() {
        writeln!(v, "  input {};", sanitize(name)).unwrap();
    }
    for (name, _) in netlist.outputs() {
        writeln!(v, "  output {};", sanitize(name)).unwrap();
    }

    // Net declarations (ports alias their nets through assigns below).
    for i in 0..netlist.net_count() {
        writeln!(v, "  wire {};", net(NetId::from_index(i))).unwrap();
    }
    for (name, n) in netlist.inputs() {
        let (port, netn) = (sanitize(name), net(*n));
        if port != netn {
            writeln!(v, "  assign {netn} = {port};").unwrap();
        }
    }
    for (name, n) in netlist.outputs() {
        let (port, netn) = (sanitize(name), net(*n));
        if port != netn {
            writeln!(v, "  assign {port} = {netn};").unwrap();
        }
    }
    writeln!(v).unwrap();

    // Gate instances.
    for (i, g) in netlist.gates().iter().enumerate() {
        match g {
            Gate::Comb {
                kind,
                inputs,
                output,
                ..
            } => {
                let pins = match kind {
                    CellKind::Mux2 => format!(
                        ".A0({}), .A1({}), .S({}), ",
                        net(inputs[0]),
                        net(inputs[1]),
                        net(inputs[2])
                    ),
                    CellKind::Tie0 | CellKind::Tie1 => String::new(),
                    _ if inputs.len() == 1 => format!(".A({}), ", net(inputs[0])),
                    _ => format!(".A({}), .B({}), ", net(inputs[0]), net(inputs[1])),
                };
                writeln!(
                    v,
                    "  {} u{i} ({pins}.Y({}));",
                    instance_name(*kind),
                    net(*output)
                )
                .unwrap();
            }
            Gate::Dff {
                name, d, q, init, ..
            } => {
                writeln!(
                    v,
                    "  DFF #(.INIT(1'b{})) {} (.CK(clock), .D({}), .Q({}));",
                    u8::from(*init),
                    sanitize(name),
                    net(*d),
                    net(*q)
                )
                .unwrap();
            }
        }
    }

    // Macro instances.
    for (i, s) in netlist.srams().iter().enumerate() {
        let mut pins = String::from(".CK(clock)");
        for (p, rp) in s.read_ports.iter().enumerate() {
            let addr: Vec<String> = rp.addr.iter().rev().map(|&n| net(n)).collect();
            let data: Vec<String> = rp.data.iter().rev().map(|&n| net(n)).collect();
            write!(
                pins,
                ", .RA{p}({{{}}}), .RD{p}({{{}}})",
                addr.join(", "),
                data.join(", ")
            )
            .unwrap();
        }
        for (p, wp) in s.write_ports.iter().enumerate() {
            let addr: Vec<String> = wp.addr.iter().rev().map(|&n| net(n)).collect();
            let data: Vec<String> = wp.data.iter().rev().map(|&n| net(n)).collect();
            write!(
                pins,
                ", .WA{p}({{{}}}), .WD{p}({{{}}}), .WE{p}({})",
                addr.join(", "),
                data.join(", "),
                net(wp.enable)
            )
            .unwrap();
        }
        writeln!(v, "  SRAM_{i} {} ({pins});", sanitize(&s.name)).unwrap();
    }

    writeln!(v, "endmodule").unwrap();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{SramMacro, SramReadPort, SramWritePort};

    #[test]
    fn emits_primitives_and_instances() {
        let mut nl = Netlist::new("top");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_input("a", a);
        nl.add_input("b", b);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Nand2, vec![a, b], y, 0);
        nl.add_output("y", y);
        let q = nl.add_net("q");
        let d = nl.add_net("d");
        nl.add_gate(CellKind::Inv, vec![q], d, 0);
        nl.add_dff("state_reg_0_", d, q, true, 0);
        let text = to_structural_verilog(&nl).unwrap();
        assert!(text.contains("module NAND2"));
        assert!(text.contains("module DFF"));
        assert!(text.contains("NAND2 u0 (.A(a), .B(b), .Y(y));"));
        assert!(text.contains("DFF #(.INIT(1'b1)) state_reg_0_"));
        assert!(text.contains("module top ("));
        // Unused primitives are not emitted.
        assert!(!text.contains("module XOR2"));
    }

    #[test]
    fn emits_sram_macros() {
        let mut nl = Netlist::new("rams");
        let a0 = nl.add_net("a0");
        let a1 = nl.add_net("a1");
        nl.add_input("a0", a0);
        nl.add_input("a1", a1);
        let d0 = nl.add_net("d0");
        let d1 = nl.add_net("d1");
        let we = nl.add_net("we");
        nl.add_input("we", we);
        let wd0 = nl.add_net("wd0");
        nl.add_input("wd0", wd0);
        let wd1 = nl.add_net("wd1");
        nl.add_input("wd1", wd1);
        nl.add_sram(SramMacro {
            name: "buf_macro".to_owned(),
            width: 2,
            depth: 4,
            init: vec![],
            read_ports: vec![SramReadPort {
                addr: vec![a0, a1],
                data: vec![d0, d1],
            }],
            write_ports: vec![SramWritePort {
                addr: vec![a0, a1],
                data: vec![wd0, wd1],
                enable: we,
            }],
            region: 0,
        });
        nl.add_output("d0", d0);
        nl.add_output("d1", d1);
        let text = to_structural_verilog(&nl).unwrap();
        assert!(text.contains("module SRAM_0"));
        assert!(text.contains("reg [1:0] mem [0:3];"));
        assert!(text.contains("if (WE0) mem[WA0] <= WD0;"));
        assert!(text.contains("SRAM_0 buf_macro"));
    }

    /// A representative mid-sized netlist: an 8-bit ripple counter.
    fn counter8() -> Netlist {
        let mut nl = Netlist::new("counter8");
        let mut qs = Vec::new();
        let mut ds = Vec::new();
        for i in 0..8 {
            qs.push(nl.add_net(format!("q{i}")));
            ds.push(nl.add_net(format!("d{i}")));
        }
        // d0 = ~q0; carry chain: d_i = q_i ^ (q_0 & … & q_{i-1}).
        nl.add_gate(CellKind::Inv, vec![qs[0]], ds[0], 0);
        let mut carry = qs[0];
        for i in 1..8 {
            let c = nl.add_net(format!("c{i}"));
            nl.add_gate(CellKind::And2, vec![carry, qs[i - 1]], c, 0);
            carry = c;
            nl.add_gate(CellKind::Xor2, vec![qs[i], carry], ds[i], 0);
        }
        for i in 0..8 {
            nl.add_dff(format!("count_reg_{i}_"), ds[i], qs[i], false, 0);
            nl.add_output(format!("count[{i}]"), qs[i]);
        }
        nl
    }

    #[test]
    fn midsized_netlist_exports_every_gate() {
        let nl = counter8();
        let text = to_structural_verilog(&nl).unwrap();
        // One module per used primitive plus the top module.
        let prims: BTreeSet<CellKind> = nl.gates().iter().map(Gate::kind).collect();
        assert_eq!(text.matches("module ").count(), prims.len() + 1);
        // Every comb gate appears as an instance uN, every DFF by name.
        for i in 0..nl.comb_gate_count() {
            assert!(text.contains(&format!(" u{i} (")), "missing u{i}");
        }
        assert!(text.contains("count_reg_7_"));
    }
}

//! Gate-level netlists and the synthetic standard-cell library.
//!
//! This crate is the foundation of the "commercial CAD" half of the Strober
//! flow (Fig. 5 of the paper). It defines:
//!
//! * [`CellKind`] / [`Cell`] / [`CellLibrary`] — a synthetic 45 nm-class
//!   standard-cell library in the spirit of a Liberty file: per-cell area,
//!   leakage power, pin capacitance and internal switching energy. The
//!   default library ([`CellLibrary::generic_45nm`]) is calibrated so that a
//!   small in-order RISC core lands in the hundred-milliwatt range at 1 GHz,
//!   matching the magnitudes reported in the paper's case study (Fig. 9a).
//! * [`Netlist`] — a flat, bit-level gate netlist with single-bit nets,
//!   combinational cells, D flip-flops and behavioural SRAM macros (RTL
//!   memories are mapped to macros rather than bit-blasted, exactly as a
//!   synthesis tool maps them to compiled RAMs).
//!
//! `strober-synth` produces netlists from RTL designs; `strober-gatesim`
//! simulates them and counts signal activity; `strober-power` turns that
//! activity plus this library into power numbers.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod cell;
mod netlist;
pub mod verilog;

pub use cell::{Cell, CellKind, CellLibrary};
pub use netlist::{
    Gate, GateId, NetId, Netlist, NetlistError, SramMacro, SramReadPort, SramWritePort,
};

//! Flat bit-level gate netlists.

use crate::cell::CellKind;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a single-bit net.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
    serde::Blob,
)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a net id from a raw index.
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Identifier of a gate instance.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
    serde::Blob,
)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The raw index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A gate instance.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub enum Gate {
    /// A combinational cell.
    Comb {
        /// The cell kind.
        kind: CellKind,
        /// Input nets (length matches [`CellKind::input_count`]; Mux2 order
        /// is `[a0, a1, s]`).
        inputs: Vec<NetId>,
        /// The single output net.
        output: NetId,
        /// Index into the netlist's region table for power attribution.
        region: u32,
    },
    /// A D flip-flop.
    Dff {
        /// Instance name (mangled by synthesis).
        name: String,
        /// The data input net.
        d: NetId,
        /// The output net.
        q: NetId,
        /// The power-on / reset value.
        init: bool,
        /// Index into the netlist's region table.
        region: u32,
    },
}

impl Gate {
    /// The gate's output net.
    pub fn output(&self) -> NetId {
        match self {
            Gate::Comb { output, .. } => *output,
            Gate::Dff { q, .. } => *q,
        }
    }

    /// The region index for power attribution.
    pub fn region(&self) -> u32 {
        match self {
            Gate::Comb { region, .. } | Gate::Dff { region, .. } => *region,
        }
    }

    /// The cell kind ([`CellKind::Dff`] for flip-flops).
    pub fn kind(&self) -> CellKind {
        match self {
            Gate::Comb { kind, .. } => *kind,
            Gate::Dff { .. } => CellKind::Dff,
        }
    }
}

/// A read port of an SRAM macro: address bits (LSB first) in, data bits
/// (LSB first) out. Reads are combinational, as in the RTL model.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct SramReadPort {
    /// Address nets, least significant bit first.
    pub addr: Vec<NetId>,
    /// Data output nets driven by the macro, least significant bit first.
    pub data: Vec<NetId>,
}

/// A write port of an SRAM macro; the write commits on the clock edge when
/// `enable` is high.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct SramWritePort {
    /// Address nets, least significant bit first.
    pub addr: Vec<NetId>,
    /// Data input nets, least significant bit first.
    pub data: Vec<NetId>,
    /// Write enable net.
    pub enable: NetId,
}

/// A behavioural SRAM/register-file macro.
///
/// Synthesis maps RTL memories to macros instead of bit-blasting them, as
/// real flows map them to compiled RAMs; the power model charges per-access
/// energy and per-bit leakage (see `strober-power`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct SramMacro {
    /// Instance name (mangled by synthesis).
    pub name: String,
    /// Word width in bits.
    pub width: u32,
    /// Number of words.
    pub depth: usize,
    /// Initial contents (shorter than `depth` means zero-padded).
    pub init: Vec<u64>,
    /// Read ports.
    pub read_ports: Vec<SramReadPort>,
    /// Write ports.
    pub write_ports: Vec<SramWritePort>,
    /// Index into the netlist's region table.
    pub region: u32,
}

impl SramMacro {
    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.depth as u64 * u64::from(self.width)
    }
}

/// Errors detected by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net is driven by more than one gate/macro output.
    MultipleDrivers {
        /// The conflicting net.
        net: String,
    },
    /// A net has no driver and is not a primary input.
    Undriven {
        /// The undriven net.
        net: String,
    },
    /// The combinational gate graph has a cycle.
    CombinationalLoop,
    /// A gate has the wrong number of input pins.
    PinCountMismatch {
        /// The offending gate.
        gate: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => write!(f, "net `{net}` has multiple drivers"),
            NetlistError::Undriven { net } => write!(f, "net `{net}` has no driver"),
            NetlistError::CombinationalLoop => write!(f, "combinational loop in gate netlist"),
            NetlistError::PinCountMismatch { gate } => {
                write!(f, "gate `{gate}` has the wrong number of input pins")
            }
        }
    }
}

impl Error for NetlistError {}

/// A flat gate-level netlist.
///
/// Nets are single bits. Primary inputs/outputs use `port[i]` bit naming so
/// word-level RTL ports map onto them deterministically.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    inputs: Vec<(String, NetId)>,
    outputs: Vec<(String, NetId)>,
    gates: Vec<Gate>,
    srams: Vec<SramMacro>,
    regions: Vec<String>,
    input_set: HashMap<u32, ()>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            net_names: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
            srams: Vec::new(),
            regions: vec!["<top>".to_owned()],
            input_set: HashMap::new(),
        }
    }

    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a named net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.into());
        id
    }

    /// The name of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a net of this netlist.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// The number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Registers an existing net as a primary input bit.
    pub fn add_input(&mut self, name: impl Into<String>, net: NetId) {
        self.inputs.push((name.into(), net));
        self.input_set.insert(net.0, ());
    }

    /// Registers a primary output bit.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// The primary input bits, in declaration order.
    pub fn inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// The primary output bits, in declaration order.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Interns a region name for power attribution and returns its index.
    pub fn intern_region(&mut self, name: &str) -> u32 {
        if let Some(i) = self.regions.iter().position(|r| r == name) {
            return i as u32;
        }
        self.regions.push(name.to_owned());
        (self.regions.len() - 1) as u32
    }

    /// The region table.
    pub fn regions(&self) -> &[String] {
        &self.regions
    }

    /// Adds a combinational gate.
    ///
    /// # Panics
    ///
    /// Panics if the pin count does not match the cell kind (a synthesis
    /// bug, not a data error).
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        inputs: Vec<NetId>,
        output: NetId,
        region: u32,
    ) -> GateId {
        assert_eq!(
            inputs.len(),
            kind.input_count(),
            "pin count mismatch for {kind}"
        );
        assert_ne!(kind, CellKind::Dff, "use add_dff for flip-flops");
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate::Comb {
            kind,
            inputs,
            output,
            region,
        });
        id
    }

    /// Adds a D flip-flop.
    pub fn add_dff(
        &mut self,
        name: impl Into<String>,
        d: NetId,
        q: NetId,
        init: bool,
        region: u32,
    ) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate::Dff {
            name: name.into(),
            d,
            q,
            init,
            region,
        });
        id
    }

    /// Adds an SRAM macro.
    pub fn add_sram(&mut self, sram: SramMacro) {
        self.srams.push(sram);
    }

    /// The gates, in creation order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The SRAM macros.
    pub fn srams(&self) -> &[SramMacro] {
        &self.srams
    }

    /// Iterates over the flip-flops with their gate ids.
    pub fn dffs(&self) -> impl Iterator<Item = (GateId, &str, NetId, NetId, bool)> {
        self.gates.iter().enumerate().filter_map(|(i, g)| match g {
            Gate::Dff {
                name, d, q, init, ..
            } => Some((GateId(i as u32), name.as_str(), *d, *q, *init)),
            _ => None,
        })
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Dff { .. }))
            .count()
    }

    /// Number of combinational gates.
    pub fn comb_gate_count(&self) -> usize {
        self.gates.len() - self.dff_count()
    }

    /// Fanout count per net: how many gate input pins (and macro
    /// address/data/enable pins) each net drives.
    pub fn fanout(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.net_names.len()];
        for g in &self.gates {
            match g {
                Gate::Comb { inputs, .. } => {
                    for n in inputs {
                        fanout[n.index()] += 1;
                    }
                }
                Gate::Dff { d, .. } => fanout[d.index()] += 1,
            }
        }
        for s in &self.srams {
            for rp in &s.read_ports {
                for n in &rp.addr {
                    fanout[n.index()] += 1;
                }
            }
            for wp in &s.write_ports {
                for n in wp.addr.iter().chain(&wp.data) {
                    fanout[n.index()] += 1;
                }
                fanout[wp.enable.index()] += 1;
            }
        }
        for (_, n) in &self.outputs {
            fanout[n.index()] += 1;
        }
        fanout
    }

    /// Computes a topological order over combinational elements (gates and
    /// SRAM read ports), for levelized simulation.
    ///
    /// Returns indices into a combined element space: `0..gates.len()` are
    /// gate indices (DFFs excluded from ordering constraints — they are
    /// sources), and `gates.len()..` index SRAM read ports in declaration
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] on a cycle.
    pub fn levelize(&self) -> Result<Vec<usize>, NetlistError> {
        // Map: net -> driving element (comb gates + sram read port data bits).
        let n_elems =
            self.gates.len() + self.srams.iter().map(|s| s.read_ports.len()).sum::<usize>();
        let mut driver_of: Vec<Option<usize>> = vec![None; self.net_names.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if let Gate::Comb { output, .. } = g {
                driver_of[output.index()] = Some(i);
            }
        }
        let mut elem = self.gates.len();
        for s in &self.srams {
            for rp in &s.read_ports {
                for d in &rp.data {
                    driver_of[d.index()] = Some(elem);
                }
                elem += 1;
            }
        }

        let mut indegree = vec![0u32; n_elems];
        let mut users: Vec<Vec<u32>> = vec![Vec::new(); n_elems];
        let connect =
            |src_net: NetId, dst: usize, users: &mut Vec<Vec<u32>>, indeg: &mut Vec<u32>| {
                if let Some(drv) = driver_of[src_net.index()] {
                    users[drv].push(dst as u32);
                    indeg[dst] += 1;
                }
            };

        for (i, g) in self.gates.iter().enumerate() {
            if let Gate::Comb { inputs, .. } = g {
                for n in inputs {
                    connect(*n, i, &mut users, &mut indegree);
                }
            }
        }
        let mut elem = self.gates.len();
        for s in &self.srams {
            for rp in &s.read_ports {
                for a in &rp.addr {
                    connect(*a, elem, &mut users, &mut indegree);
                }
                elem += 1;
            }
        }

        // DFF elements always have indegree 0 and are skipped in evaluation;
        // keeping them in the order is harmless and simplifies indexing.
        let mut queue: Vec<u32> = (0..n_elems as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n_elems);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v as usize);
            for &u in &users[v as usize] {
                indegree[u as usize] -= 1;
                if indegree[u as usize] == 0 {
                    queue.push(u);
                }
            }
        }
        if order.len() != n_elems {
            return Err(NetlistError::CombinationalLoop);
        }
        Ok(order)
    }

    /// Validates structural sanity: single driver per net, every net driven
    /// by a gate, macro or primary input, pin counts correct, and no
    /// combinational loops.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut drivers = vec![0u32; self.net_names.len()];
        for g in &self.gates {
            match g {
                Gate::Comb {
                    kind,
                    inputs,
                    output,
                    ..
                } => {
                    if inputs.len() != kind.input_count() {
                        return Err(NetlistError::PinCountMismatch {
                            gate: format!("{kind}->{}", self.net_name(*output)),
                        });
                    }
                    drivers[output.index()] += 1;
                }
                Gate::Dff { q, .. } => drivers[q.index()] += 1,
            }
        }
        for s in &self.srams {
            for rp in &s.read_ports {
                for d in &rp.data {
                    drivers[d.index()] += 1;
                }
            }
        }
        for (_, n) in &self.inputs {
            drivers[n.index()] += 1;
        }
        for (i, &count) in drivers.iter().enumerate() {
            let id = NetId(i as u32);
            if count > 1 {
                return Err(NetlistError::MultipleDrivers {
                    net: self.net_name(id).to_owned(),
                });
            }
            if count == 0 {
                return Err(NetlistError::Undriven {
                    net: self.net_name(id).to_owned(),
                });
            }
        }
        self.levelize().map(|_| ())
    }

    /// Total cell area in µm² under a library.
    pub fn area_um2(&self, lib: &crate::CellLibrary) -> f64 {
        let cells: f64 = self.gates.iter().map(|g| lib.cell(g.kind()).area_um2).sum();
        let srams: f64 = self
            .srams
            .iter()
            .map(|s| s.capacity_bits() as f64 * lib.sram_area_per_bit_um2)
            .sum();
        cells + srams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellLibrary;

    fn tiny() -> Netlist {
        // out = !(a & b) via NAND; plus a DFF toggling through an inverter.
        let mut nl = Netlist::new("tiny");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let y = nl.add_net("y");
        nl.add_input("a", a);
        nl.add_input("b", b);
        nl.add_gate(CellKind::Nand2, vec![a, b], y, 0);
        nl.add_output("y", y);
        let q = nl.add_net("q");
        let d = nl.add_net("d");
        nl.add_gate(CellKind::Inv, vec![q], d, 0);
        nl.add_dff("toggle_reg", d, q, false, 0);
        nl.add_output("q", q);
        nl
    }

    #[test]
    fn tiny_netlist_validates() {
        let nl = tiny();
        nl.validate().unwrap();
        assert_eq!(nl.dff_count(), 1);
        assert_eq!(nl.comb_gate_count(), 2);
        assert_eq!(nl.net_count(), 5);
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut nl = tiny();
        let y = NetId(2);
        let a = NetId(0);
        nl.add_gate(CellKind::Buf, vec![a], y, 0);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn undriven_net_detected() {
        let mut nl = tiny();
        let dangling = nl.add_net("dangling");
        nl.add_output("z", dangling);
        assert!(matches!(nl.validate(), Err(NetlistError::Undriven { .. })));
    }

    #[test]
    fn comb_loop_detected() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate(CellKind::Inv, vec![a], b, 0);
        nl.add_gate(CellKind::Inv, vec![b], a, 0);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalLoop)
        ));
    }

    #[test]
    fn dff_feedback_is_not_a_comb_loop() {
        let nl = tiny();
        assert!(nl.levelize().is_ok());
    }

    #[test]
    fn fanout_counts_pins() {
        let nl = tiny();
        let fo = nl.fanout();
        // net a feeds one NAND pin.
        assert_eq!(fo[0], 1);
        // net q feeds the inverter and the primary output.
        assert_eq!(fo[3], 2);
    }

    #[test]
    fn sram_read_port_participates_in_levelization() {
        let mut nl = Netlist::new("s");
        let a0 = nl.add_net("a0");
        nl.add_input("a0", a0);
        let d0 = nl.add_net("d0");
        let inv = nl.add_net("inv");
        nl.add_sram(SramMacro {
            name: "ram".to_owned(),
            width: 1,
            depth: 2,
            init: vec![],
            read_ports: vec![SramReadPort {
                addr: vec![a0],
                data: vec![d0],
            }],
            write_ports: vec![],
            region: 0,
        });
        nl.add_gate(CellKind::Inv, vec![d0], inv, 0);
        nl.add_output("o", inv);
        nl.validate().unwrap();
        let order = nl.levelize().unwrap();
        // The SRAM read element (index 1) must come before the inverter (0).
        let pos_inv = order.iter().position(|&e| e == 0).unwrap();
        let pos_ram = order.iter().position(|&e| e == 1).unwrap();
        assert!(pos_ram < pos_inv);
    }

    #[test]
    fn area_accounts_cells_and_srams() {
        let lib = CellLibrary::generic_45nm();
        let nl = tiny();
        let a = nl.area_um2(&lib);
        assert!(a > 0.0);
        let mut with_ram = tiny();
        with_ram.add_sram(SramMacro {
            name: "ram".to_owned(),
            width: 8,
            depth: 64,
            init: vec![],
            read_ports: vec![],
            write_ports: vec![],
            region: 0,
        });
        assert!(with_ram.area_um2(&lib) > a + 100.0);
    }

    #[test]
    fn region_interning_dedups() {
        let mut nl = Netlist::new("r");
        let a = nl.intern_region("core/fetch");
        let b = nl.intern_region("core/fetch");
        let c = nl.intern_region("core/decode");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(nl.regions().len(), 3); // <top>, fetch, decode
    }
}

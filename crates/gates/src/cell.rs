//! The synthetic standard-cell library (Liberty analog).

use std::collections::BTreeMap;
use std::fmt;

/// The primitive cell set the technology mapper targets.
///
/// A deliberately small, orthogonal library: every word-level RTL operator
/// lowers to these cells plus SRAM macros. `Tie0`/`Tie1` drive constant
/// nets, as tie cells do in real flows.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
    serde::Blob,
)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-input multiplexer (`s ? a1 : a0`).
    Mux2,
    /// Positive-edge D flip-flop.
    Dff,
    /// Constant-zero tie cell.
    Tie0,
    /// Constant-one tie cell.
    Tie1,
}

impl CellKind {
    /// All cell kinds, for iteration.
    pub const ALL: [CellKind; 12] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::Tie0,
        CellKind::Tie1,
    ];

    /// Number of input pins (excluding clock).
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2 => 3,
            CellKind::Dff => 1,
            CellKind::Tie0 | CellKind::Tie1 => 0,
        }
    }

    /// Evaluates the cell's boolean function. Inputs beyond
    /// [`CellKind::input_count`] are ignored.
    ///
    /// For [`CellKind::Mux2`] the input order is `[a0, a1, s]`.
    /// [`CellKind::Dff`] is sequential and returns its D input (the caller
    /// decides when to latch). Tie cells return their constant.
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] && inputs[1]),
            CellKind::Nor2 => !(inputs[0] || inputs[1]),
            CellKind::And2 => inputs[0] && inputs[1],
            CellKind::Or2 => inputs[0] || inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Dff => inputs[0],
            CellKind::Tie0 => false,
            CellKind::Tie1 => true,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Electrical and physical characteristics of one cell (a Liberty entry).
///
/// Units: area in µm², leakage in nW, capacitance in fF, energy in fJ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The cell kind this entry describes.
    pub kind: CellKind,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Static leakage power in nW.
    pub leakage_nw: f64,
    /// Capacitance of each input pin in fF.
    pub pin_cap_ff: f64,
    /// Internal (short-circuit + parasitic) energy dissipated per output
    /// toggle, in fJ.
    pub internal_energy_fj: f64,
}

/// A complete cell library plus global technology parameters.
///
/// The default values are synthetic but dimensionally sensible for a 45 nm
/// node at nominal voltage; see the crate docs for the calibration goal.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: String,
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Estimated wire capacitance added per fanout endpoint, in fF.
    pub wire_cap_per_fanout_ff: f64,
    /// Clock pin capacitance of a DFF plus its share of the clock tree, in
    /// fF; charged twice per cycle (rise and fall).
    pub clock_cap_per_dff_ff: f64,
    /// SRAM macro: energy per read access per bit of the accessed word, fJ.
    pub sram_read_energy_per_bit_fj: f64,
    /// SRAM macro: energy per write access per bit of the accessed word, fJ.
    pub sram_write_energy_per_bit_fj: f64,
    /// SRAM macro: leakage per bit of capacity, nW.
    pub sram_leakage_per_bit_nw: f64,
    /// SRAM macro: area per bit of capacity, µm².
    pub sram_area_per_bit_um2: f64,
    cells: BTreeMap<CellKind, Cell>,
}

impl CellLibrary {
    /// The bundled synthetic 45 nm-class library.
    pub fn generic_45nm() -> Self {
        let mut cells = BTreeMap::new();
        let mut add = |kind, area, leak, cap, energy| {
            cells.insert(
                kind,
                Cell {
                    kind,
                    area_um2: area,
                    leakage_nw: leak,
                    pin_cap_ff: cap,
                    internal_energy_fj: energy,
                },
            );
        };
        // area µm², leakage nW, pin cap fF, internal energy fJ/toggle.
        // Energies and leakage are calibrated so that the bundled in-order
        // core lands in the paper's Fig. 9a band (around a hundred mW at
        // 1 GHz): our cores are much smaller than Rocket-chip, so per-cell
        // constants sit at the high end to compensate (see DESIGN.md).
        add(CellKind::Inv, 0.8, 180.0, 3.0, 4.5);
        add(CellKind::Buf, 1.1, 225.0, 3.0, 6.8);
        add(CellKind::Nand2, 1.1, 270.0, 3.6, 6.8);
        add(CellKind::Nor2, 1.1, 270.0, 3.6, 6.8);
        add(CellKind::And2, 1.5, 330.0, 3.6, 9.0);
        add(CellKind::Or2, 1.5, 330.0, 3.6, 9.0);
        add(CellKind::Xor2, 2.3, 450.0, 4.8, 14.3);
        add(CellKind::Xnor2, 2.3, 450.0, 4.8, 14.3);
        add(CellKind::Mux2, 2.3, 420.0, 4.2, 12.8);
        add(CellKind::Dff, 4.5, 825.0, 4.2, 27.0);
        add(CellKind::Tie0, 0.3, 30.0, 0.0, 0.0);
        add(CellKind::Tie1, 0.3, 30.0, 0.0, 0.0);
        CellLibrary {
            name: "generic45".to_owned(),
            voltage: 0.9,
            wire_cap_per_fanout_ff: 1.8,
            clock_cap_per_dff_ff: 26.0,
            sram_read_energy_per_bit_fj: 180.0,
            sram_write_energy_per_bit_fj: 240.0,
            sram_leakage_per_bit_nw: 3.5,
            sram_area_per_bit_um2: 0.45,
            cells: cells.clone(),
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up a cell entry.
    pub fn cell(&self, kind: CellKind) -> &Cell {
        &self.cells[&kind]
    }

    /// Energy in fJ dissipated when the given cell's output toggles once
    /// while driving `fanout` input pins (including estimated wire load):
    /// `E = E_internal + (fanout · (C_pin + C_wire)) · V² / 2`.
    pub fn switching_energy_fj(&self, kind: CellKind, fanout: usize) -> f64 {
        let cell = self.cell(kind);
        let cload_ff = fanout as f64 * (cell.pin_cap_ff + self.wire_cap_per_fanout_ff);
        cell.internal_energy_fj + 0.5 * cload_ff * self.voltage * self.voltage
    }

    /// Per-cycle clock-tree energy for one DFF, in fJ: two clock edges
    /// charging the clock pin + tree share.
    pub fn clock_energy_per_dff_fj(&self) -> f64 {
        self.clock_cap_per_dff_ff * self.voltage * self.voltage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_present_in_default_library() {
        let lib = CellLibrary::generic_45nm();
        for kind in CellKind::ALL {
            let c = lib.cell(kind);
            assert_eq!(c.kind, kind);
            assert!(c.area_um2 > 0.0);
        }
    }

    #[test]
    fn boolean_functions() {
        assert!(CellKind::Inv.eval(&[false]));
        assert!(!CellKind::Inv.eval(&[true]));
        assert!(CellKind::Nand2.eval(&[true, false]));
        assert!(!CellKind::Nand2.eval(&[true, true]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(!CellKind::Xnor2.eval(&[true, false]));
        assert!(CellKind::Mux2.eval(&[false, true, true]));
        assert!(!CellKind::Mux2.eval(&[false, true, false]));
        assert!(!CellKind::Tie0.eval(&[]));
        assert!(CellKind::Tie1.eval(&[]));
    }

    #[test]
    fn input_counts() {
        assert_eq!(CellKind::Inv.input_count(), 1);
        assert_eq!(CellKind::Mux2.input_count(), 3);
        assert_eq!(CellKind::Tie1.input_count(), 0);
        assert_eq!(CellKind::Dff.input_count(), 1);
    }

    #[test]
    fn switching_energy_grows_with_fanout() {
        let lib = CellLibrary::generic_45nm();
        let e1 = lib.switching_energy_fj(CellKind::Nand2, 1);
        let e4 = lib.switching_energy_fj(CellKind::Nand2, 4);
        assert!(e4 > e1);
        assert!(e1 > lib.cell(CellKind::Nand2).internal_energy_fj);
    }

    #[test]
    fn xor_costs_more_than_nand() {
        let lib = CellLibrary::generic_45nm();
        assert!(
            lib.cell(CellKind::Xor2).internal_energy_fj
                > lib.cell(CellKind::Nand2).internal_energy_fj
        );
    }
}

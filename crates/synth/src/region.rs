//! Region (floorplan component) assignment for power attribution.
//!
//! Fig. 9a of the paper breaks average power down by floorplan component
//! (fetch unit, register file, L1 caches, …). Real tools attribute each
//! cell to the hierarchy instance that contains it. Our designs are flat,
//! but state elements carry hierarchical names (`"core/fetch/pc"`); this
//! pass assigns every combinational node to a component by propagating
//! ownership backward from the state elements and outputs that consume it,
//! approximating the placement a hierarchical flow would produce.

use std::collections::VecDeque;
use strober_rtl::{Design, Node, NodeId};

/// The component prefix of a hierarchical state-element name: everything up
/// to the last `/` (or `"<top>"` for unscoped names).
pub(crate) fn component_of(name: &str) -> String {
    match name.rfind('/') {
        Some(i) => name[..i].to_owned(),
        None => "<top>".to_owned(),
    }
}

/// Assigns each node a component region.
///
/// Sinks (register next/enable cones, memory port cones, outputs) seed the
/// propagation with their owner's component; each remaining node takes the
/// component of the first sink cone that reaches it (breadth-first, in
/// declaration order, so attribution is deterministic).
pub fn assign_regions(design: &Design) -> Vec<String> {
    let n = design.node_count();
    let mut region: Vec<Option<u32>> = vec![None; n];
    let mut table: Vec<String> = Vec::new();
    let intern = |name: String, table: &mut Vec<String>| -> u32 {
        if let Some(i) = table.iter().position(|t| *t == name) {
            i as u32
        } else {
            table.push(name);
            (table.len() - 1) as u32
        }
    };

    // Seed queue: (node, region) pairs from every sink, in deterministic
    // order.
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    for (_, r) in design.registers() {
        let comp = intern(component_of(r.name()), &mut table);
        if let Some(next) = r.next() {
            queue.push_back((next, comp));
        }
        if let Some(en) = r.enable() {
            queue.push_back((en, comp));
        }
    }
    for (_, m) in design.memories() {
        let comp = intern(component_of(m.name()), &mut table);
        for rp in m.read_ports() {
            queue.push_back((rp.addr(), comp));
        }
        for wp in m.write_ports() {
            queue.push_back((wp.addr(), comp));
            queue.push_back((wp.data(), comp));
            queue.push_back((wp.enable(), comp));
        }
    }
    let top = intern("<top>".to_owned(), &mut table);
    for (_, id) in design.outputs() {
        queue.push_back((*id, top));
    }

    while let Some((id, comp)) = queue.pop_front() {
        if region[id.index()].is_some() {
            continue;
        }
        region[id.index()] = Some(comp);
        match *design.node(id) {
            Node::Input(_) | Node::Const(_) | Node::RegOut(_) => {}
            Node::Unary { a, .. } | Node::Slice { a, .. } => queue.push_back((a, comp)),
            Node::Binary { a, b, .. } => {
                queue.push_back((a, comp));
                queue.push_back((b, comp));
            }
            Node::Mux { sel, t, f } => {
                queue.push_back((sel, comp));
                queue.push_back((t, comp));
                queue.push_back((f, comp));
            }
            Node::Cat { hi, lo } => {
                queue.push_back((hi, comp));
                queue.push_back((lo, comp));
            }
            Node::MemRead { mem, port } => {
                let addr = design.memory(mem).read_ports()[port].addr();
                queue.push_back((addr, comp));
            }
            Node::Wire(wid) => {
                if let Some(src) = design.wire_driver(wid) {
                    queue.push_back((src, comp));
                }
            }
        }
    }

    (0..n)
        .map(|i| {
            region[i]
                .map(|r| table[r as usize].clone())
                .unwrap_or_else(|| "<top>".to_owned())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;

    #[test]
    fn component_prefixes() {
        assert_eq!(component_of("core/fetch/pc"), "core/fetch");
        assert_eq!(component_of("pc"), "<top>");
        assert_eq!(component_of("a/b"), "a");
    }

    #[test]
    fn logic_is_attributed_to_the_consuming_component() {
        let ctx = Ctx::new("t");
        let w8 = Width::new(8).unwrap();
        let x = ctx.input("x", w8);
        let r = ctx.scope("fetch", |c| c.reg("pc", w8, 0));
        // The adder feeding fetch/pc belongs to the fetch component.
        let next = x.add_lit(1);
        r.set(&next);
        let design = ctx.finish().unwrap();
        let regions = assign_regions(&design);
        assert_eq!(regions[next.id().index()], "fetch");
    }

    #[test]
    fn output_only_logic_goes_to_top() {
        let ctx = Ctx::new("t");
        let w8 = Width::new(8).unwrap();
        let x = ctx.input("x", w8);
        let y = x.add_lit(2);
        ctx.output("o", &y);
        let design = ctx.finish().unwrap();
        let regions = assign_regions(&design);
        assert_eq!(regions[y.id().index()], "<top>");
    }

    #[test]
    fn first_sink_wins_for_shared_logic() {
        let ctx = Ctx::new("t");
        let w8 = Width::new(8).unwrap();
        let x = ctx.input("x", w8);
        let shared = x.add_lit(1);
        let a = ctx.scope("alpha", |c| c.reg("r", w8, 0));
        let b = ctx.scope("beta", |c| c.reg("r", w8, 0));
        a.set(&shared);
        b.set(&shared);
        let design = ctx.finish().unwrap();
        let regions = assign_regions(&design);
        // alpha is declared first, so the shared adder lands in alpha.
        assert_eq!(regions[shared.id().index()], "alpha");
    }
}

//! Technology mapping: bit-blasting word-level RTL onto the cell library.

use crate::info::SynthInfo;
use crate::mangle;
use crate::opt;
use crate::region::{assign_regions, component_of};
use crate::retime;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use strober_gates::{
    CellKind, NetId, Netlist, NetlistError, SramMacro, SramReadPort, SramWritePort,
};
use strober_rtl::{BinOp, Design, Node, RtlError, UnOp};

/// Synthesis options.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SynthOptions {
    /// Run the optimisation passes (constant propagation, buffer elision,
    /// dead-gate sweep). On by default, as in any real flow.
    pub optimize: bool,
    /// Mangle instance and net names the way CAD tools do. On by default;
    /// turning it off makes netlists easier to eyeball in tests.
    pub mangle: bool,
    /// Hierarchical register-name prefixes whose registers the retimer may
    /// move (the paper's designer-annotated retimed datapaths, §IV-C3).
    pub retime_prefixes: Vec<String>,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            optimize: true,
            mangle: true,
            retime_prefixes: Vec::new(),
        }
    }
}

/// The output of synthesis: the netlist and the verification sidecar.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, serde::Blob)]
pub struct SynthResult {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Correspondence information for formal matching and replay.
    pub info: SynthInfo,
}

/// Errors produced by synthesis.
#[derive(Debug)]
#[non_exhaustive]
pub enum SynthError {
    /// The input design failed validation.
    Rtl(RtlError),
    /// The produced netlist failed validation (an internal synthesis bug).
    Netlist(NetlistError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Rtl(e) => write!(f, "synthesis input error: {e}"),
            SynthError::Netlist(e) => write!(f, "synthesis produced a bad netlist: {e}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Rtl(e) => Some(e),
            SynthError::Netlist(e) => Some(e),
        }
    }
}

impl From<RtlError> for SynthError {
    fn from(e: RtlError) -> Self {
        SynthError::Rtl(e)
    }
}

impl From<NetlistError> for SynthError {
    fn from(e: NetlistError) -> Self {
        SynthError::Netlist(e)
    }
}

/// Replaces `/` with `_` so hierarchical RTL names become legal instance
/// names.
fn sanitize(name: &str) -> String {
    name.replace('/', "_")
}

#[allow(clippy::type_complexity)] // per-port (addr bits, data bits) pairs
struct Lower {
    nl: Netlist,
    bits: Vec<Vec<NetId>>,
    node_region: Vec<u32>,
    tie0: Option<NetId>,
    tie1: Option<NetId>,
    fresh: u64,
    cur_region: u32,
    /// Per memory, per read port: (addr bits, data bits).
    mem_reads: Vec<Vec<Option<(Vec<NetId>, Vec<NetId>)>>>,
}

impl Lower {
    fn net(&mut self) -> NetId {
        let id = self.nl.add_net(format!("n{}", self.fresh));
        self.fresh += 1;
        id
    }

    fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        let out = self.net();
        self.nl
            .add_gate(kind, inputs.to_vec(), out, self.cur_region);
        out
    }

    fn tie(&mut self, v: bool) -> NetId {
        if v {
            if let Some(t) = self.tie1 {
                return t;
            }
            let out = self.nl.add_net("tie1");
            self.nl.add_gate(CellKind::Tie1, vec![], out, 0);
            self.tie1 = Some(out);
            out
        } else {
            if let Some(t) = self.tie0 {
                return t;
            }
            let out = self.nl.add_net("tie0");
            self.nl.add_gate(CellKind::Tie0, vec![], out, 0);
            self.tie0 = Some(out);
            out
        }
    }

    fn const_bits(&mut self, value: u64, width: u32) -> Vec<NetId> {
        (0..width)
            .map(|i| self.tie((value >> i) & 1 == 1))
            .collect()
    }

    fn inv(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Inv, &[a])
    }

    fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::And2, &[a, b])
    }

    fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Or2, &[a, b])
    }

    fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xor2, &[a, b])
    }

    fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xnor2, &[a, b])
    }

    fn mux2(&mut self, a0: NetId, a1: NetId, s: NetId) -> NetId {
        self.gate(CellKind::Mux2, &[a0, a1, s])
    }

    fn tree(&mut self, kind: CellKind, bits: &[NetId]) -> NetId {
        assert!(!bits.is_empty());
        let mut layer = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    fn full_add(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let x = self.xor2(a, b);
        let s = self.xor2(x, cin);
        let g1 = self.and2(a, b);
        let g2 = self.and2(x, cin);
        let cout = self.or2(g1, g2);
        (s, cout)
    }

    fn add_bits(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_add(a[i], b[i], carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    fn not_bits(&mut self, a: &[NetId]) -> Vec<NetId> {
        a.iter().map(|&n| self.inv(n)).collect()
    }

    /// Unsigned `a < b`, ripple from the LSB.
    fn ltu_bits(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let mut lt = self.tie(false);
        for i in 0..a.len() {
            let na = self.inv(a[i]);
            let t1 = self.and2(na, b[i]);
            let e = self.xnor2(a[i], b[i]);
            let t2 = self.and2(e, lt);
            lt = self.or2(t1, t2);
        }
        lt
    }

    fn eq_bits(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let diffs: Vec<NetId> = (0..a.len()).map(|i| self.xor2(a[i], b[i])).collect();
        let any = self.tree(CellKind::Or2, &diffs);
        self.inv(any)
    }

    /// Flips the MSB of both operands so unsigned comparison implements
    /// signed comparison.
    fn flip_msb(&mut self, a: &[NetId]) -> Vec<NetId> {
        let mut v = a.to_vec();
        let last = v.len() - 1;
        v[last] = self.inv(v[last]);
        v
    }

    /// Barrel shifter. `kind` selects shl/shr/sra semantics.
    fn shift_bits(&mut self, a: &[NetId], amount: &[NetId], op: BinOp) -> Vec<NetId> {
        let w = a.len() as u32;
        let zero = self.tie(false);
        let sign = a[a.len() - 1];
        let fill = if op == BinOp::Sra { sign } else { zero };

        // Stage bits k with 2^k < w participate in the barrel network
        // (indexing `amount` by stage position is the natural phrasing).
        #[allow(clippy::needless_range_loop)]
        let stage_count = (0..32).take_while(|&k| (1u64 << k) < u64::from(w)).count();
        let mut cur = a.to_vec();
        #[allow(clippy::needless_range_loop)]
        for k in 0..stage_count {
            let sh = 1usize << k;
            let sel = amount[k];
            let mut next = Vec::with_capacity(cur.len());
            for i in 0..cur.len() {
                let shifted = match op {
                    BinOp::Shl => {
                        if i >= sh {
                            cur[i - sh]
                        } else {
                            zero
                        }
                    }
                    _ => {
                        if i + sh < cur.len() {
                            cur[i + sh]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.mux2(cur[i], shifted, sel));
            }
            cur = next;
        }

        // Any amount bit at or above the stage range forces an overshift.
        let high_bits: Vec<NetId> = amount.iter().skip(stage_count).copied().collect();
        if high_bits.is_empty() {
            return cur;
        }
        let over = self.tree(CellKind::Or2, &high_bits);
        cur.iter().map(|&bit| self.mux2(bit, fill, over)).collect()
    }

    fn mul_bits(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        let w = a.len();
        let zero = self.tie(false);
        let mut acc = vec![zero; w];
        for (i, &bi) in b.iter().enumerate() {
            // Partial product: (a << i) & b[i], truncated to w bits.
            let mut pp = Vec::with_capacity(w);
            for j in 0..w {
                if j < i {
                    pp.push(zero);
                } else {
                    pp.push(self.and2(a[j - i], bi));
                }
            }
            let (sum, _) = self.add_bits(&acc, &pp, zero);
            acc = sum;
        }
        acc
    }

    /// Restoring array divider producing `(quotient, remainder)`, with the
    /// RTL semantics for division by zero (`q = all ones`, `r = a`).
    fn divrem_bits(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, Vec<NetId>) {
        let w = a.len();
        let zero = self.tie(false);
        let one = self.tie(true);
        // Remainder register is w+1 bits so `2r+1` never overflows.
        let mut r = vec![zero; w + 1];
        let mut b_ext = b.to_vec();
        b_ext.push(zero);
        let mut q = vec![zero; w];
        for i in (0..w).rev() {
            // r = (r << 1) | a[i]
            let mut shifted = Vec::with_capacity(w + 1);
            shifted.push(a[i]);
            shifted.extend_from_slice(&r[..w]);
            // ge = shifted >= b_ext
            let lt = self.ltu_bits(&shifted, &b_ext);
            let ge = self.inv(lt);
            // diff = shifted - b_ext
            let nb = self.not_bits(&b_ext);
            let (diff, _) = self.add_bits(&shifted, &nb, one);
            r = (0..w + 1)
                .map(|j| self.mux2(shifted[j], diff[j], ge))
                .collect();
            q[i] = ge;
        }
        let b_zero = {
            let any = self.tree(CellKind::Or2, b);
            self.inv(any)
        };
        let q = q.iter().map(|&bit| self.mux2(bit, one, b_zero)).collect();
        let r = (0..w).map(|j| self.mux2(r[j], a[j], b_zero)).collect();
        (q, r)
    }
}

/// Synthesizes a design to gates.
///
/// See the [crate documentation](crate) for the pass pipeline and an
/// example.
///
/// # Errors
///
/// Returns [`SynthError::Rtl`] if the design fails validation and
/// [`SynthError::Netlist`] if an internal bug produces a malformed netlist
/// (the output is always re-validated before being returned).
pub fn synthesize(design: &Design, opts: &SynthOptions) -> Result<SynthResult, SynthError> {
    let _span = strober_probe::span("strober.synth.synthesize");
    design.validate()?;
    let lower_span = strober_probe::span("strober.synth.lower");
    let topo = design.topo_order()?;
    let regions = assign_regions(design);

    let mut lw = Lower {
        nl: Netlist::new(design.name()),
        bits: vec![Vec::new(); design.node_count()],
        node_region: Vec::with_capacity(design.node_count()),
        tie0: None,
        tie1: None,
        fresh: 0,
        cur_region: 0,
        mem_reads: design
            .memories()
            .map(|(_, m)| vec![None; m.read_ports().len()])
            .collect(),
    };

    // Intern node regions.
    for r in &regions {
        let idx = lw.nl.intern_region(r);
        lw.node_region.push(idx);
    }

    // Primary input bits.
    let mut port_bits: Vec<Vec<NetId>> = Vec::new();
    for p in design.ports() {
        let bits: Vec<NetId> = (0..p.width().bits())
            .map(|i| {
                let name = format!("{}[{i}]", p.name());
                let n = lw.nl.add_net(name.clone());
                lw.nl.add_input(name, n);
                n
            })
            .collect();
        port_bits.push(bits);
    }

    // Flip-flop output nets, created before node lowering so RegOut can
    // reference them.
    let mut dff_q: Vec<Vec<NetId>> = Vec::new();
    let mut dff_names: Vec<Vec<String>> = Vec::new();
    for (_, r) in design.registers() {
        let base = sanitize(r.name());
        let mut qs = Vec::with_capacity(r.width().bits() as usize);
        let mut names = Vec::with_capacity(r.width().bits() as usize);
        for i in 0..r.width().bits() {
            let name = format!("{base}_reg_{i}_");
            qs.push(lw.nl.add_net(format!("{name}q")));
            names.push(name);
        }
        dff_q.push(qs);
        dff_names.push(names);
    }

    // Lower every node in topological order.
    for id in topo.iter() {
        lw.cur_region = lw.node_region[id.index()];
        let w = design.width(id).bits();
        let out: Vec<NetId> = match *design.node(id) {
            Node::Input(p) => port_bits[p.index()].clone(),
            Node::Const(v) => lw.const_bits(v, w),
            Node::RegOut(r) => dff_q[r.index()].clone(),
            Node::Wire(wid) => {
                let src = design.wire_driver(wid).expect("validated");
                lw.bits[src.index()].clone()
            }
            Node::Slice { a, hi, lo } => lw.bits[a.index()][lo as usize..=hi as usize].to_vec(),
            Node::Cat { hi, lo } => {
                let mut v = lw.bits[lo.index()].clone();
                v.extend_from_slice(&lw.bits[hi.index()]);
                v
            }
            Node::Unary { op, a } => {
                let abits = lw.bits[a.index()].clone();
                match op {
                    UnOp::Not => lw.not_bits(&abits),
                    UnOp::Neg => {
                        let na = lw.not_bits(&abits);
                        let zeros = lw.const_bits(0, abits.len() as u32);
                        let one = lw.tie(true);
                        lw.add_bits(&na, &zeros, one).0
                    }
                    UnOp::RedAnd => vec![lw.tree(CellKind::And2, &abits)],
                    UnOp::RedOr => vec![lw.tree(CellKind::Or2, &abits)],
                    UnOp::RedXor => vec![lw.tree(CellKind::Xor2, &abits)],
                }
            }
            Node::Binary { op, a, b } => {
                let ab = lw.bits[a.index()].clone();
                let bb = lw.bits[b.index()].clone();
                match op {
                    BinOp::Add => {
                        let zero = lw.tie(false);
                        lw.add_bits(&ab, &bb, zero).0
                    }
                    BinOp::Sub => {
                        let nb = lw.not_bits(&bb);
                        let one = lw.tie(true);
                        lw.add_bits(&ab, &nb, one).0
                    }
                    BinOp::Mul => lw.mul_bits(&ab, &bb),
                    BinOp::DivU => lw.divrem_bits(&ab, &bb).0,
                    BinOp::RemU => lw.divrem_bits(&ab, &bb).1,
                    BinOp::And => (0..ab.len()).map(|i| lw.and2(ab[i], bb[i])).collect(),
                    BinOp::Or => (0..ab.len()).map(|i| lw.or2(ab[i], bb[i])).collect(),
                    BinOp::Xor => (0..ab.len()).map(|i| lw.xor2(ab[i], bb[i])).collect(),
                    BinOp::Shl | BinOp::Shr | BinOp::Sra => lw.shift_bits(&ab, &bb, op),
                    BinOp::Eq => vec![lw.eq_bits(&ab, &bb)],
                    BinOp::Neq => {
                        let e = lw.eq_bits(&ab, &bb);
                        vec![lw.inv(e)]
                    }
                    BinOp::Ltu => vec![lw.ltu_bits(&ab, &bb)],
                    BinOp::Leu => {
                        let gt = lw.ltu_bits(&bb, &ab);
                        vec![lw.inv(gt)]
                    }
                    BinOp::Lts => {
                        let fa = lw.flip_msb(&ab);
                        let fb = lw.flip_msb(&bb);
                        vec![lw.ltu_bits(&fa, &fb)]
                    }
                    BinOp::Les => {
                        let fa = lw.flip_msb(&ab);
                        let fb = lw.flip_msb(&bb);
                        let gt = lw.ltu_bits(&fb, &fa);
                        vec![lw.inv(gt)]
                    }
                }
            }
            Node::Mux { sel, t, f } => {
                let s = lw.bits[sel.index()][0];
                let tb = lw.bits[t.index()].clone();
                let fb = lw.bits[f.index()].clone();
                (0..tb.len()).map(|i| lw.mux2(fb[i], tb[i], s)).collect()
            }
            Node::MemRead { mem, port } => {
                let addr_node = design.memory(mem).read_ports()[port].addr();
                let addr = lw.bits[addr_node.index()].clone();
                let data: Vec<NetId> = (0..w).map(|_| lw.net()).collect();
                lw.mem_reads[mem.index()][port] = Some((addr, data.clone()));
                data
            }
        };
        debug_assert_eq!(out.len(), w as usize, "bit width mismatch in lowering");
        lw.bits[id.index()] = out;
    }

    // Flip-flops: D = enable ? next : Q.
    for (ri, (_, r)) in design.registers().enumerate() {
        let region_name = component_of(r.name());
        let region = lw.nl.intern_region(&region_name);
        lw.cur_region = region;
        let next_bits = lw.bits[r.next().expect("validated").index()].clone();
        let en_bit = r.enable().map(|e| lw.bits[e.index()][0]);
        for i in 0..r.width().bits() as usize {
            let q = dff_q[ri][i];
            let d = match en_bit {
                Some(en) => lw.mux2(q, next_bits[i], en),
                None => next_bits[i],
            };
            let init = (r.init() >> i) & 1 == 1;
            lw.nl.add_dff(dff_names[ri][i].clone(), d, q, init, region);
        }
    }

    // SRAM macros.
    for (mi, (_, m)) in design.memories().enumerate() {
        let region_name = component_of(m.name());
        let region = lw.nl.intern_region(&region_name);
        let read_ports: Vec<SramReadPort> = lw.mem_reads[mi]
            .iter()
            .map(|entry| {
                let (addr, data) = entry.clone().expect("every read port has a node");
                SramReadPort { addr, data }
            })
            .collect();
        let write_ports: Vec<SramWritePort> = m
            .write_ports()
            .iter()
            .map(|wp| SramWritePort {
                addr: lw.bits[wp.addr().index()].clone(),
                data: lw.bits[wp.data().index()].clone(),
                enable: lw.bits[wp.enable().index()][0],
            })
            .collect();
        lw.nl.add_sram(SramMacro {
            name: format!("{}_macro", sanitize(m.name())),
            width: m.width().bits(),
            depth: m.depth(),
            init: m.init().to_vec(),
            read_ports,
            write_ports,
            region,
        });
    }

    // Primary outputs.
    for (name, id) in design.outputs() {
        for (i, &net) in lw.bits[id.index()].iter().enumerate() {
            lw.nl.add_output(format!("{name}[{i}]"), net);
        }
    }

    let mut netlist = lw.nl;
    let mut info = SynthInfo::default();
    drop(lower_span);

    // Retiming of annotated register groups.
    if !opts.retime_prefixes.is_empty() {
        let _span = strober_probe::span("strober.synth.retime");
        let mut annotated_dffs: HashSet<String> = HashSet::new();
        for (ri, (_, r)) in design.registers().enumerate() {
            if opts
                .retime_prefixes
                .iter()
                .any(|p| r.name().starts_with(p.as_str()))
            {
                info.retimed_regs.push(r.name().to_owned());
                for n in &dff_names[ri] {
                    annotated_dffs.insert(n.clone());
                }
            }
        }
        info.retime_moves = retime::forward_retime(&mut netlist, &annotated_dffs);
    }

    if opts.optimize {
        let _span = strober_probe::span("strober.synth.opt");
        opt::optimize(&mut netlist);
    }

    let rename: HashMap<String, String> = if opts.mangle {
        mangle::mangle(&mut netlist)
    } else {
        HashMap::new()
    };
    let mangled =
        |name: &str| -> String { rename.get(name).cloned().unwrap_or_else(|| name.to_owned()) };

    // Build the verification sidecar with post-mangle names.
    for (ri, (_, r)) in design.registers().enumerate() {
        if info.is_retimed(r.name()) {
            continue;
        }
        let names: Vec<String> = dff_names[ri].iter().map(|n| mangled(n)).collect();
        info.reg_map.insert(r.name().to_owned(), names);
    }
    for (_, m) in design.memories() {
        let macro_name = format!("{}_macro", sanitize(m.name()));
        info.mem_map
            .insert(m.name().to_owned(), mangled(&macro_name));
    }

    netlist.validate()?;
    Ok(SynthResult { netlist, info })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_dsl::Ctx;
    use strober_rtl::Width;

    fn w(bits: u32) -> Width {
        Width::new(bits).unwrap()
    }

    fn plain() -> SynthOptions {
        SynthOptions {
            optimize: false,
            mangle: false,
            retime_prefixes: Vec::new(),
        }
    }

    #[test]
    fn counter_synthesizes() {
        let ctx = Ctx::new("counter");
        let count = ctx.reg("count", w(8), 0);
        count.set(&count.out().add_lit(1));
        ctx.output("value", &count.out());
        let design = ctx.finish().unwrap();
        let result = synthesize(&design, &plain()).unwrap();
        assert_eq!(result.netlist.dff_count(), 8);
        assert_eq!(result.info.reg_map["count"].len(), 8);
        assert!(result.netlist.comb_gate_count() >= 8);
    }

    #[test]
    fn memory_maps_to_macro() {
        let ctx = Ctx::new("ram");
        let m = ctx.mem("buf", w(16), 32);
        let addr = ctx.input("addr", w(5));
        let data = ctx.input("data", w(16));
        let we = ctx.input("we", Width::BIT);
        ctx.output("q", &m.read(&addr));
        m.write(&addr, &data, &we);
        let design = ctx.finish().unwrap();
        let result = synthesize(&design, &plain()).unwrap();
        assert_eq!(result.netlist.srams().len(), 1);
        let sram = &result.netlist.srams()[0];
        assert_eq!(sram.width, 16);
        assert_eq!(sram.depth, 32);
        assert_eq!(sram.read_ports.len(), 1);
        assert_eq!(sram.write_ports.len(), 1);
        assert_eq!(result.info.mem_map["buf"], "buf_macro");
    }

    #[test]
    fn mangling_renames_but_info_tracks() {
        let ctx = Ctx::new("t");
        let r = ctx.reg("state", w(4), 5);
        r.set(&r.out().add_lit(1));
        ctx.output("o", &r.out());
        let design = ctx.finish().unwrap();
        let result = synthesize(
            &design,
            &SynthOptions {
                optimize: true,
                mangle: true,
                retime_prefixes: Vec::new(),
            },
        )
        .unwrap();
        let mapped = &result.info.reg_map["state"];
        assert_eq!(mapped.len(), 4);
        // The mangled names must actually exist in the netlist.
        let dff_names: Vec<&str> = result.netlist.dffs().map(|(_, n, _, _, _)| n).collect();
        for m in mapped {
            assert!(
                dff_names.contains(&m.as_str()),
                "mapped name {m} not found in netlist"
            );
            assert_ne!(m, "state_reg_0_", "mangling did not rename");
        }
    }

    #[test]
    fn retimed_registers_excluded_from_map() {
        let ctx = Ctx::new("t");
        let a = ctx.input("a", w(8));
        let s1 = ctx.scope("fpu", |c| c.reg("stage1", w(8), 0));
        let s2 = ctx.scope("fpu", |c| c.reg("stage2", w(8), 0));
        s1.set(&a.add_lit(1));
        s2.set(&s1.out().add_lit(1));
        ctx.output("o", &s2.out());
        let design = ctx.finish().unwrap();
        let result = synthesize(
            &design,
            &SynthOptions {
                optimize: false,
                mangle: false,
                retime_prefixes: vec!["fpu/".to_owned()],
            },
        )
        .unwrap();
        assert!(result.info.is_retimed("fpu/stage1"));
        assert!(result.info.is_retimed("fpu/stage2"));
        assert!(!result.info.reg_map.contains_key("fpu/stage1"));
    }

    #[test]
    fn optimization_reduces_gate_count() {
        let ctx = Ctx::new("t");
        let a = ctx.input("a", w(16));
        // Adding zero is a no-op the constant folder should chew through.
        let zero = ctx.lit(0, w(16));
        let sum = &a + &zero;
        ctx.output("o", &sum);
        let design = ctx.finish().unwrap();
        let unopt = synthesize(&design, &plain()).unwrap();
        let opt = synthesize(
            &design,
            &SynthOptions {
                optimize: true,
                mangle: false,
                retime_prefixes: Vec::new(),
            },
        )
        .unwrap();
        assert!(
            opt.netlist.comb_gate_count() < unopt.netlist.comb_gate_count(),
            "optimizer failed: {} vs {}",
            opt.netlist.comb_gate_count(),
            unopt.netlist.comb_gate_count()
        );
    }

    #[test]
    fn every_operator_synthesizes() {
        // Build one design touching every op, ensure validation passes.
        let ctx = Ctx::new("ops");
        let a = ctx.input("a", w(13));
        let b = ctx.input("b", w(13));
        let s = ctx.input("s", Width::BIT);
        ctx.output("add", &(&a + &b));
        ctx.output("sub", &(&a - &b));
        ctx.output("mul", &a.mul(&b));
        ctx.output("div", &a.divu(&b));
        ctx.output("rem", &a.remu(&b));
        ctx.output("and", &(&a & &b));
        ctx.output("or", &(&a | &b));
        ctx.output("xor", &(&a ^ &b));
        ctx.output("not", &!&a);
        ctx.output("neg", &a.neg());
        ctx.output("shl", &a.shl(&b));
        ctx.output("shr", &a.shr(&b));
        ctx.output("sra", &a.sra(&b));
        ctx.output("eq", &a.eq(&b));
        ctx.output("neq", &a.neq(&b));
        ctx.output("ltu", &a.ltu(&b));
        ctx.output("leu", &a.leu(&b));
        ctx.output("lts", &a.lts(&b));
        ctx.output("les", &a.les(&b));
        ctx.output("redor", &a.red_or());
        ctx.output("redand", &a.red_and());
        ctx.output("redxor", &a.red_xor());
        ctx.output("mux", &s.mux(&a, &b));
        ctx.output("slice", &a.bits(7, 3));
        ctx.output("cat", &a.cat(&b));
        let design = ctx.finish().unwrap();
        let result = synthesize(&design, &plain()).unwrap();
        assert!(result.netlist.comb_gate_count() > 100);
    }
}

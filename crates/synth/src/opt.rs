//! Netlist optimisation: constant propagation, identity simplification,
//! buffer elision and dead-gate sweeping.
//!
//! Flip-flops and SRAM macros are never removed — the Strober flow
//! constrains synthesis to preserve state elements so that RTL snapshots
//! remain loadable (the paper's retimed datapaths are the one sanctioned
//! exception, handled by `retime`).

use std::collections::HashMap;
use strober_gates::{CellKind, Gate, NetId, Netlist};

/// How a net's value is known after simplification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetVal {
    /// Unknown at synthesis time; identified by a representative net.
    Free(NetId),
    /// A compile-time constant.
    Const(bool),
}

/// Runs the optimisation pipeline in place.
pub fn optimize(netlist: &mut Netlist) {
    let simplified = simplify(netlist);
    let swept = sweep(&simplified);
    *netlist = swept;
}

/// Constant propagation and local identity rewrites, producing a rebuilt
/// netlist whose gates are all live-candidate canonical forms.
fn simplify(nl: &Netlist) -> Netlist {
    let order = nl.levelize().expect("input netlist must be validated");

    // alias[net] = what the net actually is after simplification.
    let mut alias: Vec<NetVal> = (0..nl.net_count())
        .map(|i| NetVal::Free(NetId::from_index(i)))
        .collect();
    let resolve = |alias: &[NetVal], n: NetId| -> NetVal {
        // Aliases are created in topological order, so one hop suffices:
        // a Free(x) entry always points at a canonical representative.
        alias[n.index()]
    };

    // Gates that survive, with resolved inputs. DFF/SRAM handled later.
    // (kind, resolved inputs, output, region)
    let mut kept: Vec<(CellKind, Vec<NetVal>, NetId, u32)> = Vec::new();

    let gates = nl.gates();
    for &elem in &order {
        if elem >= gates.len() {
            continue; // SRAM read ports are barriers, not simplifiable.
        }
        let Gate::Comb {
            kind,
            inputs,
            output,
            region,
        } = &gates[elem]
        else {
            continue; // DFF outputs stay Free.
        };
        let ins: Vec<NetVal> = inputs.iter().map(|&n| resolve(&alias, n)).collect();
        let consts: Vec<Option<bool>> = ins
            .iter()
            .map(|v| match v {
                NetVal::Const(b) => Some(*b),
                NetVal::Free(_) => None,
            })
            .collect();

        // Fully constant gate: fold.
        if consts.iter().all(Option::is_some) {
            let vals: Vec<bool> = consts.iter().map(|c| c.unwrap()).collect();
            alias[output.index()] = NetVal::Const(kind.eval(&vals));
            continue;
        }

        // Local rewrites. `emit` falls through to keeping a gate.
        let rewritten: Option<NetVal> = match kind {
            CellKind::Buf => Some(ins[0]),
            CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Nand2
            | CellKind::Nor2 => binary_rewrite(*kind, &ins, &consts, &mut kept, *output, *region),
            CellKind::Mux2 => {
                // ins = [a0, a1, s]
                match consts[2] {
                    Some(false) => Some(ins[0]),
                    Some(true) => Some(ins[1]),
                    None => {
                        if ins[0] == ins[1] {
                            Some(ins[0])
                        } else if consts[0] == Some(false) && consts[1] == Some(true) {
                            Some(ins[2]) // mux(0,1,s) = s
                        } else {
                            None
                        }
                    }
                }
            }
            _ => None,
        };

        match rewritten {
            Some(v) => alias[output.index()] = v,
            None => kept.push((*kind, ins, *output, *region)),
        }
    }

    rebuild(nl, &alias, &kept)
}

/// Identity rewrites for two-input gates. May push a replacement gate (e.g.
/// an inverter) and return its output as the alias.
fn binary_rewrite(
    kind: CellKind,
    ins: &[NetVal],
    consts: &[Option<bool>],
    kept: &mut Vec<(CellKind, Vec<NetVal>, NetId, u32)>,
    output: NetId,
    region: u32,
) -> Option<NetVal> {
    let (a, b) = (ins[0], ins[1]);
    let mut inv_of = |x: NetVal| -> NetVal {
        kept.push((CellKind::Inv, vec![x], output, region));
        NetVal::Free(output)
    };
    // Same-input identities.
    if a == b {
        return Some(match kind {
            CellKind::And2 | CellKind::Or2 => a,
            CellKind::Xor2 => NetVal::Const(false),
            CellKind::Xnor2 => NetVal::Const(true),
            CellKind::Nand2 | CellKind::Nor2 => inv_of(a),
            _ => unreachable!("binary_rewrite called on non-binary kind"),
        });
    }
    // One constant input: reduce. Normalise so the constant is `k`, the
    // free operand `x`.
    let (k, x) = match (consts[0], consts[1]) {
        (Some(k), None) => (k, b),
        (None, Some(k)) => (k, a),
        _ => return None,
    };
    Some(match (kind, k) {
        (CellKind::And2, false) => NetVal::Const(false),
        (CellKind::And2, true) => x,
        (CellKind::Or2, true) => NetVal::Const(true),
        (CellKind::Or2, false) => x,
        (CellKind::Nand2, false) => NetVal::Const(true),
        (CellKind::Nand2, true) => inv_of(x),
        (CellKind::Nor2, true) => NetVal::Const(false),
        (CellKind::Nor2, false) => inv_of(x),
        (CellKind::Xor2, false) => x,
        (CellKind::Xor2, true) => inv_of(x),
        (CellKind::Xnor2, true) => x,
        (CellKind::Xnor2, false) => inv_of(x),
        _ => unreachable!("binary_rewrite called on non-binary kind"),
    })
}

/// Rebuilds a netlist applying an alias map and a kept-gate list, keeping
/// all DFFs, SRAMs, inputs and outputs.
fn rebuild(
    nl: &Netlist,
    alias: &[NetVal],
    kept: &[(CellKind, Vec<NetVal>, NetId, u32)],
) -> Netlist {
    let mut out = Netlist::new(nl.name());
    for r in nl.regions().iter().skip(1) {
        out.intern_region(r);
    }

    // Copy all net names; unused ones are swept later.
    let mut net_map: Vec<NetId> = Vec::with_capacity(nl.net_count());
    for i in 0..nl.net_count() {
        net_map.push(out.add_net(nl.net_name(NetId::from_index(i))));
    }

    let mut tie_cache: HashMap<bool, NetId> = HashMap::new();
    let mut materialise = |v: NetVal, out: &mut Netlist| -> NetId {
        match v {
            NetVal::Free(n) => net_map[n.index()],
            NetVal::Const(b) => *tie_cache.entry(b).or_insert_with(|| {
                let n = out.add_net(if b { "tie1_opt" } else { "tie0_opt" });
                out.add_gate(
                    if b { CellKind::Tie1 } else { CellKind::Tie0 },
                    vec![],
                    n,
                    0,
                );
                n
            }),
        }
    };

    for (name, net) in nl.inputs() {
        out.add_input(name.clone(), net_map[net.index()]);
    }

    for (kind, ins, output, region) in kept {
        let inputs: Vec<NetId> = ins.iter().map(|&v| materialise(v, &mut out)).collect();
        out.add_gate(*kind, inputs, net_map[output.index()], *region);
    }

    for g in nl.gates() {
        if let Gate::Dff {
            name,
            d,
            q,
            init,
            region,
        } = g
        {
            let dv = alias[d.index()];
            let d_net = materialise(dv, &mut out);
            out.add_dff(name.clone(), d_net, net_map[q.index()], *init, *region);
        }
    }

    for s in nl.srams() {
        let mut s2 = s.clone();
        for rp in &mut s2.read_ports {
            for a in &mut rp.addr {
                *a = materialise(alias[a.index()], &mut out);
            }
            for d in &mut rp.data {
                *d = net_map[d.index()];
            }
        }
        for wp in &mut s2.write_ports {
            for a in &mut wp.addr {
                *a = materialise(alias[a.index()], &mut out);
            }
            for d in &mut wp.data {
                *d = materialise(alias[d.index()], &mut out);
            }
            wp.enable = materialise(alias[wp.enable.index()], &mut out);
        }
        out.add_sram(s2);
    }

    for (name, net) in nl.outputs() {
        let v = alias[net.index()];
        let mapped = materialise(v, &mut out);
        out.add_output(name.clone(), mapped);
    }

    out
}

/// Removes gates (and nets) that no output, flip-flop or macro transitively
/// depends on.
fn sweep(nl: &Netlist) -> Netlist {
    // Liveness over nets, seeded by outputs, DFF data pins, SRAM pins.
    let mut live = vec![false; nl.net_count()];
    let mut stack: Vec<NetId> = Vec::new();
    let mark = |n: NetId, live: &mut Vec<bool>, stack: &mut Vec<NetId>| {
        if !live[n.index()] {
            live[n.index()] = true;
            stack.push(n);
        }
    };

    for (_, n) in nl.outputs() {
        mark(*n, &mut live, &mut stack);
    }
    for g in nl.gates() {
        if let Gate::Dff { d, q, .. } = g {
            mark(*d, &mut live, &mut stack);
            mark(*q, &mut live, &mut stack);
        }
    }
    for s in nl.srams() {
        for rp in &s.read_ports {
            for &a in &rp.addr {
                mark(a, &mut live, &mut stack);
            }
            for &d in &rp.data {
                mark(d, &mut live, &mut stack);
            }
        }
        for wp in &s.write_ports {
            for &a in &wp.addr {
                mark(a, &mut live, &mut stack);
            }
            for &d in &wp.data {
                mark(d, &mut live, &mut stack);
            }
            mark(wp.enable, &mut live, &mut stack);
        }
    }

    // driver map for backward traversal.
    let mut driver: Vec<Option<usize>> = vec![None; nl.net_count()];
    for (i, g) in nl.gates().iter().enumerate() {
        driver[g.output().index()] = Some(i);
    }
    while let Some(n) = stack.pop() {
        if let Some(gi) = driver[n.index()] {
            if let Gate::Comb { inputs, .. } = &nl.gates()[gi] {
                for &i in inputs {
                    mark(i, &mut live, &mut stack);
                }
            }
        }
    }

    // Rebuild with only live nets and gates.
    let mut out = Netlist::new(nl.name());
    for r in nl.regions().iter().skip(1) {
        out.intern_region(r);
    }
    let mut net_map: Vec<Option<NetId>> = vec![None; nl.net_count()];
    for i in 0..nl.net_count() {
        if live[i] {
            net_map[i] = Some(out.add_net(nl.net_name(NetId::from_index(i))));
        }
    }
    let remap = |n: NetId, net_map: &[Option<NetId>]| -> NetId {
        net_map[n.index()].expect("live gate references dead net")
    };

    for (name, net) in nl.inputs() {
        // Primary inputs stay even if unused; give dead ones a net.
        let mapped = match net_map[net.index()] {
            Some(m) => m,
            None => out.add_net(nl.net_name(*net)),
        };
        out.add_input(name.clone(), mapped);
    }
    for g in nl.gates() {
        match g {
            Gate::Comb {
                kind,
                inputs,
                output,
                region,
            } => {
                if live[output.index()] {
                    let ins = inputs.iter().map(|&n| remap(n, &net_map)).collect();
                    out.add_gate(*kind, ins, remap(*output, &net_map), *region);
                }
            }
            Gate::Dff {
                name,
                d,
                q,
                init,
                region,
            } => {
                out.add_dff(
                    name.clone(),
                    remap(*d, &net_map),
                    remap(*q, &net_map),
                    *init,
                    *region,
                );
            }
        }
    }
    for s in nl.srams() {
        let mut s2 = s.clone();
        for rp in &mut s2.read_ports {
            for a in &mut rp.addr {
                *a = remap(*a, &net_map);
            }
            for d in &mut rp.data {
                *d = remap(*d, &net_map);
            }
        }
        for wp in &mut s2.write_ports {
            for a in &mut wp.addr {
                *a = remap(*a, &net_map);
            }
            for d in &mut wp.data {
                *d = remap(*d, &net_map);
            }
            wp.enable = remap(wp.enable, &net_map);
        }
        out.add_sram(s2);
    }
    for (name, net) in nl.outputs() {
        out.add_output(name.clone(), remap(*net, &net_map));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_nand_folds() {
        let mut nl = Netlist::new("t");
        let t1 = nl.add_net("t1");
        nl.add_gate(CellKind::Tie1, vec![], t1, 0);
        let t0 = nl.add_net("t0");
        nl.add_gate(CellKind::Tie0, vec![], t0, 0);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Nand2, vec![t1, t0], y, 0);
        nl.add_output("y", y);
        nl.validate().unwrap();
        optimize(&mut nl);
        nl.validate().unwrap();
        // The NAND folds to constant 1; only a tie cell should remain.
        assert_eq!(nl.comb_gate_count(), 1);
        assert_eq!(nl.gates()[0].kind(), CellKind::Tie1);
    }

    #[test]
    fn and_with_one_becomes_wire() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_input("a", a);
        let t1 = nl.add_net("t1");
        nl.add_gate(CellKind::Tie1, vec![], t1, 0);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::And2, vec![a, t1], y, 0);
        nl.add_output("y", y);
        optimize(&mut nl);
        nl.validate().unwrap();
        assert_eq!(nl.comb_gate_count(), 0);
        // Output should be wired straight to the input net.
        assert_eq!(nl.outputs()[0].1, nl.inputs()[0].1);
    }

    #[test]
    fn dead_logic_swept_but_dffs_kept() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_input("a", a);
        // Dead inverter chain.
        let d1 = nl.add_net("d1");
        nl.add_gate(CellKind::Inv, vec![a], d1, 0);
        let d2 = nl.add_net("d2");
        nl.add_gate(CellKind::Inv, vec![d1], d2, 0);
        // Live DFF with no output consumer: must survive.
        let q = nl.add_net("q");
        let nd = nl.add_net("nd");
        nl.add_gate(CellKind::Inv, vec![q], nd, 0);
        nl.add_dff("r", nd, q, false, 0);
        nl.add_output("a_out", a);
        optimize(&mut nl);
        nl.validate().unwrap();
        assert_eq!(nl.dff_count(), 1);
        // The two dead inverters are gone; the DFF's inverter remains.
        assert_eq!(nl.comb_gate_count(), 1);
    }

    #[test]
    fn mux_with_constant_select_simplifies() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_input("a", a);
        nl.add_input("b", b);
        let t1 = nl.add_net("t1");
        nl.add_gate(CellKind::Tie1, vec![], t1, 0);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Mux2, vec![a, b, t1], y, 0);
        nl.add_output("y", y);
        optimize(&mut nl);
        nl.validate().unwrap();
        assert_eq!(nl.comb_gate_count(), 0);
        assert_eq!(nl.outputs()[0].1, nl.inputs()[1].1);
    }

    #[test]
    fn xor_with_same_input_folds_to_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        nl.add_input("a", a);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Xor2, vec![a, a], y, 0);
        nl.add_output("y", y);
        optimize(&mut nl);
        nl.validate().unwrap();
        assert_eq!(nl.gates()[0].kind(), CellKind::Tie0);
    }
}

//! The synthesis sidecar consumed by formal verification.

use std::collections::HashMap;

/// Correspondence information emitted by synthesis.
///
/// Real synthesis tools write a "verification information" database that a
/// formal equivalence checker uses to match points between the RTL and the
/// gate-level netlist (§IV-C1 of the paper). This struct is our equivalent:
/// it records, for every RTL register, the (mangled) names of the DFF
/// instances implementing each bit, and for every RTL memory the macro
/// instance name. `strober-formal` validates this information independently
/// before the replay flow trusts it.
#[derive(
    Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize, serde::Blob,
)]
pub struct SynthInfo {
    /// RTL register name → DFF instance names, least significant bit first.
    pub reg_map: HashMap<String, Vec<String>>,
    /// RTL memory name → SRAM macro instance name.
    pub mem_map: HashMap<String, String>,
    /// RTL registers that were retimed away: their values cannot be loaded
    /// from an RTL snapshot and must be recovered by I/O forcing
    /// (§IV-C3).
    pub retimed_regs: Vec<String>,
    /// Number of forward retiming moves applied (0 when retiming is off).
    pub retime_moves: usize,
}

impl SynthInfo {
    /// Whether a register was retimed away.
    pub fn is_retimed(&self, rtl_reg: &str) -> bool {
        self.retimed_regs.iter().any(|r| r == rtl_reg)
    }

    /// Total number of mapped DFF bits.
    pub fn mapped_bits(&self) -> usize {
        self.reg_map.values().map(Vec::len).sum()
    }
}

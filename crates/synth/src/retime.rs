//! Forward register retiming (Leiserson–Saxe moves) for annotated
//! datapaths.
//!
//! The paper (§IV-C3) observes that CAD tools retime designer-annotated
//! datapaths (typically FPU pipelines), after which the moved registers'
//! values cannot be reconstructed from an RTL state snapshot; replay
//! recovers them by forcing the recorded I/O for the datapath latency
//! before each measurement window. This module performs genuine forward
//! moves: when every input of a combinational gate is driven by an
//! annotated flip-flop whose output has no other fanout, the input
//! flip-flops are deleted and a single flip-flop is inserted after the
//! gate, with its initial value recomputed through the gate function.

use std::collections::{HashMap, HashSet};
use strober_gates::{Gate, NetId, Netlist};

/// Repeatedly applies forward retiming moves to the annotated flip-flops
/// until a fixed point; returns the number of moves applied.
///
/// `annotated` holds DFF instance names eligible for motion. Newly created
/// flip-flops are named `rt<k>_reg_` and remain eligible, so registers
/// migrate as far forward as the structure allows — exactly the behaviour
/// that breaks name-based state loading and motivates the I/O-forcing
/// replay strategy.
pub fn forward_retime(netlist: &mut Netlist, annotated: &HashSet<String>) -> usize {
    let mut annotated: HashSet<String> = annotated.clone();
    let mut total_moves = 0;
    let mut fresh = 0usize;

    // Iterate to a fixed point, bounded to guard against pathological
    // structures.
    for _ in 0..64 {
        let moves = retime_pass(netlist, &mut annotated, &mut fresh);
        if moves == 0 {
            break;
        }
        total_moves += moves;
    }
    total_moves
}

fn retime_pass(netlist: &mut Netlist, annotated: &mut HashSet<String>, fresh: &mut usize) -> usize {
    let fanout = netlist.fanout();

    // Map net -> index of the DFF driving it, for annotated DFFs only.
    let mut dff_driving: HashMap<NetId, usize> = HashMap::new();
    for (i, g) in netlist.gates().iter().enumerate() {
        if let Gate::Dff { name, q, .. } = g {
            if annotated.contains(name) {
                dff_driving.insert(*q, i);
            }
        }
    }

    // Plan moves greedily; a DFF may participate in at most one move.
    struct Move {
        gate: usize,
        removed_dffs: Vec<usize>,
        new_init: bool,
    }
    let mut consumed: HashSet<usize> = HashSet::new();
    let mut moves: Vec<Move> = Vec::new();

    for (gi, g) in netlist.gates().iter().enumerate() {
        let Gate::Comb { kind, inputs, .. } = g else {
            continue;
        };
        if inputs.is_empty() {
            continue; // tie cells
        }
        let mut removed = Vec::with_capacity(inputs.len());
        let mut inits = Vec::with_capacity(inputs.len());
        let mut ok = true;
        for &n in inputs {
            match dff_driving.get(&n) {
                // Input DFF must feed only this gate and not already be
                // claimed by another move this pass.
                Some(&di) if fanout[n.index()] == 1 && !consumed.contains(&di) => {
                    let Gate::Dff { init, .. } = &netlist.gates()[di] else {
                        unreachable!("dff_driving maps to DFGs only");
                    };
                    removed.push(di);
                    inits.push(*init);
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        // Repeated input nets would appear twice in `removed`.
        if !ok || removed.len() != inputs.len() {
            continue;
        }
        let mut uniq = removed.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.len() != removed.len() {
            continue;
        }
        for &di in &removed {
            consumed.insert(di);
        }
        moves.push(Move {
            gate: gi,
            removed_dffs: removed,
            new_init: kind.eval(&inits),
        });
    }

    if moves.is_empty() {
        return 0;
    }

    // Rebuild the netlist applying the moves.
    let mut remove_gate: HashSet<usize> = HashSet::new();
    let mut dff_d_of: HashMap<usize, NetId> = HashMap::new();
    for (i, g) in netlist.gates().iter().enumerate() {
        if let Gate::Dff { d, .. } = g {
            dff_d_of.insert(i, *d);
        }
    }
    // For each move: the gate's inputs are replaced by the removed DFFs' D
    // nets; the gate's old output net is now driven by a new DFF whose D is
    // a fresh net carrying the gate output.
    let mut gate_rewire: HashMap<usize, (Vec<NetId>, NetId, bool)> = HashMap::new();
    let mut new_nets: Vec<(usize, String)> = Vec::new();
    for (k, m) in moves.iter().enumerate() {
        for &di in &m.removed_dffs {
            remove_gate.insert(di);
        }
        let new_d: Vec<NetId> = m.removed_dffs.iter().map(|&di| dff_d_of[&di]).collect();
        new_nets.push((m.gate, format!("rtn{}_{k}", *fresh)));
        gate_rewire.insert(m.gate, (new_d, NetId::from_index(0), m.new_init));
    }

    // The q nets of removed DFFs become orphans (their only fanout was the
    // rewired gate); don't recreate them.
    let mut orphan: HashSet<NetId> = HashSet::new();
    for &di in &remove_gate {
        if let Gate::Dff { q, .. } = &netlist.gates()[di] {
            orphan.insert(*q);
        }
    }

    let mut out = Netlist::new(netlist.name());
    for r in netlist.regions().iter().skip(1) {
        out.intern_region(r);
    }
    let mut net_map: Vec<NetId> = Vec::with_capacity(netlist.net_count());
    for i in 0..netlist.net_count() {
        let id = NetId::from_index(i);
        if orphan.contains(&id) {
            // Never referenced after the rewire; keep a placeholder id.
            net_map.push(NetId::from_index(usize::MAX >> 32));
        } else {
            net_map.push(out.add_net(netlist.net_name(id)));
        }
    }
    for (name, n) in netlist.inputs() {
        out.add_input(name.clone(), net_map[n.index()]);
    }

    let mut moved = 0usize;
    for (gi, g) in netlist.gates().iter().enumerate() {
        if remove_gate.contains(&gi) {
            continue;
        }
        match g {
            Gate::Comb {
                kind,
                inputs,
                output,
                region,
            } => {
                if let Some((new_inputs, _, new_init)) = gate_rewire.get(&gi) {
                    // Gate now reads the removed DFFs' D nets and drives a
                    // fresh net; a new DFF connects that net to the old
                    // output.
                    let fresh_net = out.add_net(format!("rtn{}", *fresh));
                    let ins: Vec<NetId> = new_inputs.iter().map(|&n| net_map[n.index()]).collect();
                    out.add_gate(*kind, ins, fresh_net, *region);
                    let name = format!("rt{}_reg_", *fresh);
                    *fresh += 1;
                    annotated.insert(name.clone());
                    out.add_dff(name, fresh_net, net_map[output.index()], *new_init, *region);
                    moved += 1;
                } else {
                    let ins: Vec<NetId> = inputs.iter().map(|&n| net_map[n.index()]).collect();
                    out.add_gate(*kind, ins, net_map[output.index()], *region);
                }
            }
            Gate::Dff {
                name,
                d,
                q,
                init,
                region,
            } => {
                out.add_dff(
                    name.clone(),
                    net_map[d.index()],
                    net_map[q.index()],
                    *init,
                    *region,
                );
            }
        }
    }
    for s in netlist.srams() {
        let mut s2 = s.clone();
        for rp in &mut s2.read_ports {
            for a in &mut rp.addr {
                *a = net_map[a.index()];
            }
            for d in &mut rp.data {
                *d = net_map[d.index()];
            }
        }
        for wp in &mut s2.write_ports {
            for a in &mut wp.addr {
                *a = net_map[a.index()];
            }
            for d in &mut wp.data {
                *d = net_map[d.index()];
            }
            wp.enable = net_map[wp.enable.index()];
        }
        out.add_sram(s2);
    }
    for (name, n) in netlist.outputs() {
        out.add_output(name.clone(), net_map[n.index()]);
    }

    *netlist = out;
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_gates::CellKind;

    /// d -> DFF_a -> inv -> y ; forward move should yield d -> inv -> DFF -> y.
    #[test]
    fn single_inverter_forward_move() {
        let mut nl = Netlist::new("t");
        let d = nl.add_net("d");
        nl.add_input("d", d);
        let qa = nl.add_net("qa");
        nl.add_dff("a_reg_0_", d, qa, true, 0);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Inv, vec![qa], y, 0);
        nl.add_output("y", y);
        nl.validate().unwrap();

        let mut annotated = HashSet::new();
        annotated.insert("a_reg_0_".to_owned());
        let moves = forward_retime(&mut nl, &annotated);
        assert_eq!(moves, 1);
        nl.validate().unwrap();
        assert_eq!(nl.dff_count(), 1);
        // Init propagated through the inverter: !true = false.
        let (_, name, _, _, init) = nl.dffs().next().unwrap();
        assert!(name.starts_with("rt"));
        assert!(!init);
    }

    /// Two DFFs feeding an AND merge into one DFF after the AND.
    #[test]
    fn two_input_merge() {
        let mut nl = Netlist::new("t");
        let d0 = nl.add_net("d0");
        let d1 = nl.add_net("d1");
        nl.add_input("d0", d0);
        nl.add_input("d1", d1);
        let q0 = nl.add_net("q0");
        let q1 = nl.add_net("q1");
        nl.add_dff("a_reg_0_", d0, q0, true, 0);
        nl.add_dff("a_reg_1_", d1, q1, true, 0);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::And2, vec![q0, q1], y, 0);
        nl.add_output("y", y);

        let mut annotated = HashSet::new();
        annotated.insert("a_reg_0_".to_owned());
        annotated.insert("a_reg_1_".to_owned());
        let moves = forward_retime(&mut nl, &annotated);
        assert_eq!(moves, 1);
        nl.validate().unwrap();
        assert_eq!(nl.dff_count(), 1);
        let (_, _, _, _, init) = nl.dffs().next().unwrap();
        assert!(init); // true & true
    }

    /// A DFF whose output has extra fanout must not move.
    #[test]
    fn fanout_blocks_move() {
        let mut nl = Netlist::new("t");
        let d = nl.add_net("d");
        nl.add_input("d", d);
        let q = nl.add_net("q");
        nl.add_dff("a_reg_0_", d, q, false, 0);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Inv, vec![q], y, 0);
        nl.add_output("y", y);
        nl.add_output("q_out", q); // extra fanout

        let mut annotated = HashSet::new();
        annotated.insert("a_reg_0_".to_owned());
        let moves = forward_retime(&mut nl, &annotated);
        assert_eq!(moves, 0);
        assert_eq!(nl.dff_count(), 1);
        let (_, name, _, _, _) = nl.dffs().next().unwrap();
        assert_eq!(name, "a_reg_0_");
    }

    /// Unannotated DFFs never move.
    #[test]
    fn unannotated_dffs_stay() {
        let mut nl = Netlist::new("t");
        let d = nl.add_net("d");
        nl.add_input("d", d);
        let q = nl.add_net("q");
        nl.add_dff("keep_reg_0_", d, q, false, 0);
        let y = nl.add_net("y");
        nl.add_gate(CellKind::Inv, vec![q], y, 0);
        nl.add_output("y", y);

        let moves = forward_retime(&mut nl, &HashSet::new());
        assert_eq!(moves, 0);
    }

    /// Moves cascade through a chain of gates across passes.
    #[test]
    fn cascading_moves() {
        let mut nl = Netlist::new("t");
        let d = nl.add_net("d");
        nl.add_input("d", d);
        let q = nl.add_net("q");
        nl.add_dff("a_reg_0_", d, q, false, 0);
        let m1 = nl.add_net("m1");
        nl.add_gate(CellKind::Inv, vec![q], m1, 0);
        let m2 = nl.add_net("m2");
        nl.add_gate(CellKind::Inv, vec![m1], m2, 0);
        nl.add_output("y", m2);

        let mut annotated = HashSet::new();
        annotated.insert("a_reg_0_".to_owned());
        let moves = forward_retime(&mut nl, &annotated);
        assert_eq!(moves, 2, "register should migrate across both inverters");
        nl.validate().unwrap();
        assert_eq!(nl.dff_count(), 1);
        // Register ends after the second inverter; init = !!false = false.
        let (_, _, _, _, init) = nl.dffs().next().unwrap();
        assert!(!init);
    }
}

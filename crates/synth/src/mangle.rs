//! Deterministic name mangling.
//!
//! Real CAD tools rewrite instance and net names while optimising
//! (`state_reg_3_` becomes `U1234` or `state_reg_3__RW_0` and so on), which
//! is why the paper needs a formal tool to rebuild the RTL↔gate name
//! correspondence (§IV-C1). This pass reproduces the effect: every DFF,
//! macro and internal net is renamed with a hash-derived identifier. The
//! mapping is returned so synthesis can record it in [`crate::SynthInfo`] —
//! playing the role of the "information about optimizations" a synthesis
//! tool hands to the verification tool.

use std::collections::HashMap;
use strober_gates::{Gate, NetId, Netlist, SramMacro};

/// FNV-1a, stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mangled_instance(old: &str, salt: &str) -> String {
    let h = fnv1a(format!("{salt}/{old}").as_bytes());
    format!("U{:010x}", h & 0xFF_FFFF_FFFF)
}

/// Mangles all DFF, macro and internal-net names in place; returns the
/// old-name → new-name mapping for state elements (DFFs and macros).
///
/// Primary input/output bit names are preserved, as ports survive synthesis
/// unrenamed in real flows.
pub fn mangle(netlist: &mut Netlist) -> HashMap<String, String> {
    let salt = netlist.name().to_owned();
    let mut rename = HashMap::new();

    // Rebuild the netlist with new names (netlists are append-only).
    let mut out = Netlist::new(netlist.name());
    for r in netlist.regions().iter().skip(1) {
        out.intern_region(r);
    }

    // Keep port nets' names; rename everything else.
    let mut is_port_net = vec![false; netlist.net_count()];
    for (_, n) in netlist.inputs() {
        is_port_net[n.index()] = true;
    }
    for (_, n) in netlist.outputs() {
        is_port_net[n.index()] = true;
    }

    let mut net_map = Vec::with_capacity(netlist.net_count());
    #[allow(clippy::needless_range_loop)] // index used for both id and flag
    for i in 0..netlist.net_count() {
        let id = NetId::from_index(i);
        let name = if is_port_net[i] {
            netlist.net_name(id).to_owned()
        } else {
            let h = fnv1a(format!("{salt}/net/{}", netlist.net_name(id)).as_bytes());
            format!("n{:08x}", h & 0xFFFF_FFFF)
        };
        net_map.push(out.add_net(name));
    }

    for (name, n) in netlist.inputs() {
        out.add_input(name.clone(), net_map[n.index()]);
    }
    for g in netlist.gates() {
        match g {
            Gate::Comb {
                kind,
                inputs,
                output,
                region,
            } => {
                let ins = inputs.iter().map(|&n| net_map[n.index()]).collect();
                out.add_gate(*kind, ins, net_map[output.index()], *region);
            }
            Gate::Dff {
                name,
                d,
                q,
                init,
                region,
            } => {
                let new = mangled_instance(name, &salt);
                rename.insert(name.clone(), new.clone());
                out.add_dff(new, net_map[d.index()], net_map[q.index()], *init, *region);
            }
        }
    }
    for s in netlist.srams() {
        let new = mangled_instance(&s.name, &salt);
        rename.insert(s.name.clone(), new.clone());
        let mut s2 = SramMacro {
            name: new,
            ..s.clone()
        };
        for rp in &mut s2.read_ports {
            for a in &mut rp.addr {
                *a = net_map[a.index()];
            }
            for d in &mut rp.data {
                *d = net_map[d.index()];
            }
        }
        for wp in &mut s2.write_ports {
            for a in &mut wp.addr {
                *a = net_map[a.index()];
            }
            for d in &mut wp.data {
                *d = net_map[d.index()];
            }
            wp.enable = net_map[wp.enable.index()];
        }
        out.add_sram(s2);
    }
    for (name, n) in netlist.outputs() {
        out.add_output(name.clone(), net_map[n.index()]);
    }

    *netlist = out;
    rename
}

#[cfg(test)]
mod tests {
    use super::*;
    use strober_gates::CellKind;

    #[test]
    fn mangling_is_deterministic_and_injective_enough() {
        let a = mangled_instance("state_reg_0_", "top");
        let b = mangled_instance("state_reg_0_", "top");
        let c = mangled_instance("state_reg_1_", "top");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with('U'));
    }

    #[test]
    fn ports_keep_names_but_dffs_are_renamed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("in[0]");
        nl.add_input("in[0]", a);
        let q = nl.add_net("internal_q");
        let d = nl.add_net("internal_d");
        nl.add_gate(CellKind::Inv, vec![q], d, 0);
        nl.add_dff("state_reg_0_", d, q, false, 0);
        nl.add_output("in_copy[0]", a);
        let map = mangle(&mut nl);
        nl.validate().unwrap();
        assert_eq!(nl.inputs()[0].0, "in[0]");
        let (_, dff_name, _, _, _) = nl.dffs().next().unwrap();
        assert_eq!(dff_name, map["state_reg_0_"]);
        assert_ne!(dff_name, "state_reg_0_");
        // Internal nets were renamed.
        assert_ne!(nl.net_name(NetId::from_index(1)), "internal_q");
    }
}

//! Logic synthesis: word-level RTL to gate-level netlists.
//!
//! This crate stands in for the Design Compiler / IC Compiler stage of the
//! Strober replay flow (Fig. 5 of the paper). Given a
//! [`strober_rtl::Design`] it produces a [`strober_gates::Netlist`] through:
//!
//! 1. **Technology mapping** ([`synthesize`]) — every word-level operator is
//!    bit-blasted onto the primitive cell library (ripple-carry adders,
//!    barrel shifters, array multipliers/dividers, comparator chains, mux
//!    trees). RTL memories map to SRAM macros, registers to per-bit DFFs.
//! 2. **Optimisation** ([`SynthOptions::optimize`]) — constant propagation
//!    from tie cells, buffer elision and dead-gate sweeping. Like the
//!    paper's constrained flow, optimisation never deletes flip-flops: the
//!    Strober methodology requires state-preserving synthesis for
//!    everything except explicitly annotated retimed datapaths.
//! 3. **Register retiming** ([`SynthOptions::retime_prefixes`]) — annotated
//!    register groups are moved across combinational gates (forward
//!    Leiserson–Saxe moves), after which their values can no longer be
//!    reconstructed from RTL state. This reproduces the §IV-C3 challenge;
//!    replay recovers their state by forcing recorded I/O for the pipeline
//!    latency before each measurement window.
//! 4. **Name mangling** ([`SynthOptions::mangle`]) — instance and net names
//!    are rewritten with deterministic hash suffixes, the way CAD tool
//!    optimisations mangle names. The [`SynthInfo`] sidecar carries the
//!    information a formal tool needs to rebuild the correspondence
//!    (§IV-C1), mirroring the "synthesis tool generates information … to
//!    help formal verification" flow.
//!
//! # Examples
//!
//! ```
//! use strober_dsl::Ctx;
//! use strober_rtl::Width;
//! use strober_synth::{synthesize, SynthOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = Ctx::new("counter");
//! let count = ctx.reg("count", Width::new(8)?, 0);
//! count.set(&count.out().add_lit(1));
//! ctx.output("value", &count.out());
//! let design = ctx.finish()?;
//!
//! let result = synthesize(&design, &SynthOptions::default())?;
//! assert_eq!(result.netlist.dff_count(), 8);
//! assert!(result.netlist.comb_gate_count() > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod info;
mod lower;
mod mangle;
mod opt;
mod region;
mod retime;

pub use info::SynthInfo;
pub use lower::{synthesize, SynthError, SynthOptions, SynthResult};
pub use region::assign_regions;

//! End-to-end test of the estimation server: a served job must return
//! results bit-identical to the one-shot in-process flow, a second job
//! against the same design must be served from the warm in-memory cache
//! (skipping preparation and lowering entirely), concurrent clients must
//! both get correct results, and running jobs must cancel cooperatively.

use std::net::SocketAddr;
use std::time::{Duration, Instant};
use strober::{StroberConfig, StroberFlow};
use strober_cores::build_core;
use strober_dram::{DramConfig, DramModel, LpddrPowerParams};
use strober_isa::programs;
use strober_server::catalog;
use strober_server::protocol::{
    EstimateOutcome, EstimateSpec, Event, FuzzSpec, JobResult, JobSpec, JobState, Priority,
    Request, Response,
};
use strober_server::{replay_fingerprint, Client, Server, ServerConfig, ServerHandle};

/// The shared job parameters: a tiny core and workload so the whole flow
/// runs in seconds, with explicit parallelism/lanes so the direct run
/// below is exactly comparable.
fn spec() -> EstimateSpec {
    EstimateSpec {
        core: "rok-tiny".to_owned(),
        workload: "inline".to_owned(),
        asm: Some(programs::vvadd(48)),
        samples: 6,
        replay_length: 64,
        seed: 0x57_0BE5,
        max_cycles: 2_000_000,
        parallel: 2,
        batch_lanes: 8,
        tape_opt: true,
        hub_threads: 1,
        hub_engine: "auto".to_owned(),
        target_error: 0.0,
        min_samples: 30,
    }
}

/// What the one-shot flow computes for [`spec`], with f64s kept exact.
struct DirectRun {
    cycles: u64,
    instret: u64,
    windows: u64,
    samples: usize,
    core_power_mw: f64,
    half_width_mw: f64,
    dram_power_mw: f64,
    epi_nj: f64,
    snapshot_fingerprint: String,
}

/// Runs [`spec`] directly in-process, the way `strober estimate` does.
fn direct_run() -> DirectRun {
    let s = spec();
    let core = catalog::core_config(&s.core).unwrap();
    let image = catalog::image_for(&s.workload, &s.asm).unwrap();
    let design = build_core(&core);
    let mut session = StroberConfig {
        replay_length: s.replay_length,
        sample_size: s.samples,
        seed: s.seed,
        ..StroberConfig::default()
    };
    session.platform.tape_opt = s.tape_opt;
    let flow = StroberFlow::new(&design, session).unwrap();
    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(&image, 0);
    let run = flow.run_sampled(&mut dram, s.max_cycles).unwrap();
    assert!(dram.exit_code().is_some(), "workload halts");
    let results = flow
        .replay_all_batched(&run.snapshots, s.parallel, s.batch_lanes)
        .unwrap();
    let estimate = flow.estimate(&run, &results).unwrap();
    let instret = dram.instret();
    let dram_power_mw = LpddrPowerParams::lpddr2_s4()
        .average_power_mw(dram.counters(), run.target_cycles, flow.config().freq_hz)
        .total_mw();
    let epi_nj = (estimate.mean_power_mw() + dram_power_mw)
        * 1e-3
        * (run.target_cycles as f64 / flow.config().freq_hz)
        / instret as f64
        * 1e9;
    DirectRun {
        cycles: run.target_cycles,
        instret,
        windows: run.windows,
        samples: results.len(),
        core_power_mw: estimate.mean_power_mw(),
        half_width_mw: estimate.interval().half_width(),
        dram_power_mw,
        epi_nj,
        snapshot_fingerprint: replay_fingerprint(&results),
    }
}

fn start_server(workers: usize) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        workers,
        store_dir: None,
        drain_ms: 10_000,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn connect(addr: SocketAddr, name: &str) -> Client {
    let mut client = Client::connect(addr).unwrap();
    let hello = client.hello(name).unwrap();
    assert!(
        matches!(
            hello,
            Response::Hello { protocol, .. }
                if protocol == strober_server::protocol::PROTOCOL_VERSION
        ),
        "unexpected hello: {hello:?}"
    );
    client
}

fn submit_and_wait(client: &mut Client, spec: JobSpec, seen: &mut Vec<Event>) -> EstimateOutcome {
    let resp = client
        .request(&Request::Submit {
            spec,
            priority: Priority::Normal,
            follow: true,
        })
        .unwrap();
    let Response::Submitted { job } = resp else {
        panic!("submit rejected: {resp:?}");
    };
    let result = client.wait_result(job, |ev| seen.push(ev.clone())).unwrap();
    let JobResult::Estimate(outcome) = result else {
        panic!("wrong result kind");
    };
    outcome
}

fn assert_bit_identical(outcome: &EstimateOutcome, direct: &DirectRun) {
    assert_eq!(outcome.cycles, direct.cycles);
    assert_eq!(outcome.instret, direct.instret);
    assert_eq!(outcome.windows, direct.windows);
    assert_eq!(outcome.samples, direct.samples);
    assert_eq!(
        outcome.core_power_mw.to_bits(),
        direct.core_power_mw.to_bits(),
        "core power must be bit-identical: served {} vs direct {}",
        outcome.core_power_mw,
        direct.core_power_mw
    );
    assert_eq!(
        outcome.half_width_mw.to_bits(),
        direct.half_width_mw.to_bits()
    );
    assert_eq!(
        outcome.dram_power_mw.to_bits(),
        direct.dram_power_mw.to_bits()
    );
    assert_eq!(outcome.epi_nj.to_bits(), direct.epi_nj.to_bits());
    assert_eq!(
        outcome.snapshot_fingerprint, direct.snapshot_fingerprint,
        "every replayed sample must match bit for bit"
    );
}

#[test]
fn served_estimates_are_bit_identical_and_warm_on_the_second_job() {
    let direct = direct_run();
    let (addr, handle, join) = start_server(2);

    // First job: the server has never seen this design — a cold prepare.
    let mut client = connect(addr, "e2e-client");
    let mut events = Vec::new();
    let first = submit_and_wait(&mut client, JobSpec::Estimate(spec()), &mut events);
    assert_eq!(first.provenance, "cold", "first job prepares from scratch");
    assert_bit_identical(&first, &direct);
    assert!(
        events.iter().any(|e| matches!(e, Event::Started { .. })),
        "followed jobs stream a start event"
    );
    for stage in ["prepare", "sim", "replay", "estimate"] {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Stage { stage: s, .. } if s == stage)),
            "followed jobs stream the `{stage}` stage"
        );
    }
    assert_event_contract(&events);
    let run_manifest = &first.manifest;
    assert_eq!(run_manifest.prepare, "cold");
    let job = run_manifest
        .job
        .as_ref()
        .expect("served runs carry job provenance");
    assert_eq!(job.client, "e2e-client");

    // Second job, same design: served from the warm in-memory flow —
    // preparation and lowering are skipped entirely. The probe registry
    // is process-global, so the counter is checked as a monotonic delta.
    let warm_before = strober_probe::snapshot()
        .counter("strober.server.prepare_warm")
        .unwrap_or(0);
    let second = submit_and_wait(&mut client, JobSpec::Estimate(spec()), &mut Vec::new());
    assert_eq!(second.provenance, "warm", "second job skips preparation");
    assert_bit_identical(&second, &direct);
    let warm_after = strober_probe::snapshot()
        .counter("strober.server.prepare_warm")
        .unwrap_or(0);
    assert!(
        warm_after > warm_before,
        "warm hit counter must advance ({warm_before} -> {warm_after})"
    );
    assert!(
        second.manifest.cache_hit,
        "warm provenance implies a cache hit in the manifest"
    );

    // Two concurrent clients, both against the warm design: both get
    // the same bit-identical answer.
    let mut threads = Vec::new();
    for i in 0..2 {
        threads.push(std::thread::spawn(move || {
            let mut client = connect(addr, &format!("concurrent-{i}"));
            submit_and_wait(&mut client, JobSpec::Estimate(spec()), &mut Vec::new())
        }));
    }
    for t in threads {
        let outcome = t.join().unwrap();
        assert_eq!(outcome.provenance, "warm");
        assert_bit_identical(&outcome, &direct);
    }

    // The server lists all four jobs as done.
    let resp = client.request(&Request::Jobs).unwrap();
    let Response::Jobs { jobs } = resp else {
        panic!("jobs query failed: {resp:?}");
    };
    assert_eq!(jobs.len(), 4);
    assert!(jobs.iter().all(|j| j.state == JobState::Done));

    handle.shutdown(false);
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle.is_finished() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(handle.is_finished(), "shutdown must complete");
    join.join().unwrap();
}

/// Event-stream contract for followed jobs: the `Started` event arrives
/// before any `Progress`/`Stage` event, and exactly one terminal event
/// (`Done`/`Failed`/`Cancelled`) closes the stream.
fn assert_event_contract(events: &[Event]) {
    let started = events
        .iter()
        .position(|e| matches!(e, Event::Started { .. }))
        .expect("followed jobs stream a start event");
    let first_work = events
        .iter()
        .position(|e| matches!(e, Event::Progress { .. } | Event::Stage { .. }));
    if let Some(first_work) = first_work {
        assert!(
            started < first_work,
            "Started (index {started}) must precede the first Progress/Stage \
             (index {first_work}): {events:?}"
        );
    }
    let terminals: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            matches!(
                e,
                Event::Done { .. } | Event::Failed { .. } | Event::Cancelled { .. }
            )
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        terminals.len(),
        1,
        "exactly one terminal event per followed job: {events:?}"
    );
    assert_eq!(
        terminals[0],
        events.len() - 1,
        "the terminal event must close the stream: {events:?}"
    );
}

/// The live telemetry path end-to-end: a `Watch` subscription streams
/// incremental frames whose merged mirror stays consistent (counters
/// monotone) while concurrent jobs run, per-job labeled series surface
/// in the stream, `Scrape` returns parseable Prometheus exposition, and
/// every followed job honors the event-ordering contract.
#[test]
fn watch_streams_stay_consistent_under_concurrent_jobs() {
    let (addr, handle, join) = start_server(2);

    // Subscribe to the metrics stream on a dedicated connection before
    // any job exists; frame 0 must be a reset carrying a full snapshot.
    let mut watcher = connect(addr, "watcher");
    let resp = watcher
        .request(&Request::Watch { interval_ms: 50 })
        .unwrap();
    assert!(
        matches!(resp, Response::Watching { interval_ms: 50 }),
        "watch rejected: {resp:?}"
    );
    let first = watcher.next_watch().unwrap();
    assert!(first.reset, "the first frame is a full snapshot");
    let mut session = strober_server::WatchSession::new();
    assert!(session.apply(&first));
    // The registry is process-global and other tests in this binary run
    // jobs too, so all counter assertions are deltas from this baseline.
    let completed_of = |s: &strober_server::WatchSession| {
        s.metrics()
            .counters
            .iter()
            .find(|c| c.name == "strober.server.jobs_completed")
            .map_or(0, |c| c.value)
    };
    let baseline = completed_of(&session);

    // Two concurrent followed jobs on their own connections.
    let mut threads = Vec::new();
    for i in 0..2 {
        threads.push(std::thread::spawn(move || {
            let mut client = connect(addr, &format!("watched-{i}"));
            let mut events = Vec::new();
            let outcome = submit_and_wait(&mut client, JobSpec::Estimate(spec()), &mut events);
            (outcome, events)
        }));
    }

    // Drain frames while the jobs run. The merged mirror must never see
    // a counter regress, and the per-job labeled series must appear.
    let mut last = baseline;
    let mut saw_job_series = false;
    let mut frames = 0u32;
    while completed_of(&session) < baseline + 2 {
        let frame = watcher.next_watch().unwrap();
        assert!(
            session.apply(&frame),
            "no frame was dropped, so the mirror must stay in sync"
        );
        let now = completed_of(&session);
        assert!(
            now >= last,
            "jobs_completed regressed across frames: {last} -> {now}"
        );
        last = now;
        saw_job_series |= session.metrics().gauges.iter().any(|g| {
            let (base, labels) = strober_probe::parse_series(&g.name);
            base == "strober.server.job_progress" && labels.iter().any(|(k, _)| k == "job")
        });
        frames += 1;
        assert!(
            frames < 2_000,
            "jobs did not complete within ~100 s of frames"
        );
    }
    assert!(
        saw_job_series,
        "per-job labeled series must surface in the watch stream"
    );

    for t in threads {
        let (outcome, events) = t.join().unwrap();
        assert!(outcome.cycles > 0);
        assert_event_contract(&events);
        let job = outcome.manifest.job.as_ref().expect("job provenance");
        assert!(
            !job.worker.is_empty(),
            "the manifest attributes the job to a worker"
        );
    }

    // After the jobs are done their series are retired from the registry;
    // a fresh scrape must still carry the server-level series, in
    // parseable exposition text.
    let resp = watcher.request(&Request::Scrape).unwrap();
    let Response::Scrape { text } = resp else {
        panic!("scrape failed: {resp:?}");
    };
    for series in [
        "strober_server_jobs_accepted_total",
        "strober_server_jobs_completed_total",
        "strober_server_queue_depth",
        "strober_server_queue_wait_ms_bucket",
        "strober_server_queue_wait_ms_count",
    ] {
        assert!(
            text.contains(series),
            "scrape must expose {series}:\n{text}"
        );
    }
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .expect("exposition line is `series value`");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable sample value in `{line}`"
        );
        let name_end = series.find('{').unwrap_or(series.len());
        assert!(
            series[..name_end]
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name outside the exposition charset in `{line}`"
        );
    }

    handle.shutdown(false);
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle.is_finished() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(handle.is_finished(), "shutdown must complete");
    join.join().unwrap();
}

#[test]
fn running_jobs_cancel_cooperatively() {
    let (addr, handle, join) = start_server(1);
    let mut client = connect(addr, "canceller");

    // A fuzz campaign far too large to ever finish; it checks the cancel
    // token between seeds.
    let resp = client
        .request(&Request::Submit {
            spec: JobSpec::Fuzz(FuzzSpec {
                seed_start: 0,
                seed_end: 1_000_000,
                cycles: 48,
            }),
            priority: Priority::High,
            follow: true,
        })
        .unwrap();
    let Response::Submitted { job } = resp else {
        panic!("submit rejected: {resp:?}");
    };

    // Wait until a worker picks it up, then cancel mid-run.
    loop {
        let resp = client.request(&Request::Status { job }).unwrap();
        let Response::Status { job: summary } = resp else {
            panic!("status failed: {resp:?}");
        };
        match summary.state {
            JobState::Running => break,
            JobState::Queued => std::thread::sleep(Duration::from_millis(10)),
            other => panic!("job reached {other:?} before cancellation"),
        }
    }
    let resp = client.request(&Request::Cancel { job }).unwrap();
    assert!(
        matches!(
            resp,
            Response::Cancelled {
                state: JobState::Running | JobState::Cancelled,
                ..
            }
        ),
        "cancel acknowledged: {resp:?}"
    );

    // The follow stream must end with the cancellation, promptly.
    let err = client.wait_result(job, |_| {}).unwrap_err();
    assert!(err.contains("cancelled"), "got: {err}");
    let resp = client.request(&Request::Status { job }).unwrap();
    let Response::Status { job: summary } = resp else {
        panic!("status failed: {resp:?}");
    };
    assert_eq!(summary.state, JobState::Cancelled);

    handle.shutdown(false);
    join.join().unwrap();
}

//! Observability integration: a full estimate run must emit the expected
//! span tree, export valid chrome-trace JSON, and fold its spans and
//! metrics into the run manifest.
//!
//! This file holds a single test because the probe recorder is process
//! global; each integration-test file is its own process, so no other
//! test binary can race it.

use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_isa::{assemble, programs};
use strober_store::RunManifest;

#[test]
fn estimate_run_emits_the_expected_span_tree_and_trace_json() {
    let src = programs::vvadd(48);
    let image = assemble(&src).unwrap();
    let design = build_core(&CoreConfig::rok_tiny());
    let config = StroberConfig {
        replay_length: 64,
        sample_size: 4,
        ..StroberConfig::default()
    };

    strober_probe::reset();
    strober_probe::enable();

    let flow = StroberFlow::new(&design, config).unwrap();
    let mut dram = DramModel::new(DramConfig::default(), programs::MEM_BYTES);
    dram.load(&image.words, 0);
    let run = flow.run_sampled(&mut dram, 2_000_000).expect("sampled run");
    assert!(dram.exit_code().is_some(), "workload must halt");
    assert!(run.snapshots.len() >= 2, "need snapshots to replay");
    // Parallelism 2 with 1 bit-lane forces the scalar worker-thread
    // replay path, so worker spans land on their own chrome-trace tracks
    // and each snapshot gets a replay_sample span.
    let results = flow
        .replay_all_batched(&run.snapshots, 2, 1)
        .expect("replays");
    // The default 64-lane packed path must agree exactly and emit the
    // batch span/metric family instead.
    let batched = flow.replay_all(&run.snapshots, 2).expect("batched replays");
    assert_eq!(batched, results, "packed lanes diverge from scalar replay");
    let estimate = flow.estimate(&run, &results).expect("estimate");
    assert!(estimate.mean_power_mw() > 0.0);

    let events = strober_probe::take_events();
    let metrics = strober_probe::snapshot();
    strober_probe::disable();

    // The span tree covers every stage of the flow end to end.
    for expected in [
        "strober.core.prepare",
        "strober.fame.transform",
        "strober.synth.synthesize",
        "strober.synth.lower",
        "strober.formal.match",
        "strober.gatesim.compile",
        "strober.core.run_sampled",
        "strober.platform.capture_snapshot",
        "strober.core.replay",
        "strober.core.replay_worker.0",
        "strober.core.replay_worker.1",
        "strober.core.replay_sample",
        "strober.gatesim.load",
        "strober.core.replay_batch",
        "strober.gatesim.load_batch",
        "strober.core.estimate",
    ] {
        assert!(
            events.iter().any(|e| e.name == expected),
            "missing span `{expected}` in {:?}",
            events.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
    }

    // Nesting: prepare is a main-thread top-level span whose transform/
    // synthesis/matching children sit strictly inside it.
    let prepare = events
        .iter()
        .find(|e| e.name == "strober.core.prepare")
        .unwrap();
    assert_eq!(prepare.depth, 0);
    for child in ["strober.fame.transform", "strober.synth.synthesize"] {
        let c = events.iter().find(|e| e.name == child).unwrap();
        assert_eq!(c.tid, prepare.tid, "{child} runs on the prepare thread");
        assert!(c.depth > prepare.depth, "{child} nests inside prepare");
        assert!(c.start_us >= prepare.start_us);
        assert!(c.start_us + c.dur_us <= prepare.start_us + prepare.dur_us);
    }
    // Worker spans are top level on their own threads.
    let workers: Vec<_> = events
        .iter()
        .filter(|e| e.name.starts_with("strober.core.replay_worker."))
        .collect();
    assert_eq!(workers.len(), 2);
    assert!(workers.iter().all(|w| w.depth == 0));
    assert_ne!(workers[0].tid, workers[1].tid, "workers get distinct tids");
    assert!(workers.iter().all(|w| w.tid != prepare.tid));

    // The chrome-trace export is valid JSON with the Trace Event Format
    // shape, and parses back to the same spans.
    let trace = strober_probe::chrome_trace_json(&events);
    let doc: serde_json::Value = serde_json::from_str(&trace).expect("trace is valid JSON");
    let obj = match &doc {
        serde_json::Value::Object(m) => m,
        other => panic!("trace root must be an object, got {other:?}"),
    };
    let (n_spans, n_meta) = match obj.get("traceEvents") {
        Some(serde_json::Value::Array(evs)) => {
            let meta = evs
                .iter()
                .filter(|e| e.object_get("ph").and_then(serde_json::Value::as_str) == Some("M"))
                .count();
            (evs.len() - meta, meta)
        }
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(n_spans, events.len());
    // Named threads get `thread_name` metadata events so concurrent
    // workers render on their own labeled rows: at least the
    // orchestrating thread and the two replay workers are named.
    assert!(n_meta >= 3, "expected thread_name metadata, got {n_meta}");
    let back = strober_probe::parse_chrome_trace(&trace).expect("trace parses back");
    assert_eq!(back.len(), events.len());
    let mut names: Vec<_> = back.iter().map(|e| e.name.clone()).collect();
    let mut orig: Vec<_> = events.iter().map(|e| e.name.clone()).collect();
    names.sort();
    orig.sort();
    assert_eq!(names, orig);

    // Spans become manifest stages; worker spans do not.
    let mut manifest = RunManifest::new("rok-tiny", "vvadd");
    manifest.record_spans(&events);
    manifest.metrics = metrics.clone();
    for stage in ["prepare", "run_sampled", "replay", "estimate"] {
        let millis = manifest.stage_millis(stage);
        assert!(
            millis.is_some_and(|ms| ms >= 0.0),
            "stage `{stage}` missing from {:?}",
            manifest.stages
        );
    }
    assert!(manifest
        .stages
        .iter()
        .all(|s| s.name.parse::<u64>().is_err()));

    // The metrics registry saw the run: sampling decisions, snapshot
    // captures, gate-level load commands, the replay histogram and the
    // simulation-rate gauge.
    assert_eq!(
        metrics.counter("strober.platform.records"),
        Some(run.records),
        "every record is one scan-chain capture"
    );
    assert!(metrics.counter("strober.sampling.accepts").unwrap() >= run.snapshots.len() as u64);
    assert!(metrics.counter("strober.gatesim.load_commands").unwrap() > 0);
    assert!(metrics.counter("strober.platform.scan_cycles").unwrap() > 0);
    assert!(metrics.gauge("strober.core.sim_cycles_per_sec").unwrap() > 0.0);
    let hist = metrics
        .histogram("strober.core.replay_sample_ms")
        .expect("replay histogram");
    assert_eq!(hist.count, results.len() as u64);

    // The gate-level op tape is compiled on first use and shared by
    // every replay engine after that — the scalar workers and the packed
    // path all reuse it, so the batch path never compiles its own. The
    // two first-replay workers may race the OnceLock (the loser's tape
    // is discarded), so up to `parallelism` compiles are tolerated.
    let compiled = metrics.counter("strober.core.gate_tape_compiled").unwrap();
    assert!((1..=2).contains(&compiled), "compiled {compiled} tapes");
    assert!(metrics.counter("strober.core.gate_tape_reused").unwrap() >= 1);
    assert!(
        !events
            .iter()
            .any(|e| e.name == "strober.gatesim.batch_compile"),
        "batch replay must reuse the session tape, not recompile"
    );

    // The packed path accounted its lanes: all snapshots fit one batch.
    assert_eq!(metrics.counter("strober.core.replay_batches"), Some(1));
    assert_eq!(
        metrics.counter("strober.core.replay_batch_lanes"),
        Some(run.snapshots.len() as u64)
    );
    let bhist = metrics
        .histogram("strober.core.replay_batch_ms")
        .expect("batch replay histogram");
    assert_eq!(bhist.count, 1);

    // And the whole manifest — stages plus metrics — survives the JSON
    // round trip at the current schema version.
    let round = RunManifest::from_json(&manifest.to_json()).unwrap();
    assert_eq!(round, manifest);
    assert_eq!(round.version, strober_store::MANIFEST_VERSION);
}

//! Statistical-soundness integration tests: the estimator behaves like
//! §III-A promises when the experiment is repeated.

use strober::{StroberConfig, StroberFlow};
use strober_dsl::Ctx;
use strober_platform::{HostModel, OutputView};
use strober_rtl::{Design, Width};

/// A design with two distinct power phases: a wide LFSR bank that only
/// churns when `phase` selects it. The workload alternates phases, so
/// per-window power is bimodal — a stress test for the interval maths.
fn phased_design() -> Design {
    let ctx = Ctx::new("phased");
    let w32 = Width::new(32).unwrap();
    let phase = ctx.input("phase", Width::BIT);
    for i in 0..8 {
        let r = ctx.scope("bank", |c| c.reg(&format!("lfsr{i}"), w32, 0xACE1 + i));
        let taps = r.out().bit(31) ^ r.out().bit(21) ^ (r.out().bit(1) ^ r.out().bit(0));
        let shifted = r.out().shl_lit(1) | &taps.zext(w32);
        r.set_en(&shifted, &phase);
    }
    let counter = ctx.scope("ctr", |c| c.reg("count", w32, 0));
    counter.set(&counter.out().add_lit(1));
    ctx.output("count", &counter.out());
    ctx.finish().unwrap()
}

struct PhaseDriver {
    period: u64,
}

impl HostModel for PhaseDriver {
    fn tick(&mut self, cycle: u64, io: &mut OutputView<'_>) {
        io.set("phase", u64::from((cycle / self.period).is_multiple_of(2)));
    }
}

#[test]
fn repeated_estimates_scatter_around_a_common_mean() {
    let design = phased_design();
    let mut estimates = Vec::new();
    for seed in 0..6 {
        let flow = StroberFlow::new(
            &design,
            StroberConfig {
                replay_length: 32,
                sample_size: 24,
                seed: 1000 + seed,
                ..StroberConfig::default()
            },
        )
        .unwrap();
        let mut driver = PhaseDriver { period: 160 };
        let run = flow.run_sampled(&mut driver, 40_000).unwrap();
        let results = flow.replay_all(&run.snapshots, 4).unwrap();
        let est = flow.estimate(&run, &results).expect("estimate");
        estimates.push((est.mean_power_mw(), est.interval().half_width()));
    }

    let grand_mean: f64 = estimates.iter().map(|(m, _)| m).sum::<f64>() / estimates.len() as f64;
    // Every run's 99% interval should contain the grand mean, and the
    // run-to-run scatter should be comparable to the claimed half-widths
    // (not wildly larger).
    let mut hits = 0;
    for &(mean, half) in &estimates {
        if (mean - grand_mean).abs() <= half {
            hits += 1;
        }
    }
    assert!(
        hits >= estimates.len() - 1,
        "estimates {estimates:?} vs grand mean {grand_mean}"
    );
}

#[test]
fn larger_samples_give_tighter_intervals() {
    let design = phased_design();
    let mut widths = Vec::new();
    for &n in &[8usize, 32] {
        let flow = StroberFlow::new(
            &design,
            StroberConfig {
                replay_length: 32,
                sample_size: n,
                seed: 7,
                ..StroberConfig::default()
            },
        )
        .unwrap();
        let mut driver = PhaseDriver { period: 160 };
        let run = flow.run_sampled(&mut driver, 60_000).unwrap();
        let results = flow.replay_all(&run.snapshots, 4).unwrap();
        let est = flow.estimate(&run, &results).expect("estimate");
        widths.push(est.interval().relative_error_bound());
    }
    assert!(
        widths[1] < widths[0],
        "n=32 bound {} should beat n=8 bound {}",
        widths[1],
        widths[0]
    );
}

#[test]
fn phase_power_difference_is_visible_per_snapshot() {
    // Individual snapshot timestamps land in either phase; their measured
    // powers must be bimodal (the LFSR bank churns in one phase only).
    let design = phased_design();
    let flow = StroberFlow::new(
        &design,
        StroberConfig {
            replay_length: 32,
            sample_size: 30,
            seed: 99,
            ..StroberConfig::default()
        },
    )
    .unwrap();
    let mut driver = PhaseDriver { period: 512 };
    let run = flow.run_sampled(&mut driver, 50_000).unwrap();
    let results = flow.replay_all(&run.snapshots, 4).unwrap();

    let mut powers: Vec<f64> = results.iter().map(|r| r.power.total_mw()).collect();
    powers.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let spread = powers.last().unwrap() / powers.first().unwrap();
    assert!(
        spread > 1.3,
        "expected bimodal snapshot powers, got spread {spread:.2} ({powers:?})"
    );
}

//! Platform-mapping integration: drive the complete snapshot-capture
//! protocol purely through the MMIO register map, exactly as a Zynq host
//! program would (§IV-B3) — no direct pokes of hub control signals.

use strober_dsl::Ctx;
use strober_fame::{transform, FameConfig};
use strober_platform::MmioMap;
use strober_rtl::Width;
use strober_sim::Simulator;

#[test]
fn scan_protocol_over_mmio_only() {
    // Target: two counters of different widths plus a small memory.
    let ctx = Ctx::new("dut");
    let w8 = Width::new(8).unwrap();
    let w20 = Width::new(20).unwrap();
    let c1 = ctx.reg("c1", w8, 0);
    c1.set(&c1.out().add_lit(1));
    let c2 = ctx.reg("c2", w20, 5);
    c2.set(&c2.out().add_lit(3));
    let m = ctx.mem("scratch", w8, 8);
    m.write(&c1.out().bits(2, 0), &c1.out(), &ctx.lit1(true));
    ctx.output("c1_out", &c1.out());
    ctx.output("rd", &m.read(&c2.out().bits(2, 0)));
    let design = ctx.finish().unwrap();

    let fame = transform(
        &design,
        &FameConfig {
            replay_length: 8,
            warmup: 0,
        },
    )
    .unwrap();
    let map = MmioMap::from_meta(&fame.hub, &fame.meta).unwrap();
    let mut sim = Simulator::new(&fame.hub).unwrap();

    let addr = |port: &str| map.addr_of(port).expect("mapped");
    let fire = addr("fame/fire");
    let scan_capture = addr("fame/scan_capture");
    let scan_shift = addr("fame/scan_shift");
    let mem_scan_en = addr("fame/mem_scan_en");
    let mem_scan_rst = addr("fame/mem_scan_rst");
    let scan_out = addr("fame/scan_out");
    let cycle = addr("fame/cycle");
    let mem_out = addr("fame/mem_scan_out_0");

    // Run 100 target cycles.
    map.write(&mut sim, fire, 1).unwrap();
    for _ in 0..100 {
        sim.step();
    }
    map.write(&mut sim, fire, 0).unwrap();
    assert_eq!(map.read(&mut sim, cycle).unwrap(), 100);

    // Capture + shift out the register chain.
    map.write(&mut sim, scan_capture, 1).unwrap();
    sim.step();
    map.write(&mut sim, scan_capture, 0).unwrap();
    map.write(&mut sim, scan_shift, 1).unwrap();
    let mut regs = Vec::new();
    for elem in &fame.meta.scan_chain {
        let raw = map.read(&mut sim, scan_out).unwrap();
        regs.push((
            elem.rtl_name.clone(),
            raw & Width::new(elem.width).unwrap().mask(),
        ));
        sim.step();
    }
    map.write(&mut sim, scan_shift, 0).unwrap();

    // c1 counts 1/cycle mod 256; c2 starts at 5, +3/cycle.
    let by_name: std::collections::HashMap<_, _> = regs.into_iter().collect();
    assert_eq!(by_name["c1"], 100);
    assert_eq!(by_name["c2"], 5 + 300);

    // Stream the memory through its borrowed read port.
    map.write(&mut sim, mem_scan_rst, 1).unwrap();
    sim.step();
    map.write(&mut sim, mem_scan_rst, 0).unwrap();
    map.write(&mut sim, mem_scan_en, 1).unwrap();
    let mut mem_words = Vec::new();
    for _ in 0..8 {
        mem_words.push(map.read(&mut sim, mem_out).unwrap());
        sim.step();
    }
    map.write(&mut sim, mem_scan_en, 0).unwrap();
    // scratch[a] holds the last c1 value with low bits == a, i.e. the
    // largest v <= 99 with v ≡ a (mod 8)... c1 wrote at cycles 0..100
    // (value at cycle t is t), so slot a holds the largest t < 100 with
    // t mod 8 == a.
    for (a, &w) in mem_words.iter().enumerate() {
        let expect = (0..100u64).rev().find(|t| t % 8 == a as u64).unwrap() % 256;
        assert_eq!(w, expect, "slot {a}");
    }

    // The target resumes cleanly afterwards.
    map.write(&mut sim, fire, 1).unwrap();
    for _ in 0..10 {
        sim.step();
    }
    assert_eq!(map.read(&mut sim, cycle).unwrap(), 110);
}

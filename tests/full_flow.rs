//! The headline integration test: the complete Strober methodology on a
//! real processor running a real workload.
//!
//! This is a miniature Fig. 8 validation: the "true" average power comes
//! from simulating the *entire* workload on gate-level simulation, and the
//! sample-based estimate comes from the full Strober flow (FAME1-hub fast
//! simulation with reservoir-sampled snapshots, gate-level replay of ~2%
//! of the cycles, power analysis, confidence interval). The estimate must
//! land close to the truth.

use strober::{StroberConfig, StroberFlow};
use strober_cores::{build_core, CoreConfig};
use strober_dram::{DramConfig, DramModel};
use strober_gatesim::GateSim;
use strober_isa::{assemble, programs, Iss};
use strober_power::PowerAnalyzer;

const MEM_BYTES: usize = programs::MEM_BYTES;

/// Runs the entire workload on gate-level simulation and returns
/// `(average power mW, cycles, exit code)` — the ground truth.
fn gate_level_truth(flow: &StroberFlow, image: &[u32], max_cycles: u64) -> (f64, u64, u32) {
    let mut sim = GateSim::new(&flow.synth().netlist).expect("netlist");
    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(image, 0);
    let mut cycles = 0u64;
    while cycles < max_cycles {
        dram.tick_gate(&mut sim);
        cycles += 1;
        if dram.exit_code().is_some() {
            break;
        }
    }
    let exit = dram.exit_code().expect("workload must halt at gate level");
    let analyzer = PowerAnalyzer::new(&flow.synth().netlist, flow.library(), flow.config().freq_hz);
    let power = analyzer.analyze(&sim.activity());
    (power.total_mw(), cycles, exit)
}

#[test]
fn sampled_estimate_matches_gate_level_truth() {
    // 192 elements (vs the seed's 48) quadruples the cycle count so the
    // larger sample below still covers a small fraction of the run, and it
    // shrinks the weight of the high-power startup phase whose windows
    // otherwise dominate the estimator's variance.
    let src = programs::vvadd(192);
    let image = assemble(&src).unwrap();

    // Reference result from the ISS.
    let mut iss = Iss::new(MEM_BYTES);
    iss.load(&image.words, 0);
    let iss_exit = iss.run(10_000_000).unwrap().unwrap();

    let design = build_core(&CoreConfig::rok_tiny());
    // 60 windows keeps the estimator's noise comfortably inside the 10%
    // assertion below for any reasonable RNG stream (the vendored `rand`
    // stand-in draws a different stream than crates.io rand at n=20).
    let config = StroberConfig {
        replay_length: 128,
        sample_size: 60,
        ..StroberConfig::default()
    };
    let flow = StroberFlow::new(&design, config).unwrap();

    // Ground truth: the whole workload at gate level.
    let (true_power, true_cycles, gate_exit) = gate_level_truth(&flow, &image.words, 400_000);
    assert_eq!(gate_exit, iss_exit, "gate-level run must compute correctly");

    // Strober: fast sampled run + replay.
    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(&image.words, 0);
    let run = flow
        .run_sampled(&mut dram, 10 * true_cycles)
        .expect("sampled run");
    assert_eq!(
        dram.exit_code(),
        Some(iss_exit),
        "hub run must compute correctly"
    );
    assert!(run.snapshots.len() >= 2, "need snapshots to estimate");

    let results = flow.replay_all(&run.snapshots, 4).expect("replays succeed");
    for r in &results {
        assert!(r.outputs_checked > 0, "replay must verify outputs");
    }
    let estimate = flow.estimate(&run, &results).expect("estimate");

    // The coverage is a few percent of the cycles, as in Table IV.
    let covered =
        results.len() as f64 * f64::from(flow.config().replay_length) / run.target_cycles as f64;
    assert!(
        covered < 0.25,
        "sampling should cover a small fraction, covered {covered:.3}"
    );

    // The estimate must be close to the truth. Fig. 8 sees errors below
    // ~3%; we allow more slack because this run is far shorter than the
    // paper's and the sample smaller.
    let rel_err = (estimate.mean_power_mw() - true_power).abs() / true_power;
    assert!(
        rel_err < 0.10,
        "estimate {:.3} mW vs truth {true_power:.3} mW: {:.1}% error",
        estimate.mean_power_mw(),
        rel_err * 100.0
    );

    // The theoretical error bound should be of sane magnitude too.
    let bound = estimate.interval().relative_error_bound();
    assert!(bound < 0.5, "error bound {bound} is implausibly wide");
}

#[test]
fn snapshot_timestamps_follow_execution() {
    // Fig. 10's mechanism: snapshots carry timestamps spread over the run.
    let src = programs::dhrystone(60);
    let image = assemble(&src).unwrap();
    let design = build_core(&CoreConfig::rok_tiny());
    let config = StroberConfig {
        replay_length: 64,
        sample_size: 8,
        ..StroberConfig::default()
    };
    let flow = StroberFlow::new(&design, config).unwrap();
    let mut dram = DramModel::new(DramConfig::default(), MEM_BYTES);
    dram.load(&image.words, 0);
    let run = flow.run_sampled(&mut dram, 2_000_000).expect("run");
    assert!(dram.exit_code().is_some());

    let mut cycles: Vec<u64> = run.snapshots.iter().map(|s| s.cycle).collect();
    cycles.sort_unstable();
    cycles.dedup();
    assert_eq!(cycles.len(), run.snapshots.len(), "timestamps unique");
    assert!(*cycles.last().unwrap() <= run.target_cycles);
    // Sampling must reach beyond the first quarter of the execution.
    assert!(*cycles.last().unwrap() > run.target_cycles / 4);
}
